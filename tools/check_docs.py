#!/usr/bin/env python3
"""Doc lint: keep the user-facing docs in sync with the code they describe.

Two checks, both derived from the source of truth rather than a hand-kept
list, so adding a flag or a run-record section without documenting it fails
CI:

  * Bench CLI flags — every `--flag` parsed by bench/bench_util.h (the
    option sink shared by all fig_* binaries) must appear in a README.md
    markdown-table row (a line starting with `|` containing the backticked
    flag). The README's flag table is the canonical quick reference.
  * Run-record schema keys — every JSON key emitted by
    src/stats/run_record.cpp (`w.key("...")` calls) plus the schema version
    token must be documented in docs/schema.md.

Usage:
    tools/check_docs.py [--root DIR] [--self-test]

Exit codes:
    0  docs cover everything
    1  something undocumented (each item printed)
    2  structural error: a scanned file is missing or has no extractable
       flags/keys (the lint could not actually lint)

--self-test additionally verifies the negative path: the lint must flag an
injected undocumented flag and an injected undocumented schema key. CI runs
`check_docs.py --self-test` so a regression that makes the lint vacuously
pass is itself a failure.
"""

import argparse
import pathlib
import re
import sys

FLAG_SOURCE = "bench/bench_util.h"
FLAG_DOC = "README.md"
KEY_SOURCE = "src/stats/run_record.cpp"
SCHEMA_SOURCE = "src/stats/run_record.h"
KEY_DOC = "docs/schema.md"

FLAG_RE = re.compile(r'std::strcmp\(argv\[i\],\s*"(--[a-z][a-z-]*)"\)')
KEY_RE = re.compile(r'w\.key\("([A-Za-z_.]+)"\)')
SCHEMA_RE = re.compile(r'kRunRecordSchema\s*=\s*"([^"]+)"')


def die(msg):
    print(f"check_docs: ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def read(root, rel):
    path = root / rel
    try:
        return path.read_text(encoding="utf-8")
    except OSError as e:
        die(f"cannot read {path}: {e}")


def extract_flags(source_text):
    return sorted(set(FLAG_RE.findall(source_text)))


def extract_keys(writer_text, header_text):
    keys = sorted(set(KEY_RE.findall(writer_text)))
    m = SCHEMA_RE.search(header_text)
    if not m:
        die(f"{SCHEMA_SOURCE}: no kRunRecordSchema token found")
    return keys, m.group(1)


def table_rows(doc_text):
    return [line for line in doc_text.splitlines() if line.lstrip().startswith("|")]


def check_flags(flags, readme_text):
    """Each flag must sit in a markdown-table row, backticked."""
    rows = "\n".join(table_rows(readme_text))
    return [f for f in flags if f"`{f}" not in rows]


def check_keys(keys, token, schema_text):
    missing = [k for k in keys
               if not re.search(rf"\b{re.escape(k)}\b", schema_text)]
    if token not in schema_text:
        missing.append(f"schema token {token}")
    return missing


def run_checks(root):
    flags = extract_flags(read(root, FLAG_SOURCE))
    if not flags:
        die(f"{FLAG_SOURCE}: no flags extracted — parser pattern out of date?")
    keys, token = extract_keys(read(root, KEY_SOURCE), read(root, SCHEMA_SOURCE))
    if not keys:
        die(f"{KEY_SOURCE}: no w.key(...) calls extracted — pattern out of date?")

    readme = read(root, FLAG_DOC)
    schema_doc = read(root, KEY_DOC)

    problems = []
    for f in check_flags(flags, readme):
        problems.append(f"{FLAG_DOC}: flag {f} ({FLAG_SOURCE}) missing from the flag table")
    for k in check_keys(keys, token, schema_doc):
        problems.append(f"{KEY_DOC}: run-record key {k} ({KEY_SOURCE}) undocumented")
    return flags, keys, problems


def self_test(root):
    """The negative path: an undocumented flag/key must be caught."""
    readme = read(root, FLAG_DOC)
    schema_doc = read(root, KEY_DOC)
    failures = []
    if not check_flags(["--intentionally-undocumented"], readme):
        failures.append("lint did not flag an undocumented CLI flag")
    if not check_keys(["intentionally_undocumented_key"], "dssmr.run_record.v7",
                      schema_doc):
        failures.append("lint did not flag an undocumented schema key")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: current directory)")
    ap.add_argument("--self-test", action="store_true",
                    help="also verify the lint catches an injected "
                         "undocumented flag and schema key")
    args = ap.parse_args()
    root = pathlib.Path(args.root)

    flags, keys, problems = run_checks(root)
    if args.self_test:
        for f in self_test(root):
            problems.append(f"self-test: {f}")

    if problems:
        for p in problems:
            print(f"check_docs: FAIL: {p}", file=sys.stderr)
        sys.exit(1)
    print(f"check_docs: OK — {len(flags)} bench flags documented in {FLAG_DOC}, "
          f"{len(keys)} run-record keys documented in {KEY_DOC}")


if __name__ == "__main__":
    main()
