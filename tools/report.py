#!/usr/bin/env python3
"""Render a self-contained HTML dashboard from a run-record JSON file.

Usage:
    tools/report.py BENCH_<experiment>.json [-o REPORT_<experiment>.html]
                    [--run LABEL]

Input is a `dssmr.run_record.v6` (or older) file produced by any fig_* bench with
--json; runs that also passed --telemetry carry a `telemetry` section and get
the full dashboard (gauge sparklines, per-partition heat strips, windowed
latency percentiles, fault-window shading from timeline marks). Runs without
telemetry still get their headline metrics so a mixed file renders usefully.

The output is one static HTML file: inline CSS + inline SVG, no JavaScript,
no external assets — it can be archived as a CI artifact and opened years
later. Stdlib only.

Exit codes: 0 = wrote the report, 2 = unreadable/invalid input.
"""

import argparse
import html
import json
import sys

# Restrained palette: one hue per role, used consistently across charts.
C_LINE = "#2563eb"      # gauge / p50 lines
C_P99 = "#dc2626"       # p99 line
C_FAULT = "#fca5a5"     # fault-window shading (drawn at low opacity)
C_MARK = "#7c3aed"      # non-fault event marks (e.g. repartitionings)
C_GRID = "#e5e7eb"
C_TEXT = "#374151"
C_MUTED = "#9ca3af"

SPARK_W, SPARK_H = 560, 44
HEAT_H = 18


def esc(s):
    return html.escape(str(s), quote=True)


def fmt(v):
    """Compact number for labels: 1234567 -> 1.2M, 0.034 -> 0.034."""
    if v is None:
        return "-"
    a = abs(v)
    if a >= 1e6:
        return f"{v / 1e6:.1f}M"
    if a >= 1e4:
        return f"{v / 1e3:.1f}k"
    if a >= 10 or v == int(v):
        return f"{v:.0f}"
    return f"{v:.3g}"


def load_records(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"report: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema", "")
    if not schema.startswith("dssmr.run_record."):
        print(f"report: {path}: unexpected schema {schema!r}", file=sys.stderr)
        sys.exit(2)
    if schema < "dssmr.run_record.v4":
        print(f"report: note: {schema} predates telemetry; headline metrics only",
              file=sys.stderr)
    return doc


def fault_windows(marks, t_end):
    """Pairs fault_begin/fault_end marks into [t0, t1] shading intervals.

    Begins and ends are matched in timeline order (the nemesis closes windows
    in the order it opened them for every shipped plan); an unmatched begin
    shades through to the end of the run.
    """
    out = []
    open_stack = []
    for m in sorted(marks, key=lambda m: m["t_us"]):
        if m["kind"] == "fault_begin":
            open_stack.append(m["t_us"])
        elif m["kind"] == "fault_end" and open_stack:
            out.append((open_stack.pop(0), m["t_us"]))
    for t0 in open_stack:
        out.append((t0, t_end))
    return out


def svg_shading(windows, t_end, width, height):
    """Translucent rects for disrupted intervals, in chart pixel space."""
    if t_end <= 0:
        return ""
    parts = []
    for t0, t1 in windows:
        x0 = width * t0 / t_end
        x1 = max(width * t1 / t_end, x0 + 1)
        parts.append(f'<rect x="{x0:.1f}" y="0" width="{x1 - x0:.1f}" '
                     f'height="{height}" fill="{C_FAULT}" opacity="0.35"/>')
    return "".join(parts)


def svg_marks(marks, t_end, height):
    """Vertical ticks for point events (kind == event)."""
    if t_end <= 0:
        return ""
    parts = []
    for m in marks:
        if m["kind"] != "event":
            continue
        x = SPARK_W * m["t_us"] / t_end
        parts.append(f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" y2="{height}" '
                     f'stroke="{C_MARK}" stroke-width="1" opacity="0.7">'
                     f'<title>{esc(m["label"])}</title></line>')
    return "".join(parts)


def polyline(xs, ys, color, width=1.5):
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>')


def scale_y(values, height, pad=3):
    """Maps values to pixel y (inverted); constant series draw mid-height."""
    vmin, vmax = min(values), max(values)
    if vmax == vmin:
        return [height / 2.0] * len(values)
    return [height - pad - (height - 2 * pad) * (v - vmin) / (vmax - vmin)
            for v in values]


def sparkline(name, ticks, values, t_end, shading, marks_svg, label_extra=""):
    """One gauge row: name, min/max/last labels, SVG line with fault shading."""
    if not values:
        return ""
    xs = [SPARK_W * t / t_end if t_end else 0 for t in ticks]
    ys = scale_y(values, SPARK_H)
    stats = (f"min {fmt(min(values))} · max {fmt(max(values))} · "
             f"last {fmt(values[-1])}{label_extra}")
    return f"""
<div class="spark-row">
  <div class="spark-name">{esc(name)}<span class="spark-stats">{stats}</span></div>
  <svg width="{SPARK_W}" height="{SPARK_H}" viewBox="0 0 {SPARK_W} {SPARK_H}">
    <rect width="{SPARK_W}" height="{SPARK_H}" fill="#fafafa"/>
    {shading}{marks_svg}
    <line x1="0" y1="{SPARK_H - 1}" x2="{SPARK_W}" y2="{SPARK_H - 1}" stroke="{C_GRID}"/>
    {polyline(xs, ys, C_LINE)}
  </svg>
</div>"""


def cache_effectiveness(gauges, ticks, t_end, shading, marks_svg):
    """Paired sparkline of the windowed location-cache hit rate (blue)
    against the oracle consult rate (red), on one shared 0-based scale —
    the two series are complementary by construction (a consult is a miss
    the prefetcher failed to absorb), so divergence over time is the
    cache-warming story at a glance."""
    hits = gauges.get("locality.window_hit_rate")
    consults = gauges.get("locality.consult_rate")
    if not hits or not consults:
        return ""
    xs = [SPARK_W * t / t_end if t_end else 0 for t in ticks]
    # One scale for both lines, anchored at 0 so the rates stay comparable.
    top = max(max(hits), max(consults), 1e-9)
    pad = 3

    def to_y(vals):
        return [SPARK_H - pad - (SPARK_H - 2 * pad) * v / top for v in vals]

    stats = (f"hit rate last {fmt(hits[-1])} · "
             f"consult rate last {fmt(consults[-1])}")
    return f"""
<h3>Cache effectiveness</h3>
<div class="spark-row">
  <div class="spark-name"><span style="color:{C_LINE}">hit rate</span> vs
    <span style="color:{C_P99}">consult rate</span>
    <span class="spark-stats">{stats}</span></div>
  <svg width="{SPARK_W}" height="{SPARK_H}" viewBox="0 0 {SPARK_W} {SPARK_H}">
    <rect width="{SPARK_W}" height="{SPARK_H}" fill="#fafafa"/>
    {shading}{marks_svg}
    <line x1="0" y1="{SPARK_H - 1}" x2="{SPARK_W}" y2="{SPARK_H - 1}" stroke="{C_GRID}"/>
    {polyline(xs, to_y(hits), C_LINE)}
    {polyline(xs, to_y(consults), C_P99)}
  </svg>
</div>"""


def heat_color(frac):
    """White -> amber -> red ramp for command-count intensity in [0, 1]."""
    if frac <= 0:
        return "#ffffff"
    # interpolate white (255,255,255) -> amber (245,158,11) -> red (220,38,38)
    if frac < 0.5:
        t = frac / 0.5
        r, g, b = 255 + t * (245 - 255), 255 + t * (158 - 255), 255 + t * (11 - 255)
    else:
        t = (frac - 0.5) / 0.5
        r, g, b = 245 + t * (220 - 245), 158 + t * (38 - 158), 11 + t * (38 - 11)
    return f"rgb({r:.0f},{g:.0f},{b:.0f})"


def heat_strip(partitions, interval_us, t_end, shading_windows):
    """Per-partition bucket strips colored by command count; a cell's tooltip
    carries the exact counts. One shared scale across partitions so hot spots
    compare visually."""
    n_buckets = max((len(p.get("commands", [])) for p in partitions), default=0)
    if n_buckets == 0:
        return "<p class='muted'>no partition heat recorded</p>"
    peak = max((max(p["commands"], default=0) for p in partitions), default=0)
    cell_w = SPARK_W / n_buckets
    rows = []
    for i, p in enumerate(partitions):
        commands = p.get("commands", [])
        multi = p.get("multi", [])
        moves = p.get("moves", [])
        cells = []
        for b in range(n_buckets):
            c = commands[b] if b < len(commands) else 0
            m = multi[b] if b < len(multi) else 0
            mv = moves[b] if b < len(moves) else 0
            t0_ms = b * interval_us / 1000.0
            tip = (f"p{i} [{t0_ms:.0f}ms): {c} commands, {m} cross-partition, "
                   f"{mv} moves")
            cells.append(
                f'<rect x="{b * cell_w:.1f}" y="0" width="{cell_w + 0.5:.1f}" '
                f'height="{HEAT_H}" fill="{heat_color(c / peak if peak else 0)}">'
                f'<title>{esc(tip)}</title></rect>')
        shade = svg_shading(shading_windows, t_end, SPARK_W, HEAT_H)
        total = p.get("total_commands", 0)
        multi_pct = (100.0 * p.get("total_multi", 0) / total) if total else 0.0
        label = (f"p{i}<span class='spark-stats'>{fmt(total)} cmds · "
                 f"{multi_pct:.1f}% cross-partition · "
                 f"{fmt(p.get('total_moves', 0))} moves</span>")
        rows.append(f"""
<div class="spark-row">
  <div class="spark-name">{label}</div>
  <svg width="{SPARK_W}" height="{HEAT_H}" viewBox="0 0 {SPARK_W} {HEAT_H}">
    {''.join(cells)}{shade}
  </svg>
</div>""")
    return "".join(rows)


def latency_chart(windows, interval_us, t_end, shading, marks_svg):
    """p50 and p99 per latency window on one log-free chart (two lines)."""
    pts = [(i, w) for i, w in enumerate(windows) if w.get("count", 0) > 0]
    if not pts:
        return "<p class='muted'>no latency windows recorded</p>"
    h = 72
    xs = [SPARK_W * ((i + 0.5) * interval_us) / t_end if t_end else 0 for i, _ in pts]
    p50 = [w["p50"] for _, w in pts]
    p99 = [w["p99"] for _, w in pts]
    # One shared y scale so the p50/p99 gap is visible.
    all_vals = p50 + p99
    vmin, vmax = min(all_vals), max(all_vals)
    span = (vmax - vmin) or 1

    def to_y(v):
        return h - 4 - (h - 8) * (v - vmin) / span

    return f"""
<div class="spark-row">
  <div class="spark-name">latency per window
    <span class="spark-stats"><span style="color:{C_LINE}">p50</span> ·
    <span style="color:{C_P99}">p99</span> · peak p99 {fmt(max(p99))}us</span>
  </div>
  <svg width="{SPARK_W}" height="{h}" viewBox="0 0 {SPARK_W} {h}">
    <rect width="{SPARK_W}" height="{h}" fill="#fafafa"/>
    {svg_shading(shading, t_end, SPARK_W, h) if shading else ''}{marks_svg}
    <line x1="0" y1="{h - 1}" x2="{SPARK_W}" y2="{h - 1}" stroke="{C_GRID}"/>
    {polyline(xs, [to_y(v) for v in p50], C_LINE)}
    {polyline(xs, [to_y(v) for v in p99], C_P99)}
  </svg>
</div>"""


def marks_table(marks):
    if not marks:
        return ""
    rows = "".join(
        f"<tr><td>{m['t_us'] / 1000.0:.1f}ms</td>"
        f"<td class='kind-{esc(m['kind'])}'>{esc(m['kind'])}</td>"
        f"<td>{esc(m['label'])}</td></tr>"
        for m in marks)
    return f"""
<details><summary>{len(marks)} timeline marks</summary>
<table class="marks"><tr><th>t</th><th>kind</th><th>label</th></tr>{rows}</table>
</details>"""


def meta_line(meta):
    keys = ["strategy", "placement", "partitions", "seed", "nemesis",
            "throughput_cps", "latency_p50_us", "latency_p99_us"]
    parts = []
    for k in keys:
        if k in meta:
            v = meta[k]
            try:
                v = fmt(float(v))
            except ValueError:
                pass
            parts.append(f"{k}={esc(v)}")
    return " · ".join(parts)


def render_run(run):
    label = run.get("label", "?")
    out = [f"<section><h2>{esc(label)}</h2>",
           f"<p class='meta'>{meta_line(run.get('meta', {}))}</p>"]
    tel = run.get("telemetry")
    if tel is None:
        out.append("<p class='muted'>no telemetry section — rerun the bench "
                   "with <code>--telemetry --json</code> for the full "
                   "dashboard</p></section>")
        return "".join(out)

    interval = tel.get("interval_us", 0)
    ticks = tel.get("ticks", [])
    marks = tel.get("marks", [])
    # Run extent: whichever facility saw the latest data.
    n_heat = max((len(p.get("commands", [])) for p in tel.get("partitions", [])),
                 default=0)
    t_end = max(ticks[-1] if ticks else 0,
                n_heat * interval,
                len(tel.get("latency_windows", [])) * interval,
                max((m["t_us"] for m in marks), default=0))
    shading_windows = fault_windows(marks, t_end)
    shading = svg_shading(shading_windows, t_end, SPARK_W, SPARK_H)
    marks_svg = svg_marks(marks, t_end, SPARK_H)

    if shading_windows:
        out.append(f"<p class='meta'>shaded intervals: {len(shading_windows)} "
                   "fault window(s) from the nemesis timeline</p>")

    out.append("<h3>Partition heat</h3>")
    out.append(heat_strip(tel.get("partitions", []), interval, t_end,
                          shading_windows))

    loc = [v for v in tel.get("locality", []) if v is not None]
    if loc:
        out.append(f"<p class='meta'>locality (single-partition fraction): "
                   f"min {min(loc):.3f} · mean {sum(loc) / len(loc):.3f}</p>")

    out.append(cache_effectiveness(tel.get("gauges", {}), ticks, t_end,
                                   shading, marks_svg))

    out.append("<h3>Latency</h3>")
    out.append(latency_chart(tel.get("latency_windows", []), interval, t_end,
                             shading_windows, marks_svg))

    out.append("<h3>Gauges</h3>")
    for name, values in tel.get("gauges", {}).items():
        out.append(sparkline(name, ticks, values, t_end, shading, marks_svg))

    out.append(marks_table(marks))
    out.append("</section>")
    return "".join(out)


STYLE = f"""
body {{ font: 14px/1.5 system-ui, sans-serif; color: {C_TEXT};
       max-width: 880px; margin: 2em auto; padding: 0 1em; }}
h1 {{ font-size: 1.4em; }} h2 {{ font-size: 1.15em; margin-bottom: 0.2em;
     border-bottom: 1px solid {C_GRID}; }}
h3 {{ font-size: 0.95em; margin: 1em 0 0.3em; }}
.meta, .muted {{ color: {C_MUTED}; margin: 0.2em 0; }}
.spark-row {{ display: flex; align-items: center; gap: 12px; margin: 3px 0; }}
.spark-name {{ width: 260px; font-size: 12px; overflow-wrap: anywhere; }}
.spark-stats {{ display: block; color: {C_MUTED}; font-size: 11px; }}
table.marks {{ border-collapse: collapse; font-size: 12px; margin-top: 0.4em; }}
table.marks td, table.marks th {{ border: 1px solid {C_GRID};
    padding: 2px 8px; text-align: left; }}
.kind-fault_begin {{ color: {C_P99}; }} .kind-fault_end {{ color: #16a34a; }}
.kind-event {{ color: {C_MARK}; }}
details summary {{ cursor: pointer; color: {C_MUTED}; margin-top: 0.6em; }}
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("input", help="run-record JSON (fig_* --json output)")
    ap.add_argument("-o", "--output", default=None,
                    help="output HTML path (default: REPORT_<experiment>.html)")
    ap.add_argument("--run", default=None,
                    help="render only the run with this label")
    args = ap.parse_args()

    doc = load_records(args.input)
    runs = doc.get("runs", [])
    if args.run is not None:
        runs = [r for r in runs if r.get("label") == args.run]
        if not runs:
            print(f"report: no run labelled {args.run!r} in {args.input}",
                  file=sys.stderr)
            sys.exit(2)
    if not runs:
        print(f"report: {args.input} has no runs", file=sys.stderr)
        sys.exit(2)

    experiment = doc.get("experiment", "run")
    out_path = args.output or f"REPORT_{experiment}.html"
    with_tel = sum(1 for r in runs if "telemetry" in r)

    body = "".join(render_run(r) for r in runs)
    html_doc = f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>dssmr run report — {esc(experiment)}</title>
<style>{STYLE}</style></head><body>
<h1>dssmr run report — {esc(experiment)}</h1>
<p class="meta">{esc(doc.get('schema', ''))} · {len(runs)} run(s), {with_tel}
with telemetry · source {esc(args.input)}</p>
{body}
</body></html>
"""
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(html_doc)
    print(f"wrote {out_path} ({len(runs)} runs, {with_tel} with telemetry)")


if __name__ == "__main__":
    main()
