#!/usr/bin/env python3
"""Compare two perf_suite reports (schema dssmr.perf.v1) with tolerance bands.

Usage:
    tools/perf_compare.py BASELINE.json CURRENT.json [--tolerance 0.15] [--hard]

Exit codes:
    0  within tolerance (or regressions in warn-only mode)
    1  regression with --hard
    2  structural error: unreadable input, schema mismatch, or a bench /
       metric present in the baseline but missing from the current report.
       Structural errors are fatal in BOTH modes — a comparison that could
       not actually compare must never pass silently.

Two kinds of checks:

  * Tolerance bands — each gated metric may regress by at most its band
    (fraction of the baseline value). Deterministic metrics (simulator-event
    ratios, speedups of paired runs on the same machine) get the default
    --tolerance (0.15); wall-clock rates measured on shared CI runners are
    noisy and get the wider band from WIDE_TOLERANCE. Improvements never
    fail.
  * Hard floors — REQUIRED_MIN pins minimum absolute values independent of
    the baseline (the batching speedup promise). Exact markers
    (results_identical, counters_identical) must stay 1: a determinism break
    is an error at any tolerance, because it is not a timing measurement.

CI runs this with --hard after `perf_suite --smoke --json`; the printed
table is uploaded as a build artifact. See EXPERIMENTS.md "Perf suite".
"""

import argparse
import json
import sys

# Wall-clock rates: machine-dependent (the committed baseline comes from a
# dedicated box, CI runs on shared runners), so the band is wide. Anything
# not listed uses the --tolerance default.
WIDE_TOLERANCE = 0.60

# Metrics gated per bench, beyond the every-bench items_per_sec check:
# name -> (kind, band) where kind is "wide" (WIDE_TOLERANCE), "default"
# (--tolerance), or "exact" (must match the baseline exactly).
GATED_EXTRAS = {
    "engine.schedule_fire": {"speedup_vs_legacy": "default"},
    "engine.schedule_cancel": {"speedup_vs_legacy": "default"},
    "zipf.sample": {"speedup_vs_cdf": "default"},
    "chirper.telemetry": {"counters_identical": "exact"},
    "chirper.batched": {
        # Wall-clock pair ratio: same machine for both halves, but still a
        # timing measurement — wide band.
        "speedup_vs_unbatched": "wide",
        # Simulator events per command are deterministic per seed; the small
        # drift between --smoke and full windows fits the default band.
        "event_ratio": "default",
    },
    "chirper.locality": {
        # Deterministic per seed, but the --smoke window is much shorter so
        # the cold-miss phase weighs more and the on/off ratios land in a
        # different regime than the committed full-window baseline — wide.
        "consult_ratio": "wide",
        "event_ratio": "wide",
        "throughput_ratio": "wide",
    },
    "chirper.elastic": {
        # On/off throughput of the same seed with and without a scale plan,
        # deterministic per seed, but the --smoke windows shift where the
        # rebalance settles relative to the measured window — wide.
        "throughput_ratio": "wide",
    },
    "sweep.parallel": {"results_identical": "exact"},
}

# Absolute floors, enforced against the CURRENT report regardless of the
# baseline. The batching/pipelining hot path must stay a >= 1.5x win.
REQUIRED_MIN = {
    "chirper.batched": {"event_ratio": 1.5},
    # The locality fast path promise: prefetch + repair must at least halve
    # deterministic oracle consults per command, do strictly less simulator
    # work per command, and never trade throughput away for it. Ratios are
    # off/on (consults, events) and on/off (throughput), all deterministic
    # per seed, so these floors are exact gates rather than noisy timing.
    "chirper.locality": {
        "consult_ratio": 2.0,
        "event_ratio": 1.0,
        "throughput_ratio": 1.0,
    },
    # The elasticity promise: with the scale event inside warmup, running
    # with a live partition add must keep >= 95% of the no-plan steady-state
    # throughput (the rebalance window itself is excluded by construction).
    "chirper.elastic": {"throughput_ratio": 0.95},
}


def die(msg):
    print(f"perf_compare: ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if doc.get("schema") != "dssmr.perf.v1":
        die(f"{path}: unexpected schema {doc.get('schema')!r}")
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        die(f"{path}: no benches array")
    for b in benches:
        if "name" not in b:
            die(f"{path}: bench entry without a name")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max fractional regression for deterministic metrics "
                         "(default 0.15); wall-clock rates use the wider "
                         f"{WIDE_TOLERANCE:.0%} band")
    ap.add_argument("--hard", action="store_true",
                    help="exit 1 on regression instead of warn-only")
    args = ap.parse_args()

    base = {b["name"]: b for b in load(args.baseline)["benches"]}
    cur = {b["name"]: b for b in load(args.current)["benches"]}

    structural = []
    regressions = []
    rows = []

    def band(kind):
        return WIDE_TOLERANCE if kind == "wide" else args.tolerance

    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            structural.append(f"{name}: missing from current report")
            continue

        b_rate, c_rate = b.get("items_per_sec", 0.0), c.get("items_per_sec", 0.0)
        if b_rate > 0:
            ratio = c_rate / b_rate
            flag = ""
            if ratio < 1.0 - WIDE_TOLERANCE:
                flag = "REGRESSION"
                regressions.append(
                    f"{name}: {c_rate:.0f} items/s vs baseline {b_rate:.0f} "
                    f"({(1.0 - ratio) * 100:.1f}% slower, tolerance "
                    f"{WIDE_TOLERANCE * 100:.0f}%)")
            rows.append((name, b_rate, c_rate, ratio, flag))

        for metric, kind in GATED_EXTRAS.get(name, {}).items():
            b_v = b.get(metric)
            c_v = c.get(metric)
            if b_v is None:
                continue  # older baseline without the metric: nothing to gate
            if c_v is None:
                structural.append(f"{name}.{metric}: missing from current report")
                continue
            label = f"{name}.{metric}"
            if kind == "exact":
                flag = "" if c_v == b_v else "REGRESSION"
                if flag:
                    regressions.append(f"{label}: {c_v} vs required {b_v}")
            else:
                flag = ""
                if b_v > 0 and c_v / b_v < 1.0 - band(kind):
                    flag = "REGRESSION"
                    regressions.append(
                        f"{label}: {c_v:.3f} vs baseline {b_v:.3f} "
                        f"(tolerance {band(kind) * 100:.0f}%)")
            rows.append((label, float(b_v), float(c_v),
                         float(c_v) / float(b_v) if b_v else 0.0, flag))

    for name, floors in REQUIRED_MIN.items():
        c = cur.get(name)
        if c is None:
            continue  # already a structural error above
        for metric, floor in floors.items():
            c_v = c.get(metric)
            if c_v is None:
                structural.append(f"{name}.{metric}: missing from current report")
            elif c_v < floor:
                regressions.append(
                    f"{name}.{metric}: {c_v:.3f} below required minimum {floor}")

    for name in sorted(set(cur) - set(base)):
        rows.append((name, 0.0, cur[name].get("items_per_sec", 0.0), 0.0, "new"))

    print(f"{'metric':<40} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for name, b_v, c_v, ratio, flag in rows:
        print(f"{name:<40} {b_v:>14.2f} {c_v:>14.2f} {ratio:>7.2f} {flag}")

    # Telemetry overhead is a measurement we track, not a pass/fail rate: the
    # recorder's promise is "cheap when on, free when off", so surface the
    # on-vs-off wall-clock diff and flag when it drifts noticeably.
    tel_base = base.get("chirper.telemetry", {}).get("overhead_pct")
    tel_cur = cur.get("chirper.telemetry", {}).get("overhead_pct")
    if tel_cur is not None:
        line = f"telemetry overhead: {tel_cur:+.1f}% on-vs-off"
        if tel_base is not None:
            line += f" (baseline {tel_base:+.1f}%)"
            if tel_cur > tel_base + 100.0 * WIDE_TOLERANCE:
                regressions.append(
                    f"chirper.telemetry: recorder overhead {tel_cur:.1f}% vs "
                    f"baseline {tel_base:.1f}%")
        print(f"\n{line}")

    if structural:
        print()
        for s in structural:
            print(f"perf_compare: ERROR: {s}", file=sys.stderr)
        sys.exit(2)

    if regressions:
        print()
        for r in regressions:
            print(f"perf_compare: {'FAIL' if args.hard else 'WARN'}: {r}",
                  file=sys.stderr)
        if args.hard:
            sys.exit(1)
    else:
        print("\nperf_compare: all benches within tolerance")


if __name__ == "__main__":
    main()
