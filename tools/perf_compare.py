#!/usr/bin/env python3
"""Compare two perf_suite reports (schema dssmr.perf.v1) with tolerance bands.

Usage:
    tools/perf_compare.py BASELINE.json CURRENT.json [--tolerance 0.25] [--hard]

Exit codes: 0 = within tolerance (or warn-only mode), 1 = regression in
--hard mode, 2 = bad input.

Rate metrics (items_per_sec) may regress by at most `tolerance` (fractional;
default 0.25 — wall-clock numbers on shared CI runners are noisy, so the
default band is wide). Improvements never fail. The `results_identical`
marker from sweep.parallel must stay 1 — a parallel-determinism break is an
error at any tolerance, because it is not a timing measurement.

CI runs this warn-only after `perf_suite --smoke --json`; see EXPERIMENTS.md
for the promotion path to --hard.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "dssmr.perf.v1":
        print(f"perf_compare: {path}: unexpected schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max fractional rate regression before flagging (default 0.25)")
    ap.add_argument("--hard", action="store_true",
                    help="exit 1 on regression instead of warn-only")
    args = ap.parse_args()

    base = {b["name"]: b for b in load(args.baseline)["benches"]}
    cur = {b["name"]: b for b in load(args.current)["benches"]}

    regressions = []
    rows = []
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            regressions.append(f"{name}: missing from current report")
            continue
        b_rate, c_rate = b.get("items_per_sec", 0.0), c.get("items_per_sec", 0.0)
        if b_rate > 0:
            ratio = c_rate / b_rate
            flag = ""
            if ratio < 1.0 - args.tolerance:
                flag = "REGRESSION"
                regressions.append(
                    f"{name}: {c_rate:.0f} items/s vs baseline {b_rate:.0f} "
                    f"({(1.0 - ratio) * 100:.1f}% slower, tolerance "
                    f"{args.tolerance * 100:.0f}%)")
            rows.append((name, b_rate, c_rate, ratio, flag))
        if b.get("results_identical") == 1 and c.get("results_identical") != 1:
            regressions.append(f"{name}: parallel sweep results no longer identical")
        if b.get("counters_identical") == 1 and c.get("counters_identical") != 1:
            regressions.append(f"{name}: telemetry run diverged from telemetry-off run")

    for name in sorted(set(cur) - set(base)):
        rows.append((name, 0.0, cur[name].get("items_per_sec", 0.0), 0.0, "new"))

    print(f"{'bench':<24} {'baseline/s':>14} {'current/s':>14} {'ratio':>7}")
    for name, b_rate, c_rate, ratio, flag in rows:
        print(f"{name:<24} {b_rate:>14.0f} {c_rate:>14.0f} {ratio:>7.2f} {flag}")

    # Telemetry overhead is a measurement we track, not a pass/fail rate: the
    # recorder's promise is "cheap when on, free when off", so surface the
    # on-vs-off wall-clock diff and warn when it drifts noticeably.
    tel_base = base.get("chirper.telemetry", {}).get("overhead_pct")
    tel_cur = cur.get("chirper.telemetry", {}).get("overhead_pct")
    if tel_cur is not None:
        line = f"telemetry overhead: {tel_cur:+.1f}% on-vs-off"
        if tel_base is not None:
            line += f" (baseline {tel_base:+.1f}%)"
            if tel_cur > tel_base + 100.0 * args.tolerance:
                regressions.append(
                    f"chirper.telemetry: recorder overhead {tel_cur:.1f}% vs "
                    f"baseline {tel_base:.1f}%")
        print(f"\n{line}")

    if regressions:
        print()
        for r in regressions:
            print(f"perf_compare: {'FAIL' if args.hard else 'WARN'}: {r}",
                  file=sys.stderr)
        if args.hard:
            sys.exit(1)
    else:
        print("\nperf_compare: all benches within tolerance")


if __name__ == "__main__":
    main()
