# Empty dependencies file for dssmr.
# This may be replaced when dependencies are built.
