file(REMOVE_RECURSE
  "libdssmr.a"
)
