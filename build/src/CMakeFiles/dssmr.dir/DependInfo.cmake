
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chirper/chirper.cpp" "src/CMakeFiles/dssmr.dir/chirper/chirper.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/chirper/chirper.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dssmr.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/common/rng.cpp.o.d"
  "/root/repo/src/consensus/paxos.cpp" "src/CMakeFiles/dssmr.dir/consensus/paxos.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/consensus/paxos.cpp.o.d"
  "/root/repo/src/core/client_proxy.cpp" "src/CMakeFiles/dssmr.dir/core/client_proxy.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/core/client_proxy.cpp.o.d"
  "/root/repo/src/core/dynastar_policy.cpp" "src/CMakeFiles/dssmr.dir/core/dynastar_policy.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/core/dynastar_policy.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/CMakeFiles/dssmr.dir/core/oracle.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/core/oracle.cpp.o.d"
  "/root/repo/src/core/server_proxy.cpp" "src/CMakeFiles/dssmr.dir/core/server_proxy.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/core/server_proxy.cpp.o.d"
  "/root/repo/src/harness/deployment.cpp" "src/CMakeFiles/dssmr.dir/harness/deployment.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/harness/deployment.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/dssmr.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/lincheck/lincheck.cpp" "src/CMakeFiles/dssmr.dir/lincheck/lincheck.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/lincheck/lincheck.cpp.o.d"
  "/root/repo/src/multicast/atomic.cpp" "src/CMakeFiles/dssmr.dir/multicast/atomic.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/multicast/atomic.cpp.o.d"
  "/root/repo/src/multicast/client.cpp" "src/CMakeFiles/dssmr.dir/multicast/client.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/multicast/client.cpp.o.d"
  "/root/repo/src/multicast/reliable.cpp" "src/CMakeFiles/dssmr.dir/multicast/reliable.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/multicast/reliable.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/dssmr.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/net/network.cpp.o.d"
  "/root/repo/src/partition/graph.cpp" "src/CMakeFiles/dssmr.dir/partition/graph.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/partition/graph.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/dssmr.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dssmr.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/sim/engine.cpp.o.d"
  "/root/repo/src/smr/command.cpp" "src/CMakeFiles/dssmr.dir/smr/command.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/smr/command.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/dssmr.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/dssmr.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/dssmr.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/workload/chirper_workload.cpp" "src/CMakeFiles/dssmr.dir/workload/chirper_workload.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/workload/chirper_workload.cpp.o.d"
  "/root/repo/src/workload/holme_kim.cpp" "src/CMakeFiles/dssmr.dir/workload/holme_kim.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/workload/holme_kim.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/CMakeFiles/dssmr.dir/workload/zipf.cpp.o" "gcc" "src/CMakeFiles/dssmr.dir/workload/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
