# Empty compiler generated dependencies file for fig_convergence.
# This may be replaced when dependencies are built.
