file(REMOVE_RECURSE
  "../bench/fig_convergence"
  "../bench/fig_convergence.pdb"
  "CMakeFiles/fig_convergence.dir/fig_convergence.cpp.o"
  "CMakeFiles/fig_convergence.dir/fig_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
