# Empty dependencies file for fig_throughput_scalability.
# This may be replaced when dependencies are built.
