file(REMOVE_RECURSE
  "../bench/fig_throughput_scalability"
  "../bench/fig_throughput_scalability.pdb"
  "CMakeFiles/fig_throughput_scalability.dir/fig_throughput_scalability.cpp.o"
  "CMakeFiles/fig_throughput_scalability.dir/fig_throughput_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_throughput_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
