# Empty compiler generated dependencies file for micro_multicast.
# This may be replaced when dependencies are built.
