file(REMOVE_RECURSE
  "../bench/micro_multicast"
  "../bench/micro_multicast.pdb"
  "CMakeFiles/micro_multicast.dir/micro_multicast.cpp.o"
  "CMakeFiles/micro_multicast.dir/micro_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
