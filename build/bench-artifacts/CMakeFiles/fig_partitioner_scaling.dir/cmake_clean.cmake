file(REMOVE_RECURSE
  "../bench/fig_partitioner_scaling"
  "../bench/fig_partitioner_scaling.pdb"
  "CMakeFiles/fig_partitioner_scaling.dir/fig_partitioner_scaling.cpp.o"
  "CMakeFiles/fig_partitioner_scaling.dir/fig_partitioner_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_partitioner_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
