file(REMOVE_RECURSE
  "../bench/fig_weak_locality"
  "../bench/fig_weak_locality.pdb"
  "CMakeFiles/fig_weak_locality.dir/fig_weak_locality.cpp.o"
  "CMakeFiles/fig_weak_locality.dir/fig_weak_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_weak_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
