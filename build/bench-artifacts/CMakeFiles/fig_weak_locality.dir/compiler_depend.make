# Empty compiler generated dependencies file for fig_weak_locality.
# This may be replaced when dependencies are built.
