file(REMOVE_RECURSE
  "../bench/fig_dynamic_load"
  "../bench/fig_dynamic_load.pdb"
  "CMakeFiles/fig_dynamic_load.dir/fig_dynamic_load.cpp.o"
  "CMakeFiles/fig_dynamic_load.dir/fig_dynamic_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_dynamic_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
