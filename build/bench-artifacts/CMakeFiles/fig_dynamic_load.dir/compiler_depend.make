# Empty compiler generated dependencies file for fig_dynamic_load.
# This may be replaced when dependencies are built.
