# Empty dependencies file for fig_latency.
# This may be replaced when dependencies are built.
