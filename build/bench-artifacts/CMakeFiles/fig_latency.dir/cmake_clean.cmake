file(REMOVE_RECURSE
  "../bench/fig_latency"
  "../bench/fig_latency.pdb"
  "CMakeFiles/fig_latency.dir/fig_latency.cpp.o"
  "CMakeFiles/fig_latency.dir/fig_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
