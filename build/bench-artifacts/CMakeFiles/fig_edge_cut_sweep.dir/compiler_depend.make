# Empty compiler generated dependencies file for fig_edge_cut_sweep.
# This may be replaced when dependencies are built.
