file(REMOVE_RECURSE
  "../bench/fig_edge_cut_sweep"
  "../bench/fig_edge_cut_sweep.pdb"
  "CMakeFiles/fig_edge_cut_sweep.dir/fig_edge_cut_sweep.cpp.o"
  "CMakeFiles/fig_edge_cut_sweep.dir/fig_edge_cut_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_edge_cut_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
