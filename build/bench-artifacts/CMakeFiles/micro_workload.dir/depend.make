# Empty dependencies file for micro_workload.
# This may be replaced when dependencies are built.
