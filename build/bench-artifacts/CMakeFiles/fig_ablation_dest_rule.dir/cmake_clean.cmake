file(REMOVE_RECURSE
  "../bench/fig_ablation_dest_rule"
  "../bench/fig_ablation_dest_rule.pdb"
  "CMakeFiles/fig_ablation_dest_rule.dir/fig_ablation_dest_rule.cpp.o"
  "CMakeFiles/fig_ablation_dest_rule.dir/fig_ablation_dest_rule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ablation_dest_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
