# Empty dependencies file for fig_ablation_dest_rule.
# This may be replaced when dependencies are built.
