# Empty compiler generated dependencies file for fig_latency_cdf.
# This may be replaced when dependencies are built.
