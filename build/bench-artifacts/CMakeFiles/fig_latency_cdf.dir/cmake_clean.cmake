file(REMOVE_RECURSE
  "../bench/fig_latency_cdf"
  "../bench/fig_latency_cdf.pdb"
  "CMakeFiles/fig_latency_cdf.dir/fig_latency_cdf.cpp.o"
  "CMakeFiles/fig_latency_cdf.dir/fig_latency_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_latency_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
