file(REMOVE_RECURSE
  "../bench/fig_oracle_load"
  "../bench/fig_oracle_load.pdb"
  "CMakeFiles/fig_oracle_load.dir/fig_oracle_load.cpp.o"
  "CMakeFiles/fig_oracle_load.dir/fig_oracle_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_oracle_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
