# Empty compiler generated dependencies file for fig_oracle_load.
# This may be replaced when dependencies are built.
