file(REMOVE_RECURSE
  "CMakeFiles/dynamic_repartition.dir/dynamic_repartition.cpp.o"
  "CMakeFiles/dynamic_repartition.dir/dynamic_repartition.cpp.o.d"
  "dynamic_repartition"
  "dynamic_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
