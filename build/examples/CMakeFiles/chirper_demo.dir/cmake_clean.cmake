file(REMOVE_RECURSE
  "CMakeFiles/chirper_demo.dir/chirper_demo.cpp.o"
  "CMakeFiles/chirper_demo.dir/chirper_demo.cpp.o.d"
  "chirper_demo"
  "chirper_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirper_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
