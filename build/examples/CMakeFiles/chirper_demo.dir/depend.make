# Empty dependencies file for chirper_demo.
# This may be replaced when dependencies are built.
