file(REMOVE_RECURSE
  "CMakeFiles/dssmr_sim.dir/dssmr_sim.cpp.o"
  "CMakeFiles/dssmr_sim.dir/dssmr_sim.cpp.o.d"
  "dssmr_sim"
  "dssmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
