# Empty compiler generated dependencies file for dssmr_sim.
# This may be replaced when dependencies are built.
