file(REMOVE_RECURSE
  "CMakeFiles/lincheck_test.dir/lincheck_test.cpp.o"
  "CMakeFiles/lincheck_test.dir/lincheck_test.cpp.o.d"
  "lincheck_test"
  "lincheck_test.pdb"
  "lincheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lincheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
