# Empty dependencies file for partition_fault_test.
# This may be replaced when dependencies are built.
