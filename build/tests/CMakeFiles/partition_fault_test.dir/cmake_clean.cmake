file(REMOVE_RECURSE
  "CMakeFiles/partition_fault_test.dir/partition_fault_test.cpp.o"
  "CMakeFiles/partition_fault_test.dir/partition_fault_test.cpp.o.d"
  "partition_fault_test"
  "partition_fault_test.pdb"
  "partition_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
