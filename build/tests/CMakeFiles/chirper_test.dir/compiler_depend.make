# Empty compiler generated dependencies file for chirper_test.
# This may be replaced when dependencies are built.
