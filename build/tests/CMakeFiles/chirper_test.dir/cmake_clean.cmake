file(REMOVE_RECURSE
  "CMakeFiles/chirper_test.dir/chirper_test.cpp.o"
  "CMakeFiles/chirper_test.dir/chirper_test.cpp.o.d"
  "chirper_test"
  "chirper_test.pdb"
  "chirper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
