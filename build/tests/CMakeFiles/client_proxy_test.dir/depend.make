# Empty dependencies file for client_proxy_test.
# This may be replaced when dependencies are built.
