file(REMOVE_RECURSE
  "CMakeFiles/client_proxy_test.dir/client_proxy_test.cpp.o"
  "CMakeFiles/client_proxy_test.dir/client_proxy_test.cpp.o.d"
  "client_proxy_test"
  "client_proxy_test.pdb"
  "client_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
