file(REMOVE_RECURSE
  "CMakeFiles/dssmr_core_test.dir/dssmr_core_test.cpp.o"
  "CMakeFiles/dssmr_core_test.dir/dssmr_core_test.cpp.o.d"
  "dssmr_core_test"
  "dssmr_core_test.pdb"
  "dssmr_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssmr_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
