# Empty dependencies file for dssmr_core_test.
# This may be replaced when dependencies are built.
