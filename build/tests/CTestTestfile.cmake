# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/dssmr_core_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/chirper_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/lincheck_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/partition_fault_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/client_proxy_test[1]_include.cmake")
