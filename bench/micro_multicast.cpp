// Microbenchmarks of the communication substrate (google-benchmark):
// engine event throughput, network send, Paxos decision round, atomic and
// reliable multicast end-to-end rounds.
#include <benchmark/benchmark.h>

#include "multicast/atomic.h"
#include "multicast/client.h"
#include "multicast/directory.h"
#include "net/network.h"
#include "sim/engine.h"

namespace {

using namespace dssmr;

struct IntPayload final : net::Message {
  std::int64_t v;
  explicit IntPayload(std::int64_t x) : v(x) {}
  const char* type_name() const override { return "bench.int"; }
};

void BM_EngineScheduleAndRun(benchmark::State& state) {
  sim::Engine engine;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      engine.schedule(i, [&sink] { ++sink; });
    }
    engine.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EngineScheduleAndRun);

void BM_EngineScheduleFire(benchmark::State& state) {
  // Pure schedule->fire round trips with a deep queue already in place —
  // the steady-state shape of a busy simulation.
  sim::Engine engine;
  std::int64_t sink = 0;
  for (int i = 0; i < 1024; ++i) engine.schedule(1'000'000'000 + i, [&sink] { ++sink; });
  for (auto _ : state) {
    engine.schedule(0, [&sink] { ++sink; });
    engine.step();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineScheduleCancel(benchmark::State& state) {
  // The timeout pattern: nearly every armed timer is cancelled before it
  // fires (client op timeouts, paxos re-elections).
  sim::Engine engine;
  std::int64_t sink = 0;
  for (auto _ : state) {
    sim::TimerId ids[64];
    for (int i = 0; i < 64; ++i) {
      ids[i] = engine.schedule(1000 + i, [&sink] { ++sink; });
    }
    for (int i = 0; i < 64; ++i) engine.cancel(ids[i]);
    engine.run();  // drains the dead heap entries without firing anything
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EngineScheduleCancel);

class Sink : public net::Actor {
 public:
  void on_message(ProcessId, const net::MessagePtr&) override { ++count; }
  std::uint64_t count = 0;
};

void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  auto msg = net::make_msg<IntPayload>(1);
  for (auto _ : state) {
    network.send(pa, pb, msg);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_NetworkMultisend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  Sink sender;
  auto from = network.add_process(sender, 0);
  std::vector<std::unique_ptr<Sink>> sinks;
  std::vector<ProcessId> dests;
  for (std::size_t i = 0; i < fanout; ++i) {
    sinks.push_back(std::make_unique<Sink>());
    dests.push_back(network.add_process(*sinks.back(), static_cast<int>(i % 2)));
  }
  auto msg = net::make_msg<IntPayload>(1);
  for (auto _ : state) {
    network.multisend(from, dests, msg);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_NetworkMultisend)->Arg(4)->Arg(16);

class NullGroupNode : public multicast::GroupNode {
 public:
  std::uint64_t delivered = 0;

 protected:
  void on_amdeliver(const multicast::AmcastMessage&) override { ++delivered; }
  void on_rmdeliver(ProcessId, const net::MessagePtr&) override { ++delivered; }
};

class NullClient : public multicast::ClientNode {
 protected:
  void on_reply(ProcessId, const net::MessagePtr&) override {}
};

struct MiniFabric {
  MiniFabric(std::size_t groups, std::size_t replicas)
      : network(engine, {}, 1) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<ProcessId> members;
      for (std::size_t r = 0; r < replicas; ++r) {
        nodes.push_back(std::make_unique<NullGroupNode>());
        members.push_back(network.add_process(*nodes.back(), 0));
      }
      directory.add_group(std::move(members));
    }
    std::size_t i = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t r = 0; r < replicas; ++r, ++i) {
        nodes[i]->init_group_node(network, directory, GroupId{static_cast<std::uint32_t>(g)},
                                  {}, 11 + i);
      }
    }
    for (auto& n : nodes) n->start();
    network.add_process(client, 0);
    client.init_client_node(network, directory);
    engine.run_for(msec(20));  // elect leaders
  }

  std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (const auto& node : nodes) n += node->delivered;
    return n;
  }

  sim::Engine engine;
  net::Network network;
  multicast::Directory directory;
  std::vector<std::unique_ptr<NullGroupNode>> nodes;
  NullClient client;
};

void BM_AmcastSingleGroupRound(benchmark::State& state) {
  MiniFabric f{1, 3};
  for (auto _ : state) {
    f.client.amcast({GroupId{0}}, net::make_msg<IntPayload>(1));
    f.engine.run_for(msec(2));
  }
  state.counters["delivered"] =
      static_cast<double>(f.total_delivered()) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmcastSingleGroupRound);

void BM_AmcastMultiGroupRound(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  MiniFabric f{groups, 3};
  std::vector<GroupId> dests;
  for (std::uint32_t g = 0; g < groups; ++g) dests.push_back(GroupId{g});
  for (auto _ : state) {
    f.client.amcast(dests, net::make_msg<IntPayload>(1));
    f.engine.run_for(msec(4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmcastMultiGroupRound)->Arg(2)->Arg(4)->Arg(8);

void BM_RmcastRound(benchmark::State& state) {
  MiniFabric f{2, 3};
  for (auto _ : state) {
    f.nodes[0]->rmcast({GroupId{1}}, net::make_msg<IntPayload>(1));
    f.engine.run_for(msec(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RmcastRound);

void BM_PaxosDecisionBatch(benchmark::State& state) {
  // One client submission per iteration, decided through the full Paxos
  // message flow (submit -> P2a -> P2b -> commit).
  MiniFabric f{1, 3};
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      f.client.amcast({GroupId{0}}, net::make_msg<IntPayload>(i));
    }
    f.engine.run_for(msec(2));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_PaxosDecisionBatch);

}  // namespace

BENCHMARK_MAIN();
