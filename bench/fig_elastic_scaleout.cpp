// E10 — Elastic scale-out: live partition add with state transfer.
//
// A DS-SMR chirper deployment starts at 2 partitions, driven to saturation
// by a fixed client population. Mid-run a ScalePlan boots a third partition;
// the oracle admits it through an atomically multicast membership record and
// rebalances variables onto it with chunked bulk moves while clients keep
// executing. Expected shape: throughput plateaus at the 2-partition capacity,
// dips briefly during the rebalance window (move churn), then settles above
// the pre-scale plateau once a third of the load lives on the new partition.
//
// The plan is --scale-plan (default add-partition@3s); the run extends to the
// plan's last event + 8s so late events still show their post-scale plateau.
#include <algorithm>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;

  RunRecordSink sink(argc, argv, "fig_elastic_scaleout");
  heading("E10: elastic scale-out — live partition add + rebalance, 2 partitions + 1");

  const std::string plan_spec =
      sink.scale_plan().empty() ? "add-partition@3s" : sink.scale_plan();
  const fault::ScalePlan plan = fault::resolve_scale_plan(plan_spec);
  const Duration last_event = plan.events.back().at;

  harness::ChirperRunConfig cfg;
  cfg.strategy = core::Strategy::kDssmr;
  cfg.placement = harness::Placement::kMetis;
  cfg.partitions = 2;
  cfg.clients_per_partition = 48;  // saturates 2 partitions, so capacity shows
  cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.warmup = 0;
  cfg.measure = std::max(last_event + sec(8), sec(12));
  cfg.seed = 42;
  cfg.scale_plan = plan_spec;
  cfg.trace = sink.trace_wanted();
  cfg.spans = sink.spans_wanted();
  cfg.nemesis = sink.nemesis();
  cfg.telemetry = sink.telemetry_wanted();
  cfg.telemetry_interval = sink.telemetry_interval();
  cfg.spans_capacity = sink.spans_capacity();
  cfg.batch_size = sink.batch_size();
  cfg.batch_delay = sink.batch_delay();
  cfg.pipeline_depth = sink.pipeline_depth();
  cfg.prefetch_k = sink.prefetch_k();
  cfg.cache_repair = sink.cache_repair();
  cfg.coalesce_moves = sink.coalesce_moves();
  cfg.coalesce_delay = sink.coalesce_delay();

  const std::vector<SweepPoint> points = {{cfg, "elastic"}};
  const auto results = run_points(sink, points);
  const harness::RunResult& r = results[0];

  subheading("plan: " + plan_spec);
  print_series("tput(cps) ", r.tput_series);
  print_series("moves/s   ", r.moves_series);

  // Pre-scale plateau vs post-rebalance plateau: mean of the two seconds
  // before the first event vs the last two full seconds of the run.
  const auto sec_of = [](Duration t) { return static_cast<std::size_t>(t / sec(1)); };
  const std::size_t first_ev = sec_of(plan.events.front().at);
  const std::size_t total = r.tput_series.size();
  double pre = 0.0;
  double post = 0.0;
  if (first_ev >= 1 && total >= 3) {
    const std::size_t pre_n = std::min<std::size_t>(first_ev, 2);
    for (std::size_t i = first_ev - pre_n; i < first_ev; ++i) pre += r.tput_series[i];
    pre /= static_cast<double>(pre_n);
    for (std::size_t i = total - 3; i < total - 1; ++i) post += r.tput_series[i];
    post /= 2.0;
  }
  std::printf("\npre-scale plateau:  %8.0f cps (mean of the %zu s before the first event)\n",
              pre, std::min<std::size_t>(first_ev, 2));
  std::printf("post-scale plateau: %8.0f cps (mean of the last 2 full seconds)\n", post);
  std::printf("partitions added: %llu, retired: %llu, rebalance moves: %llu "
              "(%llu variables shipped)\n",
              static_cast<unsigned long long>(r.counter("elastic.partitions_added")),
              static_cast<unsigned long long>(r.counter("elastic.partitions_retired")),
              static_cast<unsigned long long>(r.counter("elastic.rebalance_moves")),
              static_cast<unsigned long long>(r.counter("elastic.rebalance_vars")));
  return sink.finish();
}
