// E8 — Dynamic workloads (the supplied text's "adding nodes and
// repartitioning dynamically" figure).
//
// The system starts empty. Clients continuously create users, follow each
// other (friend-of-friend biased, so communities emerge) and post. The
// DynaStar-style oracle accumulates hint edges and recomputes the ideal
// partitioning every N hints. Expected shape: throughput ratchets upward
// after repartitionings as the placement matches the emerging communities,
// while the plain DS-SMR oracle improves only via greedy per-command moves.
#include <memory>
#include <optional>

#include "bench_util.h"
#include "chirper/chirper.h"
#include "core/dynastar_policy.h"
#include "fault/nemesis.h"
#include "fault/scaler.h"
#include "workload/chirper_workload.h"

namespace {

using namespace dssmr;

/// Generator with two phases: (1) grow the network — create users and follow
/// friend-of-friend until the target size and degree are reached; (2) drive
/// posts over the grown graph. Keeping the graph fixed in phase 2 makes the
/// placement-improvement effect visible (otherwise ever-growing post fan-out
/// masks it).
class GrowingWorkload {
 public:
  GrowingWorkload(std::size_t target_users, std::size_t target_edges, std::uint64_t seed)
      : target_(target_users),
        target_edges_(target_edges),
        graph_(target_users),
        rng_(seed) {}

  smr::Command next() {
    if (created_ < target_ && (created_ < 64 || rng_.chance(0.4))) {
      smr::Command c;
      c.type = smr::CommandType::kCreate;
      c.write_set = {VarId{created_++}};
      return c;
    }
    if (graph_.edge_count() < target_edges_ || created_ < target_) {
      // Follow, friend-of-friend biased.
      const VarId u = VarId{rng_.below(created_)};
      VarId v = u;
      const auto& nbrs = graph_.neighbors(u);
      if (!nbrs.empty() && rng_.chance(0.8)) {
        const VarId w = nbrs[rng_.below(nbrs.size())];
        const auto& second = graph_.neighbors(w);
        if (!second.empty()) v = second[rng_.below(second.size())];
      } else {
        v = VarId{rng_.below(created_)};
      }
      if (v != u && v.value < created_ && !graph_.connected(u, v)) {
        graph_.add_edge(u, v);
        return chirper::make_follow(u, v);
      }
    }
    const VarId u = VarId{rng_.below(created_)};
    return chirper::make_post(u, graph_.neighbors(u), "growing up");
  }

 private:
  std::uint64_t target_;
  std::size_t target_edges_;
  std::uint64_t created_ = 0;
  workload::SocialGraph graph_;
  Rng rng_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dssmr::bench;

  RunRecordSink sink(argc, argv, "fig_dynamic_load");
  heading("E8: dynamic workload — create users + follow + post, repartition on-line");

  struct Outcome {
    std::vector<double> tput, moves;
    std::uint64_t creates = 0;
    std::uint64_t repartitionings = 0;
    stats::RunRecord rec;
  };
  const bool kVariants[] = {true, false};

  // Each variant builds its own deployment, so the two runs are independent
  // and can execute on sweep threads (--jobs 2); outputs are collected by
  // index and printed afterwards, identical to a serial run.
  auto outcomes = harness::parallel_map(2, sink.jobs(), [&](std::size_t vi) {
    const bool dynastar = kVariants[vi];
    harness::DeploymentConfig dep;
    dep.partitions = 4;
    dep.replicas_per_partition = 2;
    dep.oracle_replicas = 2;
    dep.clients = 32;
    dep.strategy = dynastar ? core::Strategy::kDynaStar : core::Strategy::kDssmr;
    dep.client_hints = dynastar;
    dep.oracle.oracle_issues_moves = dynastar;
    dep.node.rmcast_relay = false;
    dep.seed = 42;
    dep.trace = sink.trace_wanted();
    dep.spans = sink.spans_wanted();
    dep.telemetry = sink.telemetry_wanted();
    dep.telemetry_interval = sink.telemetry_interval();
    dep.spans_capacity = sink.spans_capacity();
    dep.batch_size = sink.batch_size();
    dep.batch_delay = sink.batch_delay();
    dep.pipeline_depth = sink.pipeline_depth();
    dep.prefetch_k = sink.prefetch_k();
    dep.cache_repair = sink.cache_repair();
    dep.coalesce_moves = sink.coalesce_moves();
    dep.coalesce_delay = sink.coalesce_delay();
    dep.elastic = !sink.scale_plan().empty();
    dep.oracle.elastic = dep.elastic;

    harness::PolicyFactory policy;
    if (dynastar) {
      core::DynaStarPolicy::Config pc;
      pc.repartition_every_hints = 1500;
      pc.partitioner.k = 4;
      policy = [pc] { return std::make_unique<core::DynaStarPolicy>(pc); };
    } else {
      policy = [] { return std::make_unique<core::DssmrPolicy>(); };
    }

    harness::Deployment d{dep, chirper::chirper_app_factory({usec(80), usec(5), usec(0)}),
                          std::move(policy)};
    d.start();
    d.settle();

    std::optional<fault::Nemesis> nemesis;
    if (!sink.nemesis().empty()) {
      nemesis.emplace(d, fault::resolve_plan(sink.nemesis()));
      nemesis->arm();
    }
    std::optional<fault::Scaler> scaler;
    if (!sink.scale_plan().empty()) {
      scaler.emplace(d, fault::resolve_scale_plan(sink.scale_plan()));
      scaler->arm();
    }

    GrowingWorkload wl{1500, /*target_edges=*/3000, 7};
    harness::ClosedLoopDriver driver{d, [&wl] { return wl.next(); }};
    driver.run(/*warmup=*/0, /*measure=*/sec(12));

    Outcome out;
    if (const auto* s = d.metrics().find_series("client.completions"); s != nullptr) {
      for (std::size_t i = 0; i < 12; ++i) out.tput.push_back(s->rate(i));
    }
    if (const auto* s = d.metrics().find_series("moves_ts"); s != nullptr) {
      for (std::size_t i = 0; i < 12; ++i) out.moves.push_back(s->rate(i));
    }
    out.creates = d.metrics().counter("oracle.creates");
    out.repartitionings = d.oracle(0).policy().repartition_count();

    out.rec.label = dynastar ? "dynastar" : "dssmr";
    out.rec.metrics = d.metrics();
    out.rec.add_meta("strategy", out.rec.label);
    out.rec.add_meta("partitions", std::to_string(dep.partitions));
    out.rec.add_meta("clients", std::to_string(dep.clients));
    out.rec.add_meta("seed", std::to_string(dep.seed));
    out.rec.add_meta("repartitionings", std::to_string(out.repartitionings));
    out.rec.add_meta("nemesis", sink.nemesis().empty() ? "none" : sink.nemesis());
    if (!sink.scale_plan().empty()) out.rec.add_meta("scale_plan", sink.scale_plan());
    sink.add_locality_meta(out.rec);
    return out;
  });

  for (std::size_t vi = 0; vi < 2; ++vi) {
    Outcome& out = outcomes[vi];
    subheading(kVariants[vi] ? "DynaStar-style oracle" : "DS-SMR oracle");
    print_series("tput(cps) ", out.tput);
    print_series("moves/s   ", out.moves);
    std::printf("users created: %llu, repartitionings: %llu\n",
                static_cast<unsigned long long>(out.creates),
                static_cast<unsigned long long>(out.repartitionings));
    sink.add(std::move(out.rec));
  }
  return sink.finish();
}
