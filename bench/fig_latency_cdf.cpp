// E3 — Latency CDF per strategy (DSN'16 latency-distribution figure).
//
// Post-only mix, 4 partitions. Expected shape: S-SMR/hash has a fat tail
// (multi-partition coordination on most posts); DS-SMR is bimodal — fast
// single-partition executions plus a move/retry tail; the optimized static
// scheme sits between.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::Strategy;
  using harness::ChirperRunConfig;
  using harness::Placement;

  RunRecordSink sink(argc, argv, "fig_latency_cdf");
  heading("E3: Chirper latency CDF, post-only mix, 4 partitions");

  struct StrategyCase {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const StrategyCase kCases[] = {
      {Strategy::kStaticSsmr, Placement::kHash, "S-SMR/hash"},
      {Strategy::kStaticSsmr, Placement::kMetis, "S-SMR/optimized"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
  };

  std::vector<SweepPoint> points;
  for (const auto& c : kCases) {
    ChirperRunConfig cfg;
    cfg.strategy = c.strategy;
    cfg.placement = c.placement;
    cfg.partitions = 4;
    cfg.clients_per_partition = 8;
    cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
    cfg.use_controlled_cut = true;
    cfg.controlled_edge_cut = 0.01;
    cfg.workload.mix = workload::mixes::kPostOnly;
    cfg.warmup = sec(3);
    cfg.measure = sec(3);
    cfg.seed = 42;
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, c.label});
  }
  const auto results = run_points(sink, points);

  for (std::size_t i = 0; i < results.size(); ++i) {
    subheading(points[i].label);
    std::printf("%10s %10s\n", "lat(us)", "cdf");
    for (const auto& [value, fraction] : results[i].latency_hist.cdf(16)) {
      std::printf("%10lld %10.4f\n", static_cast<long long>(value), fraction);
    }
  }
  return sink.finish();
}
