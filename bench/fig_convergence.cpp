// E4 — Convergence under strong locality (motivation figure, left column:
// throughput and moves over time on a perfectly partitionable workload).
//
// Post-only mix over perfectly partitionable communities (0% cross edges),
// hash-scattered initial placement, 4 partitions. Expected shape: the
// "perfect static" scheme (optimized placement, no moves) runs at peak from
// t=0; DS-SMR starts low and climbs as moves collocate communities, then
// moves drop to ~0; the DynaStar-style oracle converges faster (it computes
// the ideal partitioning from the workload graph instead of greedy moves).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::Strategy;
  using harness::ChirperRunConfig;
  using harness::Placement;

  RunRecordSink sink(argc, argv, "fig_convergence");
  heading("E4: throughput & moves over time, STRONG locality (0% edge cut), 4 partitions");

  struct Case {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const Case kCases[] = {
      {Strategy::kStaticSsmr, Placement::kMetis, "perfect-static"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
      {Strategy::kDynaStar, Placement::kHash, "DynaStar"},
  };

  std::vector<SweepPoint> points;
  for (const auto& c : kCases) {
    ChirperRunConfig cfg;
    cfg.strategy = c.strategy;
    cfg.placement = c.placement;
    cfg.partitions = 4;
    cfg.clients_per_partition = 8;
    cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
    cfg.use_controlled_cut = true;
    cfg.controlled_edge_cut = 0.0;
    cfg.workload.mix = workload::mixes::kPostOnly;
    cfg.workload.hint_posts = true;
    cfg.dynastar_hint_threshold = 1500;
    cfg.warmup = 0;
    cfg.measure = sec(12);
    cfg.seed = 42;
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, c.label});
  }
  const auto results = run_points(sink, points);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    subheading(points[i].label);
    print_series("tput(cps) ", r.tput_series);
    print_series("moves/s   ", r.moves_series);
    std::printf("total moves: %llu\n",
                static_cast<unsigned long long>(r.counter("moves.total")));
  }
  return sink.finish();
}
