// E2 — Latency under the same scalability sweep as E1 (DSN'16 latency
// figure): average and tail latency per strategy, partitions 2 and 8.
//
// Expected shape: single-partition workloads keep latency flat as partitions
// grow; multi-partition commands inflate S-SMR/hash sharply (every involved
// partition blocks on the slowest); DS-SMR pays moves during convergence but
// settles near the optimized static scheme.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::Strategy;
  using harness::ChirperRunConfig;
  using harness::Placement;

  RunRecordSink sink(argc, argv, "fig_latency");
  heading("E2: Chirper latency (avg / p50 / p95 / p99, microseconds)");

  const workload::ChirperMix kMixes[] = {workload::mixes::kPostOnly,
                                         workload::mixes::kTimelineHeavy};
  struct StrategyCase {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const StrategyCase kCases[] = {
      {Strategy::kStaticSsmr, Placement::kHash, "S-SMR/hash"},
      {Strategy::kStaticSsmr, Placement::kMetis, "S-SMR/optimized"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
  };

  std::vector<SweepPoint> points;
  for (const auto& mix : kMixes) {
    for (std::size_t parts : {2u, 8u}) {
      for (const auto& c : kCases) {
        ChirperRunConfig cfg;
        cfg.strategy = c.strategy;
        cfg.placement = c.placement;
        cfg.partitions = parts;
        cfg.clients_per_partition = 8;
        cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
        cfg.use_controlled_cut = true;
        cfg.controlled_edge_cut = 0.01;
        cfg.workload.mix = mix;
        cfg.warmup = sec(3);
        cfg.measure = sec(3);
        cfg.seed = 42;
        cfg.trace = sink.trace_wanted();
        cfg.spans = sink.spans_wanted();
        cfg.nemesis = sink.nemesis();
        cfg.scale_plan = sink.scale_plan();
        cfg.telemetry = sink.telemetry_wanted();
        cfg.telemetry_interval = sink.telemetry_interval();
        cfg.spans_capacity = sink.spans_capacity();
        cfg.batch_size = sink.batch_size();
        cfg.batch_delay = sink.batch_delay();
        cfg.pipeline_depth = sink.pipeline_depth();
        cfg.prefetch_k = sink.prefetch_k();
        cfg.cache_repair = sink.cache_repair();
        cfg.coalesce_moves = sink.coalesce_moves();
        cfg.coalesce_delay = sink.coalesce_delay();
        points.push_back({cfg, std::string(c.label) + "/" + mix_name(mix) + "/p" +
                                   std::to_string(parts)});
      }
    }
  }
  const auto results = run_points(sink, points);

  std::size_t i = 0;
  for (const auto& mix : kMixes) {
    subheading(std::string("workload mix: ") + mix_name(mix));
    print_run_header();
    for (std::size_t parts : {2u, 8u}) {
      for (const auto& c : kCases) print_run_row(c.label, parts, results[i++]);
    }
  }
  std::printf("\n(paper shape: moves and cross-partition coordination dominate the tail;\n"
              " DS-SMR's average approaches the optimized static placement)\n");
  return sink.finish();
}
