// Microbenchmarks of the workload-generation and statistics substrates.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "partition/partitioner.h"
#include "stats/histogram.h"
#include "workload/chirper_workload.h"
#include "workload/holme_kim.h"
#include "workload/zipf.h"

namespace {

using namespace dssmr;

void BM_RngNext(benchmark::State& state) {
  Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_ZipfSampleAlias(benchmark::State& state) {
  Rng rng{2};
  workload::Zipf zipf{static_cast<std::size_t>(state.range(0)), 0.99};
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampleAlias)->Arg(1000)->Arg(100000);

void BM_ZipfSampleCdf(benchmark::State& state) {
  // Reference inverse-CDF sampler (binary search) — the alias method above
  // replaces this on the hot path; kept to quantify the win.
  Rng rng{2};
  workload::Zipf zipf{static_cast<std::size_t>(state.range(0)), 0.99};
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample_cdf(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampleCdf)->Arg(1000)->Arg(100000);

void BM_FlatMapLocate(benchmark::State& state) {
  // The Mapping/location-cache lookup shape: VarId keys 0..n-1, random probe
  // order, all hits.
  const auto n = static_cast<std::size_t>(state.range(0));
  common::FlatMap<VarId, GroupId> map;
  map.reserve(n);
  for (std::size_t i = 0; i < n; ++i) map[VarId{i}] = GroupId{static_cast<std::uint32_t>(i & 7)};
  Rng rng{7};
  for (auto _ : state) {
    auto it = map.find(VarId{rng.below(n)});
    benchmark::DoNotOptimize(it->second);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapLocate)->Arg(2048)->Arg(100000);

void BM_UnorderedMapLocate(benchmark::State& state) {
  // std::unordered_map baseline for BM_FlatMapLocate.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::unordered_map<VarId, GroupId> map;
  map.reserve(n);
  for (std::size_t i = 0; i < n; ++i) map[VarId{i}] = GroupId{static_cast<std::uint32_t>(i & 7)};
  Rng rng{7};
  for (auto _ : state) {
    auto it = map.find(VarId{rng.below(n)});
    benchmark::DoNotOptimize(it->second);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapLocate)->Arg(2048)->Arg(100000);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  std::int64_t v = 17;
  for (auto _ : state) {
    h.record(v);
    v = (v * 1103515245 + 12345) & 0xfffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  for (auto _ : state) benchmark::DoNotOptimize(h.percentile(0.99));
}
BENCHMARK(BM_HistogramPercentile);

void BM_HolmeKimGenerate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Rng rng{3};
    auto edges = workload::holme_kim({.n = n, .m = 3, .p_triad = 0.8}, rng);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HolmeKimGenerate)->Arg(10000)->Arg(100000);

void BM_GraphBuilderAddEdge(benchmark::State& state) {
  partition::GraphBuilder b;
  std::uint32_t u = 1;
  for (auto _ : state) {
    b.add_edge(u % 10000, (u * 7 + 1) % 10000);
    ++u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphBuilderAddEdge);

void BM_PartitionGraph(benchmark::State& state) {
  Rng rng{4};
  const auto n = static_cast<std::uint32_t>(state.range(0));
  partition::Csr g = workload::holme_kim_csr({.n = n, .m = 3, .p_triad = 0.8}, rng);
  partition::PartitionerConfig cfg;
  cfg.k = 8;
  for (auto _ : state) {
    auto r = partition::partition_graph(g, cfg);
    benchmark::DoNotOptimize(r.part.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionGraph)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_ChirperWorkloadNext(benchmark::State& state) {
  Rng seed{5};
  auto graph = workload::SocialGraph::generate({.n = 10000, .m = 3, .p_triad = 0.8}, seed);
  workload::ChirperWorkloadConfig cfg;
  cfg.mix = workload::mixes::kTimelineHeavy;
  workload::ChirperWorkload wl{graph, cfg, 6};
  for (auto _ : state) {
    auto cmd = wl.next();
    benchmark::DoNotOptimize(cmd.write_set.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChirperWorkloadNext);

}  // namespace

BENCHMARK_MAIN();
