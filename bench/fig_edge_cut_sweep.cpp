// E6 — Varying edge-cut sweep (the supplied text's "throughput and latency,
// varying edge-cuts for different partitioning sizes" figure).
//
// Edge-cut {0, 1, 5, 10}% x partitions {2, 4, 8} x strategies. Expected
// shape: at 0% everything scales; throughput decays as the cut grows; around
// 10% the move/coordination overhead cancels the benefit of extra
// partitions; DS-SMR degrades faster than the graph-driven oracle.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::Strategy;
  using harness::ChirperRunConfig;
  using harness::Placement;

  RunRecordSink sink(argc, argv, "fig_edge_cut_sweep");
  heading("E6: throughput/latency vs edge-cut percentage");

  struct Case {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const Case kCases[] = {
      {Strategy::kStaticSsmr, Placement::kMetis, "S-SMR/optimized"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
      {Strategy::kDynaStar, Placement::kHash, "DynaStar"},
  };

  std::vector<SweepPoint> points;
  for (double cut : {0.0, 0.01, 0.05, 0.10}) {
    for (std::size_t parts : {2u, 4u, 8u}) {
      for (const auto& c : kCases) {
        ChirperRunConfig cfg;
        cfg.strategy = c.strategy;
        cfg.placement = c.placement;
        cfg.partitions = parts;
        cfg.clients_per_partition = 8;
        cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
        cfg.use_controlled_cut = true;
        cfg.controlled_edge_cut = cut;
        cfg.workload.mix = workload::mixes::kPostOnly;
        cfg.workload.hint_posts = true;
        cfg.dynastar_hint_threshold = 1500;
        cfg.warmup = sec(4);
        cfg.measure = sec(2);
        cfg.seed = 42;
        cfg.trace = sink.trace_wanted();
        cfg.spans = sink.spans_wanted();
        cfg.nemesis = sink.nemesis();
        cfg.scale_plan = sink.scale_plan();
        cfg.telemetry = sink.telemetry_wanted();
        cfg.telemetry_interval = sink.telemetry_interval();
        cfg.spans_capacity = sink.spans_capacity();
        cfg.batch_size = sink.batch_size();
        cfg.batch_delay = sink.batch_delay();
        cfg.pipeline_depth = sink.pipeline_depth();
        cfg.prefetch_k = sink.prefetch_k();
        cfg.cache_repair = sink.cache_repair();
        cfg.coalesce_moves = sink.coalesce_moves();
        cfg.coalesce_delay = sink.coalesce_delay();
        points.push_back({cfg, std::string(c.label) + "/cut" +
                                   std::to_string(static_cast<int>(cut * 100)) + "/p" +
                                   std::to_string(parts)});
      }
    }
  }
  const auto results = run_points(sink, points);

  std::size_t i = 0;
  for (double cut : {0.0, 0.01, 0.05, 0.10}) {
    subheading("edge cut " + std::to_string(static_cast<int>(cut * 100)) + "%");
    print_run_header();
    for (std::size_t parts : {2u, 4u, 8u}) {
      for (const auto& c : kCases) print_run_row(c.label, parts, results[i++]);
    }
  }
  return sink.finish();
}
