// E9 — Partitioner scaling (the supplied text's "METIS processor and memory
// usage" figure, for our in-repo METIS substitute).
//
// Holme-Kim graphs of growing size; reports wall-clock partitioning time,
// approximate resident memory of the workload graph + CSR, and cut quality
// vs a hash placement. Expected shape: near-linear time and memory in graph
// size (the paper reports METIS scaling linearly to 10M vertices; we sweep
// to 1M with ~7M edges on the laptop-scale budget).
#include <chrono>
#include <cstdio>
#include <iterator>

#include "bench_util.h"
#include "common/rng.h"
#include "partition/partitioner.h"
#include "workload/holme_kim.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using Clock = std::chrono::steady_clock;

  bench::RunRecordSink sink(argc, argv, "fig_partitioner_scaling");
  std::printf("E9: multilevel partitioner scaling (k = 8)\n");
  std::printf("%10s %12s %12s %12s %12s %10s %10s\n", "vertices", "edges", "build(ms)",
              "part(ms)", "mem(MB)", "cut%%", "hash-cut%%");

  const std::uint32_t kSizes[] = {10'000u, 50'000u, 100'000u,
                                  250'000u, 500'000u, 1'000'000u};

  struct Row {
    std::uint32_t n = 0;
    std::size_t edges = 0;
    double build_ms = 0, part_ms = 0, mem_mb = 0, cut = 0, hash_cut = 0;
    stats::RunRecord rec;
  };

  // Each size is independent (own Rng, builder, graph), so sizes run on
  // sweep threads. Caveat: with --jobs > 1 the wall-clock columns contend
  // for cores — use serial runs when the timings themselves are the result.
  auto rows = harness::parallel_map(std::size(kSizes), sink.jobs(), [&](std::size_t si) {
    const std::uint32_t n = kSizes[si];
    Rng rng{99};
    const workload::HolmeKimConfig cfg{.n = n, .m = 7, .p_triad = 0.7};

    auto t0 = Clock::now();
    partition::GraphBuilder builder;
    builder.touch(n - 1);
    for (auto [u, v] : workload::holme_kim(cfg, rng)) builder.add_edge(u, v);
    partition::Csr g = builder.build();
    auto t1 = Clock::now();

    partition::PartitionerConfig pcfg;
    pcfg.k = 8;
    auto result = partition::partition_graph(g, pcfg);
    auto t2 = Clock::now();

    Row row;
    row.n = n;
    row.edges = g.edge_count();
    row.build_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    row.part_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count() / 1000.0;
    row.mem_mb =
        static_cast<double>(builder.memory_bytes() + g.adj.size() * 12 + g.xadj.size() * 8) /
        (1024.0 * 1024.0);
    row.cut = partition::edge_cut_fraction(g, result.part);
    row.hash_cut =
        partition::edge_cut_fraction(g, partition::hash_partition(g.vertex_count(), 8));

    // No deployment here, so synthesize a schema-consistent record per size.
    row.rec.label = "n" + std::to_string(n);
    row.rec.add_meta("k", std::to_string(pcfg.k));
    row.rec.add_meta("mem_mb", std::to_string(row.mem_mb));
    row.rec.add_meta("cut_fraction", std::to_string(row.cut));
    row.rec.add_meta("hash_cut_fraction", std::to_string(row.hash_cut));
    row.rec.metrics.inc("graph.vertices", n);
    row.rec.metrics.inc("graph.edges", g.edge_count());
    row.rec.metrics.histogram("partitioner.build_us")
        .record(static_cast<std::int64_t>(row.build_ms * 1000.0));
    row.rec.metrics.histogram("partitioner.partition_us")
        .record(static_cast<std::int64_t>(row.part_ms * 1000.0));
    row.rec.metrics.series("partitioner.mem_mb").add(0, row.mem_mb);
    return row;
  });

  for (Row& row : rows) {
    std::printf("%10u %12zu %12.1f %12.1f %12.1f %9.2f%% %9.2f%%\n", row.n, row.edges,
                row.build_ms, row.part_ms, row.mem_mb, 100.0 * row.cut,
                100.0 * row.hash_cut);
    sink.add(std::move(row.rec));
  }
  return sink.finish();
}
