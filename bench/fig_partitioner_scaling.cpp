// E9 — Partitioner scaling (the supplied text's "METIS processor and memory
// usage" figure, for our in-repo METIS substitute).
//
// Holme-Kim graphs of growing size; reports wall-clock partitioning time,
// approximate resident memory of the workload graph + CSR, and cut quality
// vs a hash placement. Expected shape: near-linear time and memory in graph
// size (the paper reports METIS scaling linearly to 10M vertices; we sweep
// to 1M with ~7M edges on the laptop-scale budget).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "partition/partitioner.h"
#include "workload/holme_kim.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using Clock = std::chrono::steady_clock;

  bench::RunRecordSink sink(argc, argv, "fig_partitioner_scaling");
  std::printf("E9: multilevel partitioner scaling (k = 8)\n");
  std::printf("%10s %12s %12s %12s %12s %10s %10s\n", "vertices", "edges", "build(ms)",
              "part(ms)", "mem(MB)", "cut%%", "hash-cut%%");

  for (std::uint32_t n : {10'000u, 50'000u, 100'000u, 250'000u, 500'000u, 1'000'000u}) {
    Rng rng{99};
    const workload::HolmeKimConfig cfg{.n = n, .m = 7, .p_triad = 0.7};

    auto t0 = Clock::now();
    partition::GraphBuilder builder;
    builder.touch(n - 1);
    for (auto [u, v] : workload::holme_kim(cfg, rng)) builder.add_edge(u, v);
    partition::Csr g = builder.build();
    auto t1 = Clock::now();

    partition::PartitionerConfig pcfg;
    pcfg.k = 8;
    auto result = partition::partition_graph(g, pcfg);
    auto t2 = Clock::now();

    const double build_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    const double part_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count() / 1000.0;
    const double mem_mb =
        static_cast<double>(builder.memory_bytes() + g.adj.size() * 12 + g.xadj.size() * 8) /
        (1024.0 * 1024.0);
    const double cut = partition::edge_cut_fraction(g, result.part);
    const double hash_cut =
        partition::edge_cut_fraction(g, partition::hash_partition(g.vertex_count(), 8));

    std::printf("%10u %12zu %12.1f %12.1f %12.1f %9.2f%% %9.2f%%\n", n, g.edge_count(),
                build_ms, part_ms, mem_mb, 100.0 * cut, 100.0 * hash_cut);

    // No deployment here, so synthesize a schema-consistent record per size.
    stats::RunRecord rec;
    rec.label = "n" + std::to_string(n);
    rec.add_meta("k", std::to_string(pcfg.k));
    rec.add_meta("mem_mb", std::to_string(mem_mb));
    rec.add_meta("cut_fraction", std::to_string(cut));
    rec.add_meta("hash_cut_fraction", std::to_string(hash_cut));
    rec.metrics.inc("graph.vertices", n);
    rec.metrics.inc("graph.edges", g.edge_count());
    rec.metrics.histogram("partitioner.build_us")
        .record(static_cast<std::int64_t>(build_ms * 1000.0));
    rec.metrics.histogram("partitioner.partition_us")
        .record(static_cast<std::int64_t>(part_ms * 1000.0));
    rec.metrics.series("partitioner.mem_mb").add(0, mem_mb);
    sink.add(std::move(rec));
  }
  return sink.finish();
}
