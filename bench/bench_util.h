// Shared formatting helpers for the figure-regeneration binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace dssmr::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

inline const char* mix_name(const workload::ChirperMix& mix) {
  if (mix.timeline == 1.0) return "Timeline";
  if (mix.post == 1.0) return "Post";
  if (mix.follow > 0 && mix.timeline == 0) return "Follow/Unfollow";
  return "Mix(85/7.5/7.5)";
}

inline void print_run_header() {
  std::printf("%-22s %5s %10s %10s %8s %8s %8s %9s %9s %9s\n", "strategy", "parts",
              "tput(cps)", "lat(us)", "p50", "p95", "p99", "moves", "retries", "consults");
}

inline void print_run_row(const std::string& label, std::size_t partitions,
                          const harness::RunResult& r) {
  std::printf("%-22s %5zu %10.0f %10.0f %8lld %8lld %8lld %9llu %9llu %9llu\n", label.c_str(),
              partitions, r.throughput_cps, r.latency_avg_us,
              static_cast<long long>(r.latency_p50_us),
              static_cast<long long>(r.latency_p95_us),
              static_cast<long long>(r.latency_p99_us),
              static_cast<unsigned long long>(r.counter("moves.total")),
              static_cast<unsigned long long>(r.counter("client.retries")),
              static_cast<unsigned long long>(r.counter("client.consults")));
}

/// Per-second series as one row per second.
inline void print_series(const char* name, const std::vector<double>& series) {
  std::printf("%s:", name);
  for (double v : series) std::printf(" %.0f", v);
  std::printf("\n");
}

}  // namespace dssmr::bench
