// Shared helpers for the figure-regeneration binaries: table formatting plus
// the --json/--trace machine-readable outputs (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/scale_plan.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "stats/run_record.h"
#include "stats/span_export.h"

namespace dssmr::bench {

/// Collects one stats::RunRecord per run and writes them on finish().
///
/// Flags (shared by every fig_* binary):
///   --json [path]          write a run-record JSON file (default
///                          BENCH_<exp>.json)
///   --jobs N               run sweep points on N threads (default 1).
///                          Results are byte-identical to --jobs 1: each
///                          simulation is self-contained and output order is
///                          submission order (see harness/sweep.h)
///   --trace [path]         enable event tracing and dump JSON Lines
///                          (default TRACE_<exp>.jsonl); benches forward
///                          trace_wanted() into their run configs
///   --trace-chrome [path]  enable span tracing and write a Chrome
///                          trace_event file (default CHROME_<exp>.json) for
///                          chrome://tracing / Perfetto; benches forward
///                          spans_wanted() into their run configs
///   --nemesis <plan>       run every point under a fault plan — a shipped
///                          plan name or fault-plan DSL (see
///                          fault/fault_plan.h); benches forward nemesis()
///                          into their run configs
///   --scale-plan <plan>    run every point under an elastic scale plan — a
///                          shipped plan name or scale-plan DSL (see
///                          fault/scale_plan.h, e.g. add-partition@2s);
///                          benches forward scale_plan() into their run
///                          configs. Composes with --nemesis
///   --telemetry            enable flight-recorder telemetry (gauge samples,
///                          windowed partition heat, latency windows, fault
///                          marks); lands in the --json run record's
///                          `telemetry` section, so pair it with --json
///   --telemetry-interval N sampling cadence / bucket width in microseconds
///                          (default 100000 = 100ms); implies --telemetry
///   --batch-size N         batch N logical submissions per flush (default 0
///                          = batching off, byte-identical to the unbatched
///                          code); benches forward batch_size() into their
///                          run configs
///   --batch-delay-us N     max virtual-time batching wait in microseconds
///                          (default 100)
///   --pipeline-depth N     allow N in-flight Paxos proposals per leader
///                          (default 0 = unbounded single-flush behavior)
///   --prefetch-k N         prophecy prefetch: oracle replies carry up to N
///                          co-accessed neighbour locations (default 0 = off,
///                          byte-identical to the pre-locality code); benches
///                          forward prefetch_k() into their run configs
///   --cache-repair         piggyback ⟨var, partition, epoch⟩ repair entries
///                          on replies; clients heal stale caches and
///                          re-route retries without re-consulting
///   --coalesce-moves N     merge concurrent moves with overlapping
///                          destination sets into one bulk multicast, flushed
///                          at N buffered moves (default 0 = off)
///   --coalesce-delay-us N  max virtual-time wait before a coalesced flush
///                          (default 200)
class RunRecordSink {
 public:
  RunRecordSink(int argc, char** argv, std::string experiment)
      : experiment_(std::move(experiment)) {
    for (int i = 1; i < argc; ++i) {
      const auto next_or = [&](const std::string& fallback) {
        if (i + 1 < argc && argv[i + 1][0] != '-') return std::string(argv[++i]);
        return fallback;
      };
      if (std::strcmp(argv[i], "--json") == 0) {
        json_path_ = next_or("BENCH_" + experiment_ + ".json");
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        const std::string v = next_or("");
        jobs_ = static_cast<std::size_t>(v.empty() ? 0 : std::atoll(v.c_str()));
        if (jobs_ == 0) {
          std::fprintf(stderr, "--jobs needs a positive thread count\n");
          bad_args_ = true;
        }
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        trace_path_ = next_or("TRACE_" + experiment_ + ".jsonl");
      } else if (std::strcmp(argv[i], "--trace-chrome") == 0) {
        chrome_path_ = next_or("CHROME_" + experiment_ + ".json");
      } else if (std::strcmp(argv[i], "--telemetry") == 0) {
        telemetry_ = true;
      } else if (std::strcmp(argv[i], "--telemetry-interval") == 0) {
        const std::string v = next_or("");
        const long long us = v.empty() ? 0 : std::atoll(v.c_str());
        if (us <= 0) {
          std::fprintf(stderr, "--telemetry-interval needs a positive microsecond count\n");
          bad_args_ = true;
        } else {
          telemetry_ = true;
          telemetry_interval_ = static_cast<Duration>(us);
        }
      } else if (std::strcmp(argv[i], "--batch-size") == 0) {
        const std::string v = next_or("");
        const long long n = v.empty() ? -1 : std::atoll(v.c_str());
        if (n < 0) {
          std::fprintf(stderr, "--batch-size needs a non-negative count\n");
          bad_args_ = true;
        } else {
          batch_size_ = static_cast<std::size_t>(n);
        }
      } else if (std::strcmp(argv[i], "--batch-delay-us") == 0) {
        const std::string v = next_or("");
        const long long us = v.empty() ? 0 : std::atoll(v.c_str());
        if (us <= 0) {
          std::fprintf(stderr, "--batch-delay-us needs a positive microsecond count\n");
          bad_args_ = true;
        } else {
          batch_delay_ = static_cast<Duration>(us);
        }
      } else if (std::strcmp(argv[i], "--pipeline-depth") == 0) {
        const std::string v = next_or("");
        const long long n = v.empty() ? -1 : std::atoll(v.c_str());
        if (n < 0) {
          std::fprintf(stderr, "--pipeline-depth needs a non-negative count\n");
          bad_args_ = true;
        } else {
          pipeline_depth_ = static_cast<std::size_t>(n);
        }
      } else if (std::strcmp(argv[i], "--prefetch-k") == 0) {
        const std::string v = next_or("");
        const long long n = v.empty() ? -1 : std::atoll(v.c_str());
        if (n < 0) {
          std::fprintf(stderr, "--prefetch-k needs a non-negative count\n");
          bad_args_ = true;
        } else {
          prefetch_k_ = static_cast<std::size_t>(n);
        }
      } else if (std::strcmp(argv[i], "--cache-repair") == 0) {
        cache_repair_ = true;
      } else if (std::strcmp(argv[i], "--coalesce-moves") == 0) {
        const std::string v = next_or("");
        const long long n = v.empty() ? -1 : std::atoll(v.c_str());
        if (n < 0) {
          std::fprintf(stderr, "--coalesce-moves needs a non-negative count\n");
          bad_args_ = true;
        } else {
          coalesce_moves_ = static_cast<std::size_t>(n);
        }
      } else if (std::strcmp(argv[i], "--coalesce-delay-us") == 0) {
        const std::string v = next_or("");
        const long long us = v.empty() ? 0 : std::atoll(v.c_str());
        if (us <= 0) {
          std::fprintf(stderr, "--coalesce-delay-us needs a positive microsecond count\n");
          bad_args_ = true;
        } else {
          coalesce_delay_ = static_cast<Duration>(us);
        }
      } else if (std::strcmp(argv[i], "--nemesis") == 0) {
        nemesis_ = next_or("");
        if (nemesis_.empty()) {
          std::fprintf(stderr, "--nemesis needs a plan name or fault-plan spec\n");
          bad_args_ = true;
        } else {
          try {
            fault::resolve_plan(nemesis_);  // surface parse errors here...
          } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            nemesis_ = "";  // ...and keep the sweep fault-free so finish()
            bad_args_ = true;  // can return 2 instead of crashing mid-run
          }
        }
      } else if (std::strcmp(argv[i], "--scale-plan") == 0) {
        scale_plan_ = next_or("");
        if (scale_plan_.empty()) {
          std::fprintf(stderr, "--scale-plan needs a plan name or scale-plan spec\n");
          bad_args_ = true;
        } else {
          try {
            fault::resolve_scale_plan(scale_plan_);  // surface parse errors here...
          } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            scale_plan_ = "";   // ...and keep the sweep scale-free so finish()
            bad_args_ = true;   // can return 2 instead of crashing mid-run
          }
        }
      } else {
        std::fprintf(stderr,
                     "unknown flag %s (supported: --json [path], --jobs N, "
                     "--trace [path], --trace-chrome [path], --nemesis <plan>, "
                     "--scale-plan <plan>, "
                     "--telemetry, --telemetry-interval <us>, --batch-size <n>, "
                     "--batch-delay-us <us>, --pipeline-depth <n>, "
                     "--prefetch-k <n>, --cache-repair, --coalesce-moves <n>, "
                     "--coalesce-delay-us <us>)\n",
                     argv[i]);
        bad_args_ = true;
      }
    }
  }

  bool json_enabled() const { return !json_path_.empty(); }
  /// Sweep-point thread count (--jobs, default 1 = serial).
  std::size_t jobs() const { return jobs_; }
  /// Benches set ChirperRunConfig::trace (or DeploymentConfig::trace) to this.
  bool trace_wanted() const { return !trace_path_.empty(); }
  bool chrome_wanted() const { return !chrome_path_.empty(); }
  /// Benches set ChirperRunConfig::spans (or DeploymentConfig::spans) to
  /// this. The Chrome export needs spans; the run record's `phases` section
  /// also appears whenever spans ran, so --trace-chrome enriches --json too.
  bool spans_wanted() const { return chrome_wanted(); }
  /// Retained-span cap per run (forwarded to `spans_capacity`): a full sweep
  /// records millions of spans, and an uncapped Chrome trace would be too
  /// large for Perfetto (and for CI artifacts). Phase histograms are
  /// unaffected — only the exported span list is truncated.
  std::size_t spans_capacity() const { return 1u << 16; }
  /// Benches set ChirperRunConfig::nemesis to this (empty = no faults).
  const std::string& nemesis() const { return nemesis_; }
  /// Benches set ChirperRunConfig::scale_plan to this (empty = no
  /// elasticity, byte-identical to the pre-elasticity output).
  const std::string& scale_plan() const { return scale_plan_; }
  /// Benches set ChirperRunConfig::telemetry (or DeploymentConfig::telemetry)
  /// to this; the run record then carries a `telemetry` section.
  bool telemetry_wanted() const { return telemetry_; }
  Duration telemetry_interval() const { return telemetry_interval_; }
  /// Benches forward these into ChirperRunConfig::{batch_size, batch_delay,
  /// pipeline_depth}; the defaults keep every bench byte-identical to the
  /// pre-batching output.
  std::size_t batch_size() const { return batch_size_; }
  Duration batch_delay() const { return batch_delay_; }
  std::size_t pipeline_depth() const { return pipeline_depth_; }
  /// Benches forward these into ChirperRunConfig::{prefetch_k, cache_repair,
  /// coalesce_moves, coalesce_delay}; the defaults keep every bench
  /// byte-identical to the pre-locality output.
  std::size_t prefetch_k() const { return prefetch_k_; }
  bool cache_repair() const { return cache_repair_; }
  std::size_t coalesce_moves() const { return coalesce_moves_; }
  Duration coalesce_delay() const { return coalesce_delay_; }

  /// Stamps the locality flags into a hand-built run record, matching the
  /// meta that make_run_record emits for chirper runs. No-op (and therefore
  /// byte-preserving) when the whole fast path is off.
  void add_locality_meta(stats::RunRecord& rec) const {
    if (prefetch_k_ == 0 && !cache_repair_ && coalesce_moves_ == 0) return;
    rec.add_meta("prefetch_k", std::to_string(prefetch_k_));
    rec.add_meta("cache_repair", cache_repair_ ? "true" : "false");
    rec.add_meta("coalesce_moves", std::to_string(coalesce_moves_));
    rec.add_meta("coalesce_delay_us", std::to_string(coalesce_delay_));
  }

  void add(stats::RunRecord record) { records_.push_back(std::move(record)); }

  /// Convenience for the standard chirper runs.
  void add(const harness::ChirperRunConfig& cfg, const harness::RunResult& r,
           std::string label = {}) {
    records_.push_back(harness::make_run_record(cfg, r, std::move(label)));
  }

  /// Writes the requested outputs; returns the process exit code for main().
  int finish() {
    if (bad_args_) return 2;
    if (!json_path_.empty()) {
      std::ofstream os(json_path_);
      if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path_.c_str());
        return 1;
      }
      stats::write_run_records(os, experiment_, records_);
      std::printf("\nwrote %s (%zu runs)\n", json_path_.c_str(), records_.size());
    }
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_path_.c_str());
        return 1;
      }
      for (const stats::RunRecord& rec : records_) {
        rec.metrics.trace().write_jsonl(os, rec.label);
      }
      std::printf("wrote %s\n", trace_path_.c_str());
    }
    if (!chrome_path_.empty()) {
      std::ofstream os(chrome_path_);
      if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", chrome_path_.c_str());
        return 1;
      }
      stats::ChromeTraceExport chrome(os);
      for (const stats::RunRecord& rec : records_) {
        chrome.add_run(rec.metrics.spans(), rec.label);
      }
      chrome.finish();
      std::printf("wrote %s\n", chrome_path_.c_str());
    }
    return 0;
  }

 private:
  std::string experiment_;
  std::string json_path_;
  std::string trace_path_;
  std::string chrome_path_;
  std::string nemesis_;
  std::string scale_plan_;
  bool telemetry_ = false;
  Duration telemetry_interval_ = msec(100);
  std::size_t batch_size_ = 0;
  Duration batch_delay_ = usec(100);
  std::size_t pipeline_depth_ = 0;
  std::size_t prefetch_k_ = 0;
  bool cache_repair_ = false;
  std::size_t coalesce_moves_ = 0;
  Duration coalesce_delay_ = usec(200);
  std::size_t jobs_ = 1;
  bool bad_args_ = false;
  std::vector<stats::RunRecord> records_;
};

/// One sweep entry: the run config plus the label used for the table row and
/// the run record.
struct SweepPoint {
  harness::ChirperRunConfig cfg;
  std::string label;
};

/// Runs every point (in parallel when --jobs > 1), records each run in the
/// sink in submission order, and returns the results positionally matched to
/// `points`. Callers print their tables from the returned vector, so stdout
/// and the JSON file are byte-identical whatever the thread count.
inline std::vector<harness::RunResult> run_points(RunRecordSink& sink,
                                                  const std::vector<SweepPoint>& points) {
  std::vector<harness::ChirperRunConfig> cfgs;
  cfgs.reserve(points.size());
  for (const SweepPoint& p : points) cfgs.push_back(p.cfg);
  std::vector<harness::RunResult> results = harness::run_sweep(cfgs, sink.jobs());
  for (std::size_t i = 0; i < points.size(); ++i) {
    sink.add(points[i].cfg, results[i], points[i].label);
  }
  return results;
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

inline const char* mix_name(const workload::ChirperMix& mix) {
  if (mix.timeline == 1.0) return "Timeline";
  if (mix.post == 1.0) return "Post";
  if (mix.follow > 0 && mix.timeline == 0) return "Follow/Unfollow";
  return "Mix(85/7.5/7.5)";
}

inline void print_run_header() {
  std::printf("%-22s %5s %10s %10s %8s %8s %8s %9s %9s %9s\n", "strategy", "parts",
              "tput(cps)", "lat(us)", "p50", "p95", "p99", "moves", "retries", "consults");
}

inline void print_run_row(const std::string& label, std::size_t partitions,
                          const harness::RunResult& r) {
  std::printf("%-22s %5zu %10.0f %10.0f %8lld %8lld %8lld %9llu %9llu %9llu\n", label.c_str(),
              partitions, r.throughput_cps, r.latency_avg_us,
              static_cast<long long>(r.latency_p50_us),
              static_cast<long long>(r.latency_p95_us),
              static_cast<long long>(r.latency_p99_us),
              static_cast<unsigned long long>(r.counter("moves.total")),
              static_cast<unsigned long long>(r.counter("client.retries")),
              static_cast<unsigned long long>(r.counter("client.consults")));
}

/// Per-second series as one row per second.
inline void print_series(const char* name, const std::vector<double>& series) {
  std::printf("%s:", name);
  for (double v : series) std::printf(" %.0f", v);
  std::printf("\n");
}

}  // namespace dssmr::bench
