// E1 — Throughput scalability (DSN'16 Chirper scalability figure).
//
// Chirper on a Holme-Kim social graph; partitions 1/2/4/8; strategies:
// S-SMR with naive hash placement, S-SMR with optimized (metis-style)
// placement, and DS-SMR (hash initial placement). One table per command mix.
//
// Expected shape (the paper's): everything scales on Timeline (reads are
// always single-partition); on Post and Mix, S-SMR/hash collapses under
// multi-partition commands, the optimized static placement does much better,
// and DS-SMR approaches the optimized static scheme by moving co-accessed
// users together.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using harness::ChirperRunConfig;
  using harness::Placement;
  using core::Strategy;

  RunRecordSink sink(argc, argv, "fig_throughput_scalability");
  heading("E1: Chirper throughput scalability (paper: DS-SMR vs S-SMR)");

  const workload::ChirperMix kMixes[] = {workload::mixes::kTimelineOnly,
                                         workload::mixes::kPostOnly,
                                         workload::mixes::kTimelineHeavy};
  struct StrategyCase {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const StrategyCase kCases[] = {
      {Strategy::kStaticSsmr, Placement::kHash, "S-SMR/hash"},
      {Strategy::kStaticSsmr, Placement::kMetis, "S-SMR/optimized"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
  };

  std::vector<SweepPoint> points;
  for (const auto& mix : kMixes) {
    for (std::size_t parts : {1u, 2u, 4u, 8u}) {
      for (const auto& c : kCases) {
        ChirperRunConfig cfg;
        cfg.strategy = c.strategy;
        cfg.placement = c.placement;
        cfg.partitions = parts;
        cfg.clients_per_partition = 8;
        // Community-structured social graph with 1% cross-community edges —
        // the realistic mostly-partitionable regime the paper's social
        // graphs exhibit (weak-locality sweeps are E5/E6).
        cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
        cfg.use_controlled_cut = true;
        cfg.controlled_edge_cut = 0.01;
        cfg.workload.mix = mix;
        cfg.warmup = sec(3);
        cfg.measure = sec(3);
        cfg.seed = 42;
        cfg.trace = sink.trace_wanted();
        cfg.spans = sink.spans_wanted();
        cfg.nemesis = sink.nemesis();
        cfg.scale_plan = sink.scale_plan();
        cfg.telemetry = sink.telemetry_wanted();
        cfg.telemetry_interval = sink.telemetry_interval();
        cfg.spans_capacity = sink.spans_capacity();
        cfg.batch_size = sink.batch_size();
        cfg.batch_delay = sink.batch_delay();
        cfg.pipeline_depth = sink.pipeline_depth();
        cfg.prefetch_k = sink.prefetch_k();
        cfg.cache_repair = sink.cache_repair();
        cfg.coalesce_moves = sink.coalesce_moves();
        cfg.coalesce_delay = sink.coalesce_delay();
        points.push_back({cfg, std::string(c.label) + "/" + mix_name(mix) + "/p" +
                                   std::to_string(parts)});
      }
    }
  }
  const auto results = run_points(sink, points);

  std::size_t i = 0;
  for (const auto& mix : kMixes) {
    subheading(std::string("workload mix: ") + mix_name(mix));
    print_run_header();
    for (std::size_t parts : {1u, 2u, 4u, 8u}) {
      for (const auto& c : kCases) print_run_row(c.label, parts, results[i++]);
    }
  }
  std::printf("\n(paper shape: near-linear scaling when commands are single-partition;\n"
              " multi-partition commands flatten S-SMR/hash; DS-SMR tracks the\n"
              " optimized static placement once converged)\n");
  return sink.finish();
}
