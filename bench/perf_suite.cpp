// Wall-clock perf-regression suite (see EXPERIMENTS.md, "Perf suite").
//
// Runs a pinned set of hot-path benchmarks and emits BENCH_perf.json
// (schema dssmr.perf.v1): events/sec on the simulator engine, message
// throughput, map lookups, sampling, end-to-end simulated-commands/sec and
// the parallel-sweep speedup, plus peak RSS and wall time. CI runs
// `perf_suite --smoke --json` and tools/perf_compare.py diffs the result
// against the committed baseline with tolerance bands.
//
// The engine benchmarks also run against an embedded copy of the legacy
// event queue (binary heap of std::function + lazy-cancel hash set — the
// pre-optimization implementation), so the reported `speedup_vs_legacy`
// ratios are self-demonstrating on any machine rather than a claim about
// one historical measurement.
//
// Flags:
//   --smoke      shrink every benchmark (~seconds total; CI mode)
//   --json [p]   write the JSON report (default BENCH_perf.json)
//   --jobs N     thread count for the sweep benchmark (default 4)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "net/network.h"
#include "sim/engine.h"
#include "stats/json_writer.h"
#include "workload/zipf.h"

namespace {

using namespace dssmr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - t0)
      .count();
}

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// The seed tree's event queue, kept verbatim in miniature: binary heap of
/// heap-allocated std::function callbacks, cancellation via an auxiliary
/// hash set consulted at pop time. Exists only as the denominator of
/// speedup_vs_legacy.
class LegacyEngine {
 public:
  using TimerId = std::uint64_t;

  TimerId schedule(Duration delay, std::function<void()> cb) {
    const TimerId id = next_id_++;
    heap_.push(Item{now_ + delay, seq_++, id, std::move(cb)});
    return id;
  }
  void cancel(TimerId id) { cancelled_.insert(id); }

  bool step() {
    while (!heap_.empty()) {
      Item item = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(item.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = item.when;
      item.cb();
      return true;
    }
    return false;
  }
  void run() {
    while (step()) {
    }
  }

 private:
  struct Item {
    Time when;
    std::uint64_t seq;
    TimerId id;
    std::function<void()> cb;
    bool operator>(const Item& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  std::unordered_set<TimerId> cancelled_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  TimerId next_id_ = 1;
};

struct BenchResult {
  std::string name;
  double items_per_sec = 0;
  double wall_s = 0;
  /// Extra metric fields appended verbatim to the bench's JSON object.
  std::vector<std::pair<std::string, double>> extra;
};

struct IntPayload final : net::Message {
  std::int64_t v;
  explicit IntPayload(std::int64_t x) : v(x) {}
  const char* type_name() const override { return "perf.int"; }
};

class CountingActor : public net::Actor {
 public:
  void on_message(ProcessId, const net::MessagePtr&) override { ++count; }
  std::uint64_t count = 0;
};

// --- engine -----------------------------------------------------------------

template <class EngineLike, class ScheduleFn, class StepFn>
double engine_fire_loop(EngineLike& engine, std::uint64_t iters, ScheduleFn schedule,
                        StepFn step) {
  // The capture mirrors the simulator's network-delivery callbacks
  // ([this, from, to, m] — four words). Anything beyond 16 bytes overflows
  // std::function's inline buffer, so the legacy engine pays an allocation
  // per event here exactly as it did per delivery in real runs.
  std::int64_t sink = 0;
  std::uint64_t from = 1, to = 2, payload = 3;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    schedule(engine, [&sink, from, to, payload] {
      sink += static_cast<std::int64_t>(from + to + payload) / 6;
    });
    step(engine);
  }
  const double wall = seconds_since(t0);
  if (sink != static_cast<std::int64_t>(iters)) std::abort();
  return wall;
}

BenchResult bench_engine_schedule_fire(std::uint64_t iters) {
  // Standing queue depth: a mid-size chirper run keeps thousands of timers
  // pending (per-client timeouts plus every in-flight network delivery), so
  // the schedule/fire path is exercised against a populated heap.
  constexpr int kStanding = 4096;

  sim::Engine engine;
  std::int64_t ballast = 0;
  for (int i = 0; i < kStanding; ++i) {
    engine.schedule(1'000'000'000 + i, [&ballast] { ++ballast; });
  }
  const double wall = engine_fire_loop(
      engine, iters, [](sim::Engine& e, auto cb) { e.schedule(0, std::move(cb)); },
      [](sim::Engine& e) { e.step(); });

  LegacyEngine legacy;
  std::int64_t ballast2 = 0;
  for (int i = 0; i < kStanding; ++i) {
    legacy.schedule(1'000'000'000 + i, [&ballast2] { ++ballast2; });
  }
  const double legacy_wall = engine_fire_loop(
      legacy, iters, [](LegacyEngine& e, auto cb) { e.schedule(0, std::move(cb)); },
      [](LegacyEngine& e) { e.step(); });

  BenchResult r{"engine.schedule_fire", static_cast<double>(iters) / wall, wall, {}};
  r.extra.emplace_back("legacy_items_per_sec", static_cast<double>(iters) / legacy_wall);
  r.extra.emplace_back("speedup_vs_legacy", legacy_wall / wall);
  return r;
}

BenchResult bench_engine_schedule_cancel(std::uint64_t iters) {
  constexpr int kBatch = 64;
  const std::uint64_t rounds = iters / kBatch;

  sim::Engine engine;
  std::int64_t sink = 0;
  auto t0 = Clock::now();
  for (std::uint64_t rd = 0; rd < rounds; ++rd) {
    sim::TimerId ids[kBatch];
    for (int i = 0; i < kBatch; ++i) {
      ids[i] = engine.schedule(1000 + i, [&sink] { ++sink; });
    }
    for (int i = 0; i < kBatch; ++i) engine.cancel(ids[i]);
    engine.run();
  }
  const double wall = seconds_since(t0);

  LegacyEngine legacy;
  t0 = Clock::now();
  for (std::uint64_t rd = 0; rd < rounds; ++rd) {
    LegacyEngine::TimerId ids[kBatch];
    for (int i = 0; i < kBatch; ++i) {
      ids[i] = legacy.schedule(1000 + i, [&sink] { ++sink; });
    }
    for (int i = 0; i < kBatch; ++i) legacy.cancel(ids[i]);
    legacy.run();
  }
  const double legacy_wall = seconds_since(t0);
  if (sink != 0) std::abort();

  const auto items = static_cast<double>(rounds * kBatch);
  BenchResult r{"engine.schedule_cancel", items / wall, wall, {}};
  r.extra.emplace_back("legacy_items_per_sec", items / legacy_wall);
  r.extra.emplace_back("speedup_vs_legacy", legacy_wall / wall);
  return r;
}

// --- network ----------------------------------------------------------------

BenchResult bench_network_multisend(std::uint64_t iters) {
  constexpr std::size_t kFanout = 16;
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  CountingActor sender;
  const ProcessId from = network.add_process(sender, 0);
  std::vector<std::unique_ptr<CountingActor>> actors;
  std::vector<ProcessId> dests;
  for (std::size_t i = 0; i < kFanout; ++i) {
    actors.push_back(std::make_unique<CountingActor>());
    dests.push_back(network.add_process(*actors.back(), static_cast<int>(i % 2)));
  }
  const auto msg = net::make_msg<IntPayload>(7);
  const std::uint64_t rounds = iters / kFanout;
  const auto t0 = Clock::now();
  for (std::uint64_t rd = 0; rd < rounds; ++rd) {
    network.multisend(from, dests, msg);
    engine.run();
  }
  const double wall = seconds_since(t0);
  return {"network.multisend", static_cast<double>(rounds * kFanout) / wall, wall, {}};
}

// --- mapping ----------------------------------------------------------------

BenchResult bench_mapping_locate(std::uint64_t iters) {
  constexpr std::size_t kVars = 100'000;
  common::FlatMap<VarId, GroupId> map;
  map.reserve(kVars);
  for (std::size_t i = 0; i < kVars; ++i) {
    map[VarId{i}] = GroupId{static_cast<std::uint32_t>(i & 7)};
  }
  Rng rng{11};
  std::uint64_t acc = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc += map.find(VarId{rng.below(kVars)})->second.value;
  }
  const double wall = seconds_since(t0);
  if (acc == ~0ull) std::abort();  // keep `acc` observable
  return {"mapping.locate", static_cast<double>(iters) / wall, wall, {}};
}

// --- locality ---------------------------------------------------------------

// Mirrors ClientProxy's prophecy-install hot path (apply_repair /
// install_prefetch): epoch-gated upserts into the flat-map location cache and
// its parallel per-variable metadata map, one prophecy's worth of entries at a
// time. The epoch mix deliberately includes stale entries so the monotone
// drop-stale branch is exercised, and a cached_epoch-style lookup pass keeps
// the read side honest.
BenchResult bench_prophecy_apply(std::uint64_t iters) {
  constexpr std::size_t kVars = 100'000;
  constexpr std::size_t kBatch = 8;  // one prophecy's locations + prefetch
  struct VarMeta {
    std::uint64_t epoch = 0;
    bool prefetched = false;
  };
  common::FlatMap<VarId, GroupId> cache;
  common::FlatMap<VarId, VarMeta> meta;
  cache.reserve(kVars);
  meta.reserve(kVars);

  Rng rng{17};
  smr::RepairEntry batch[kBatch];
  std::uint64_t installed = 0;
  const std::uint64_t rounds = iters / kBatch;
  const auto t0 = Clock::now();
  for (std::uint64_t rd = 0; rd < rounds; ++rd) {
    for (auto& e : batch) {
      e.var = VarId{rng.below(kVars)};
      e.loc = GroupId{static_cast<std::uint32_t>(rng.below(8))};
      e.epoch = 1 + rng.below(4);  // mix of stale and fresh epochs
    }
    for (const auto& e : batch) {
      VarMeta& m = meta[e.var];
      if (e.epoch <= m.epoch) continue;  // monotone: stale repairs are dropped
      m.epoch = e.epoch;
      m.prefetched = true;
      cache[e.var] = e.loc;
      ++installed;
    }
  }
  const double wall = seconds_since(t0);

  // cached_epoch()-style read pass over the warmed maps.
  Rng rng2{18};
  std::uint64_t acc = 0;
  const auto t1 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto it = meta.find(VarId{rng2.below(kVars)});
    acc += it != meta.end() ? it->second.epoch : 0;
  }
  const double lookup_wall = seconds_since(t1);
  if (acc == ~0ull || installed == 0) std::abort();

  const auto items = static_cast<double>(rounds * kBatch);
  BenchResult r{"locality.prophecy_apply", items / wall, wall, {}};
  r.extra.emplace_back("installed_fraction", static_cast<double>(installed) / items);
  r.extra.emplace_back("epoch_lookups_per_sec", static_cast<double>(iters) / lookup_wall);
  return r;
}

// --- workload ---------------------------------------------------------------

BenchResult bench_zipf_sample(std::uint64_t iters) {
  workload::Zipf zipf{100'000, 0.99};
  Rng rng{13};
  std::uint64_t acc = 0;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) acc += zipf.sample(rng);
  const double wall = seconds_since(t0);

  Rng rng2{13};
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) acc += zipf.sample_cdf(rng2);
  const double cdf_wall = seconds_since(t0);
  if (acc == ~0ull) std::abort();

  BenchResult r{"zipf.sample", static_cast<double>(iters) / wall, wall, {}};
  r.extra.emplace_back("cdf_items_per_sec", static_cast<double>(iters) / cdf_wall);
  r.extra.emplace_back("speedup_vs_cdf", cdf_wall / wall);
  return r;
}

// --- end-to-end -------------------------------------------------------------

harness::ChirperRunConfig small_chirper(bool smoke, std::uint64_t seed) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 4;
  cfg.graph = {.n = 512, .m = 2, .p_triad = 0.8};
  cfg.use_controlled_cut = true;
  cfg.controlled_edge_cut = 0.01;
  cfg.workload.mix = workload::mixes::kTimelineHeavy;
  cfg.warmup = smoke ? msec(200) : sec(1);
  cfg.measure = smoke ? msec(400) : sec(2);
  cfg.seed = seed;
  return cfg;
}

BenchResult bench_chirper_small(bool smoke) {
  const auto cfg = small_chirper(smoke, 42);
  const auto t0 = Clock::now();
  const harness::RunResult r = harness::run_chirper(cfg);
  const double wall = seconds_since(t0);
  const double commands = static_cast<double>(r.ok + r.nok);
  BenchResult b{"chirper.small", commands / wall, wall, {}};
  b.extra.emplace_back("throughput_cps", r.throughput_cps);
  b.extra.emplace_back(
      "sim_time_ratio",
      (static_cast<double>(cfg.warmup + cfg.measure) / 1e6) / wall);
  return b;
}

// Recorder-on/off pair on the same config and seed: the off run is the
// denominator, so `overhead_pct` directly states the flight-recorder's
// wall-clock cost (and `counters_identical` re-checks the behavior-neutral
// promise under perf-suite load). tools/perf_compare.py warns when the
// overhead drifts.
BenchResult bench_chirper_telemetry(bool smoke) {
  auto cfg = small_chirper(smoke, 42);

  auto t0 = Clock::now();
  const harness::RunResult off = harness::run_chirper(cfg);
  const double off_wall = seconds_since(t0);

  cfg.telemetry = true;
  cfg.telemetry_interval = msec(100);
  t0 = Clock::now();
  const harness::RunResult on = harness::run_chirper(cfg);
  const double on_wall = seconds_since(t0);

  if (off.counters != on.counters || off.ok != on.ok || off.nok != on.nok) {
    std::fprintf(stderr, "FATAL: telemetry changed simulation results\n");
    std::exit(1);
  }

  const double commands = static_cast<double>(on.ok + on.nok);
  BenchResult r{"chirper.telemetry", commands / on_wall, on_wall, {}};
  r.extra.emplace_back("off_wall_s", off_wall);
  r.extra.emplace_back("overhead_pct", (on_wall / off_wall - 1.0) * 100.0);
  r.extra.emplace_back("gauge_samples",
                       static_cast<double>(on.metrics.recorder().tick_times().size()));
  r.extra.emplace_back("counters_identical", 1.0);
  return r;
}

// Batching-on/off pair on the same config and seed: the unbatched run is the
// denominator, so `speedup_vs_unbatched` directly states what command
// batching plus consensus pipelining buys on the hot path. The workload is
// post-only (the paper's scalability experiments focus on posts — the
// multi-partition command) with a 30% edge cut, so a large share of commands
// multicast to both groups and batching amortizes the per-command Skeen
// timestamp exchange, Paxos instances and submit fan-out.
//
// Two ratios are reported: `speedup_vs_unbatched` (wall-clock, noisy on
// shared runners) and `event_ratio` (simulator events per command, fully
// deterministic — same seed, same number). tools/perf_compare.py enforces a
// hard >= 1.5 floor on both; event_ratio is the load-bearing one.
BenchResult bench_chirper_batched(bool smoke) {
  auto cfg = small_chirper(smoke, 42);
  cfg.clients_per_partition = 16;
  cfg.controlled_edge_cut = 0.3;
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.workload.zipf_theta = 0.8;
  cfg.client_cache = false;

  // Rates use the drive-phase wall clock (setup — graph build, partitioning,
  // preload — is identical for both runs and would only dilute the ratio).
  const harness::RunResult off = harness::run_chirper(cfg);
  const double off_wall = off.drive_wall_s;

  cfg.batch_size = 16;
  cfg.batch_delay = usec(1000);
  cfg.pipeline_depth = 8;
  const harness::RunResult on = harness::run_chirper(cfg);
  const double on_wall = on.drive_wall_s;

  double flushes = 0;
  double entries = 0;
  for (const auto& [name, c] : on.metrics.counters()) {
    if (name == "batch.flushes") flushes = static_cast<double>(c.value());
    if (name == "batch.entries") entries = static_cast<double>(c.value());
  }

  const auto ev_per_cmd = [](const harness::RunResult& r) {
    const double ops = static_cast<double>(r.counter("client.ops"));
    return ops > 0 ? static_cast<double>(r.events_executed) / ops : 0.0;
  };
  const double on_ev = ev_per_cmd(on);
  const double off_ev = ev_per_cmd(off);

  const double on_rate = static_cast<double>(on.ok + on.nok) / on_wall;
  const double off_rate = static_cast<double>(off.ok + off.nok) / off_wall;
  BenchResult r{"chirper.batched", on_rate, on_wall, {}};
  r.extra.emplace_back("throughput_cps", on.throughput_cps);
  r.extra.emplace_back("unbatched_throughput_cps", off.throughput_cps);
  r.extra.emplace_back("unbatched_items_per_sec", off_rate);
  r.extra.emplace_back("speedup_vs_unbatched", on_rate / off_rate);
  r.extra.emplace_back("events_per_command", on_ev);
  r.extra.emplace_back("unbatched_events_per_command", off_ev);
  r.extra.emplace_back("event_ratio", on_ev > 0 ? off_ev / on_ev : 0.0);
  r.extra.emplace_back("mean_batch_entries", flushes > 0 ? entries / flushes : 0.0);
  return r;
}

// Locality-on/off pair on the same config and seed: the off run is the
// denominator, so the ratios directly state what the locality fast path
// (prophecy prefetch + piggybacked cache repair + move coalescing) buys. The
// workload is a larger graph with a 20% edge cut so clients pay real cold
// consults and cross-partition commands trigger moves, retries and cache
// invalidations — the traffic prefetch and repair exist to absorb.
//
// Three ratios are reported: `consult_ratio` (oracle consults per command,
// off/on — fully deterministic, same seed same number), `event_ratio`
// (simulator events per command, off/on, also deterministic) and
// `throughput_ratio` (simulated commands/sec, on/off). tools/perf_compare.py
// enforces hard floors: consult_ratio >= 2 and event_ratio >= 1, with
// throughput no worse; consult_ratio is the load-bearing one.
BenchResult bench_chirper_locality(bool smoke) {
  auto cfg = small_chirper(smoke, 42);
  cfg.graph = {.n = 1024, .m = 2, .p_triad = 0.8};
  cfg.placement = harness::Placement::kMetis;
  cfg.controlled_edge_cut = 0.01;
  cfg.clients_per_partition = 4;
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.workload.zipf_theta = 0.8;

  const harness::RunResult off = harness::run_chirper(cfg);

  cfg.prefetch_k = 64;
  cfg.cache_repair = true;
  cfg.coalesce_moves = 4;
  cfg.coalesce_delay = usec(50);
  const harness::RunResult on = harness::run_chirper(cfg);
  const double on_wall = on.drive_wall_s;

  const auto per_cmd = [](const harness::RunResult& r, std::uint64_t num) {
    const double ops = static_cast<double>(r.counter("client.ops"));
    return ops > 0 ? static_cast<double>(num) / ops : 0.0;
  };
  const double on_consults = per_cmd(on, on.counter("client.consults"));
  const double off_consults = per_cmd(off, off.counter("client.consults"));
  const double on_ev = per_cmd(on, on.events_executed);
  const double off_ev = per_cmd(off, off.events_executed);

  BenchResult r{"chirper.locality",
                static_cast<double>(on.ok + on.nok) / on_wall, on_wall, {}};
  r.extra.emplace_back("throughput_cps", on.throughput_cps);
  r.extra.emplace_back("off_throughput_cps", off.throughput_cps);
  r.extra.emplace_back("throughput_ratio",
                       off.throughput_cps > 0 ? on.throughput_cps / off.throughput_cps : 0.0);
  r.extra.emplace_back("consults_per_command", on_consults);
  r.extra.emplace_back("off_consults_per_command", off_consults);
  r.extra.emplace_back("consult_ratio", on_consults > 0 ? off_consults / on_consults : 0.0);
  r.extra.emplace_back("events_per_command", on_ev);
  r.extra.emplace_back("off_events_per_command", off_ev);
  r.extra.emplace_back("event_ratio", on_ev > 0 ? off_ev / on_ev : 0.0);
  r.extra.emplace_back("prefetch_hits", static_cast<double>(on.counter("locality.prefetch_hits")));
  r.extra.emplace_back("repairs", static_cast<double>(on.counter("locality.repairs")));
  r.extra.emplace_back("repair_reroutes",
                       static_cast<double>(on.counter("locality.repair_reroutes")));
  r.extra.emplace_back("coalesced_moves",
                       static_cast<double>(on.counter("locality.coalesced_moves")));
  return r;
}

// Elasticity-on/off pair on the same config and seed: the off run has no
// scale plan, the on run boots a third partition via `add-partition` with the
// event placed inside the warmup window, so by the time the measured window
// opens the membership record is delivered and the chunked rebalance has
// settled — the pair compares steady states, not the rebalance transient.
//
// `throughput_ratio` (on/off, simulated commands/sec, deterministic per seed)
// is the load-bearing number: tools/perf_compare.py enforces a hard >= 0.95
// floor, i.e. running elastic must never cost more than 5% of steady-state
// throughput (it usually gains — a third partition shares the load).
BenchResult bench_chirper_elastic(bool smoke) {
  auto cfg = small_chirper(smoke, 42);
  cfg.clients_per_partition = 8;

  const harness::RunResult off = harness::run_chirper(cfg);

  cfg.scale_plan = smoke ? "add-partition@50ms" : "add-partition@250ms";
  const harness::RunResult on = harness::run_chirper(cfg);
  const double on_wall = on.drive_wall_s;

  BenchResult r{"chirper.elastic",
                static_cast<double>(on.ok + on.nok) / on_wall, on_wall, {}};
  r.extra.emplace_back("throughput_cps", on.throughput_cps);
  r.extra.emplace_back("off_throughput_cps", off.throughput_cps);
  r.extra.emplace_back("throughput_ratio",
                       off.throughput_cps > 0 ? on.throughput_cps / off.throughput_cps : 0.0);
  r.extra.emplace_back("partitions_added",
                       static_cast<double>(on.counter("elastic.partitions_added")));
  r.extra.emplace_back("rebalance_moves",
                       static_cast<double>(on.counter("elastic.rebalance_moves")));
  r.extra.emplace_back("rebalance_vars",
                       static_cast<double>(on.counter("elastic.rebalance_vars")));
  return r;
}

BenchResult bench_sweep_parallel(bool smoke, std::size_t jobs) {
  std::vector<harness::ChirperRunConfig> cfgs;
  for (std::uint64_t s = 0; s < 4; ++s) cfgs.push_back(small_chirper(smoke, 40 + s));

  auto t0 = Clock::now();
  const auto serial = harness::run_sweep(cfgs, 1);
  const double serial_wall = seconds_since(t0);

  t0 = Clock::now();
  const auto parallel = harness::run_sweep(cfgs, jobs);
  const double parallel_wall = seconds_since(t0);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].counters == parallel[i].counters &&
                serial[i].ok == parallel[i].ok && serial[i].nok == parallel[i].nok;
  }
  if (!identical) {
    std::fprintf(stderr, "FATAL: parallel sweep diverged from serial results\n");
    std::exit(1);
  }

  BenchResult r{"sweep.parallel", static_cast<double>(cfgs.size()) / parallel_wall,
                parallel_wall, {}};
  r.extra.emplace_back("serial_wall_s", serial_wall);
  r.extra.emplace_back("speedup", serial_wall / parallel_wall);
  r.extra.emplace_back("jobs", static_cast<double>(jobs));
  r.extra.emplace_back("results_identical", 1.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::size_t jobs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "BENCH_perf.json";
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (jobs == 0) jobs = 1;
    } else {
      std::fprintf(stderr, "usage: perf_suite [--smoke] [--json [path]] [--jobs N]\n");
      return 2;
    }
  }

  const std::uint64_t kIters = smoke ? 400'000 : 4'000'000;
  const auto suite_t0 = Clock::now();

  std::vector<BenchResult> results;
  results.push_back(bench_engine_schedule_fire(kIters));
  results.push_back(bench_engine_schedule_cancel(kIters));
  results.push_back(bench_network_multisend(kIters));
  results.push_back(bench_mapping_locate(kIters));
  results.push_back(bench_prophecy_apply(kIters));
  results.push_back(bench_zipf_sample(kIters));
  results.push_back(bench_chirper_small(smoke));
  results.push_back(bench_chirper_telemetry(smoke));
  results.push_back(bench_chirper_batched(smoke));
  results.push_back(bench_chirper_locality(smoke));
  results.push_back(bench_chirper_elastic(smoke));
  results.push_back(bench_sweep_parallel(smoke, jobs));

  const double total_wall = seconds_since(suite_t0);

  std::printf("%-24s %16s %10s\n", "bench", "items/sec", "wall(s)");
  for (const BenchResult& r : results) {
    std::printf("%-24s %16.0f %10.3f\n", r.name.c_str(), r.items_per_sec, r.wall_s);
    for (const auto& [k, v] : r.extra) std::printf("  %-22s %16.2f\n", k.c_str(), v);
  }
  std::printf("%-24s %27.3f\n", "total", total_wall);
  std::printf("%-24s %24.1fMB\n", "peak rss", peak_rss_mb());

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    stats::JsonWriter w(os);
    w.begin_object();
    w.field("schema", "dssmr.perf.v1");
    w.field("smoke", smoke);
    w.field("jobs", static_cast<std::uint64_t>(jobs));
    w.field("total_wall_s", total_wall);
    w.field("peak_rss_mb", peak_rss_mb());
    w.key("benches");
    w.begin_array();
    for (const BenchResult& r : results) {
      w.begin_object();
      w.field("name", r.name);
      w.field("items_per_sec", r.items_per_sec);
      w.field("wall_s", r.wall_s);
      for (const auto& [k, v] : r.extra) w.field(k, v);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
