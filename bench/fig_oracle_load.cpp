// E7 — Is the oracle a bottleneck? (DSN'16 cache evaluation + the supplied
// text's "CPU load in the oracle" figure.)
//
// (a) Location cache on vs off: consult volume and throughput.
// (b) Oracle-leader CPU utilization over time: high at the start (cold
//     caches, many moves) and decaying as clients cache locations.
// (c) Oracle load vs number of partitions.
#include "bench_util.h"

namespace {

dssmr::harness::ChirperRunConfig base_config(std::size_t parts) {
  using namespace dssmr;
  harness::ChirperRunConfig cfg;
  cfg.strategy = core::Strategy::kDssmr;
  cfg.partitions = parts;
  cfg.clients_per_partition = 8;
  cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
  cfg.use_controlled_cut = true;
  cfg.controlled_edge_cut = 0.01;
  cfg.workload.mix = workload::mixes::kTimelineHeavy;
  cfg.warmup = 0;
  cfg.measure = sec(10);
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;

  RunRecordSink sink(argc, argv, "fig_oracle_load");
  heading("E7: oracle load and the client location cache");

  std::vector<SweepPoint> points;
  for (bool cache : {true, false}) {
    auto cfg = base_config(4);
    cfg.client_cache = cache;
    cfg.warmup = sec(3);
    cfg.measure = sec(3);
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, cache ? "cache-on" : "cache-off"});
  }
  {
    auto cfg = base_config(4);
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, "busy-over-time"});
  }
  for (std::size_t parts : {2u, 4u, 8u}) {
    auto cfg = base_config(parts);
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, "parts-" + std::to_string(parts)});
  }
  const auto results = run_points(sink, points);

  subheading("(a) cache on vs off, 4 partitions, mixed workload");
  std::printf("%-10s %10s %10s %12s %12s\n", "cache", "tput(cps)", "lat(us)", "consults",
              "cache-hits");
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& r = results[i];
    std::printf("%-10s %10.0f %10.0f %12llu %12llu\n", i == 0 ? "on" : "off",
                r.throughput_cps, r.latency_avg_us,
                static_cast<unsigned long long>(r.counter("client.consults")),
                static_cast<unsigned long long>(r.counter("client.cache_hits")));
  }

  subheading("(b) oracle-leader CPU utilization over time (4 partitions)");
  {
    const auto& r = results[2];
    std::printf("second:   ");
    for (std::size_t i = 0; i < r.oracle_busy_series.size(); ++i) std::printf(" %5zu", i);
    std::printf("\nbusy(%%):  ");
    for (double b : r.oracle_busy_series) std::printf(" %5.1f", 100.0 * b);
    std::printf("\nconsults total: %llu\n",
                static_cast<unsigned long long>(r.counter("oracle.consults")));
  }

  subheading("(c) oracle load vs partitions");
  std::printf("%6s %12s %14s %12s\n", "parts", "tput(cps)", "consults/s", "peak-busy%");
  {
    std::size_t i = 3;
    for (std::size_t parts : {2u, 4u, 8u}) {
      const auto& r = results[i++];
      double peak = 0;
      for (double b : r.oracle_busy_series) peak = std::max(peak, b);
      std::printf("%6zu %12.0f %14.0f %12.1f\n", parts, r.throughput_cps,
                  static_cast<double>(r.counter("oracle.consults")) / 10.0, 100.0 * peak);
    }
  }
  std::printf("\n(paper shape: load spikes early, then the cache absorbs consults and the\n"
              " oracle stays far from saturation)\n");
  return sink.finish();
}
