// Ablation — DS-SMR move-destination rule.
//
// The paper's client algorithm only says "let P_d be one of the partitions
// in C.dests"; the choice matters enormously:
//  * most-held with a FIXED tie-break collapses all state onto one partition
//    on scattered placements (every near-tie resolves the same way);
//  * most-held with a hashed tie-break converges fast and stays balanced;
//  * random-involved is symmetric but converges slowly (more moves);
//  * least-loaded maximizes balance but keeps paying moves.
// This bench quantifies the difference on a mostly-partitionable workload,
// reporting throughput and how skewed the final variable placement is.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::DssmrPolicy;

  RunRecordSink sink(argc, argv, "fig_ablation_dest_rule");
  heading("Ablation: DS-SMR move-destination rule (post-only, 4 partitions, 1% cut)");

  struct Case {
    DssmrPolicy::DestRule rule;
    const char* label;
  };
  const Case kCases[] = {
      {DssmrPolicy::DestRule::kMostHeld, "most-held (hashed ties)"},
      {DssmrPolicy::DestRule::kRandomInvolved, "random-involved"},
      {DssmrPolicy::DestRule::kLeastLoaded, "least-loaded"},
  };

  std::vector<SweepPoint> points;
  for (const auto& c : kCases) {
    harness::ChirperRunConfig cfg;
    cfg.strategy = core::Strategy::kDssmr;
    cfg.dssmr_dest_rule = c.rule;
    cfg.partitions = 4;
    cfg.clients_per_partition = 8;
    cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
    cfg.use_controlled_cut = true;
    cfg.controlled_edge_cut = 0.01;
    cfg.workload.mix = workload::mixes::kPostOnly;
    cfg.warmup = sec(4);
    cfg.measure = sec(3);
    cfg.seed = 42;
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, c.label});
  }
  const auto results = run_points(sink, points);

  print_run_header();
  for (std::size_t i = 0; i < results.size(); ++i) {
    print_run_row(points[i].label, 4, results[i]);
  }
  std::printf("\n(watch the moves column: symmetric rules keep paying moves; the hashed\n"
              " most-held rule converges and stops)\n");
  return sink.finish();
}
