// E5 — Behaviour under weak locality (motivation figure, right column:
// throughput and moves over time when the state is NOT perfectly
// partitionable).
//
// Same setup as E4 but with 5% cross-community edges. Expected shape:
// DS-SMR keeps moving variables back and forth — the moves series never
// dries up and throughput stays unstable/depressed; the DynaStar-style
// oracle stabilizes (it only moves on demand toward a graph-partitioned
// ideal); the optimized static scheme is steady but pays for cross-partition
// posts.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dssmr;
  using namespace dssmr::bench;
  using core::Strategy;
  using harness::ChirperRunConfig;
  using harness::Placement;

  RunRecordSink sink(argc, argv, "fig_weak_locality");
  heading("E5: throughput & moves over time, WEAK locality (5% edge cut), 4 partitions");

  struct Case {
    Strategy strategy;
    Placement placement;
    const char* label;
  };
  const Case kCases[] = {
      {Strategy::kStaticSsmr, Placement::kMetis, "optimized-static"},
      {Strategy::kDssmr, Placement::kHash, "DS-SMR"},
      {Strategy::kDynaStar, Placement::kHash, "DynaStar"},
  };

  std::vector<SweepPoint> points;
  for (const auto& c : kCases) {
    ChirperRunConfig cfg;
    cfg.strategy = c.strategy;
    cfg.placement = c.placement;
    cfg.partitions = 4;
    cfg.clients_per_partition = 8;
    cfg.graph = {.n = 2048, .m = 2, .p_triad = 0.8};
    cfg.use_controlled_cut = true;
    cfg.controlled_edge_cut = 0.05;
    cfg.workload.mix = workload::mixes::kPostOnly;
    cfg.workload.hint_posts = true;
    cfg.dynastar_hint_threshold = 1500;
    cfg.warmup = 0;
    cfg.measure = sec(12);
    cfg.seed = 42;
    cfg.trace = sink.trace_wanted();
    cfg.spans = sink.spans_wanted();
    cfg.nemesis = sink.nemesis();
    cfg.scale_plan = sink.scale_plan();
    cfg.telemetry = sink.telemetry_wanted();
    cfg.telemetry_interval = sink.telemetry_interval();
    cfg.spans_capacity = sink.spans_capacity();
    cfg.batch_size = sink.batch_size();
    cfg.batch_delay = sink.batch_delay();
    cfg.pipeline_depth = sink.pipeline_depth();
    cfg.prefetch_k = sink.prefetch_k();
    cfg.cache_repair = sink.cache_repair();
    cfg.coalesce_moves = sink.coalesce_moves();
    cfg.coalesce_delay = sink.coalesce_delay();
    points.push_back({cfg, c.label});
  }
  const auto results = run_points(sink, points);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    subheading(points[i].label);
    print_series("tput(cps) ", r.tput_series);
    print_series("moves/s   ", r.moves_series);
    std::printf("total moves: %llu, retries: %llu, fallbacks: %llu\n",
                static_cast<unsigned long long>(r.counter("moves.total")),
                static_cast<unsigned long long>(r.counter("client.retries")),
                static_cast<unsigned long long>(r.counter("client.fallbacks")));
  }
  return sink.finish();
}
