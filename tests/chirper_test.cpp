// Chirper application semantics, from unit level (UserValue) to full-stack
// (posts fanned out across partitions under DS-SMR).
#include "chirper/chirper.h"

#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "testing/dssmr_fixture.h"

namespace dssmr::chirper {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

TEST(UserValue, TimelineCapEnforced) {
  UserValue u;
  for (std::uint64_t i = 0; i < kTimelineCap + 20; ++i) {
    u.append_post({VarId{1}, i, "x"});
  }
  EXPECT_EQ(u.timeline.size(), kTimelineCap);
  EXPECT_EQ(u.timeline.front().seq, 20u);  // oldest were evicted
  EXPECT_EQ(u.timeline.back().seq, kTimelineCap + 19);
}

TEST(UserValue, CloneIsDeep) {
  UserValue u;
  u.followers = {VarId{1}, VarId{2}};
  u.append_post({VarId{9}, 1, "hello"});
  auto c = u.clone();
  auto* cu = dynamic_cast<UserValue*>(c.get());
  ASSERT_NE(cu, nullptr);
  cu->followers.push_back(VarId{3});
  cu->timeline[0].text = "mutated";
  EXPECT_EQ(u.followers.size(), 2u);
  EXPECT_EQ(u.timeline[0].text, "hello");
}

TEST(CommandBuilders, PostIncludesFollowersOnce) {
  auto cmd = make_post(VarId{1}, {VarId{2}, VarId{1}, VarId{3}}, "hi");
  EXPECT_EQ(cmd.write_set, (std::vector<VarId>{VarId{1}, VarId{2}, VarId{3}}));
  EXPECT_EQ(cmd.arg, "hi");
}

TEST(CommandBuilders, FollowCarriesHintEdge) {
  auto cmd = make_follow(VarId{4}, VarId{7});
  ASSERT_EQ(cmd.hint_edges.size(), 1u);
  EXPECT_EQ(cmd.hint_edges[0].first, VarId{4});
  EXPECT_EQ(cmd.hint_edges[0].second, VarId{7});
}

// ---- full-stack -------------------------------------------------------------

std::unique_ptr<Deployment> chirper_deployment(std::size_t partitions, Strategy strategy,
                                               std::size_t users = 8) {
  auto cfg = small_config(partitions, strategy);
  auto d = std::make_unique<Deployment>(cfg, chirper_app_factory(),
                                        [] { return std::make_unique<core::DssmrPolicy>(); });
  for (std::size_t u = 0; u < users; ++u) {
    d->preload_var(VarId{u}, d->partition_gid(u % partitions), UserValue{});
  }
  d->start();
  d->settle();
  return d;
}

const TimelineReply& as_timeline(const net::MessagePtr& m) {
  return net::msg_as<TimelineReply>(m);
}

TEST(ChirperE2E, PostAppearsInOwnTimeline) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {}, "first!")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, make_get_timeline(VarId{0}), &reply), ReplyCode::kOk);
  ASSERT_EQ(as_timeline(reply).posts.size(), 1u);
  EXPECT_EQ(as_timeline(reply).posts[0].text, "first!");
  EXPECT_EQ(as_timeline(reply).posts[0].author, VarId{0});
}

TEST(ChirperE2E, PostFansOutToFollowersAcrossPartitions) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  // User 1 (partition 1) follows user 0 (partition 0).
  EXPECT_EQ(run_op(*d, 0, make_follow(VarId{1}, VarId{0})), ReplyCode::kOk);
  // User 0 posts; the write set spans both users -> move + single-partition exec.
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {VarId{1}}, "fanout")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, make_get_timeline(VarId{1}), &reply), ReplyCode::kOk);
  ASSERT_EQ(as_timeline(reply).posts.size(), 1u);
  EXPECT_EQ(as_timeline(reply).posts[0].text, "fanout");
  // DS-SMR collocated poster and follower.
  EXPECT_EQ(d->oracle(0).mapping().locate(VarId{0}), d->oracle(0).mapping().locate(VarId{1}));
}

TEST(ChirperE2E, FollowThenUnfollowUpdatesLinks) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(run_op(*d, 0, make_follow(VarId{2}, VarId{3})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_unfollow(VarId{2}, VarId{3})), ReplyCode::kOk);
  // Post by 3 should now reach only 3's own timeline.
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{3}, {}, "alone")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, make_get_timeline(VarId{2}), &reply), ReplyCode::kOk);
  EXPECT_TRUE(as_timeline(reply).posts.empty());
}

TEST(ChirperE2E, TimelineOrderIsPostOrder) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {}, "one")), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {}, "two")), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {}, "three")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, make_get_timeline(VarId{0}), &reply), ReplyCode::kOk);
  const auto& posts = as_timeline(reply).posts;
  ASSERT_EQ(posts.size(), 3u);
  EXPECT_EQ(posts[0].text, "one");
  EXPECT_EQ(posts[1].text, "two");
  EXPECT_EQ(posts[2].text, "three");
}

TEST(ChirperE2E, WorksUnderStaticSsmrToo) {
  auto d = chirper_deployment(2, Strategy::kStaticSsmr);
  // Cross-partition post executes as an S-SMR multi-partition command.
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {VarId{1}}, "static")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, make_get_timeline(VarId{1}), &reply), ReplyCode::kOk);
  ASSERT_EQ(as_timeline(reply).posts.size(), 1u);
  EXPECT_EQ(as_timeline(reply).posts[0].text, "static");
  // No moves under the static scheme; users stay put.
  EXPECT_TRUE(d->server(0, 0).owns(VarId{0}));
  EXPECT_TRUE(d->server(1, 0).owns(VarId{1}));
}

TEST(ChirperE2E, TimelineOfUnknownUserIsNok) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(run_op(*d, 0, make_get_timeline(VarId{404})), ReplyCode::kNok);
}

TEST(ChirperE2E, NewUserViaCreate) {
  auto d = chirper_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(run_op(*d, 0, make_create(VarId{100})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_follow(VarId{100}, VarId{0})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_post(VarId{0}, {VarId{100}}, "welcome")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, make_get_timeline(VarId{100}), &reply), ReplyCode::kOk);
  ASSERT_EQ(as_timeline(reply).posts.size(), 1u);
}

}  // namespace
}  // namespace dssmr::chirper
