// Nemesis fault injection: the FaultPlan DSL, the Nemesis executor, and the
// acceptance properties every shipped plan must hold — linearizable client
// histories under the fault, byte-identical run records across same-seed
// runs, and a populated `faults` section in the v3 run-record JSON.
#include "fault/nemesis.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "lincheck/lincheck.h"
#include "smr/kv.h"
#include "stats/run_record.h"
#include "testing/dssmr_fixture.h"
#include "testing/history.h"

namespace dssmr::fault {
namespace {

using core::Strategy;
using harness::Deployment;
using namespace dssmr::testing;

// ---- FaultPlan DSL -----------------------------------------------------------

TEST(FaultPlanParse, SingleCrashEvent) {
  const FaultPlan p = parse_plan("crash:p1r2@120ms");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].action, FaultAction::kCrash);
  EXPECT_EQ(p.events[0].at, msec(120));
  EXPECT_EQ(p.events[0].target.kind, FaultTarget::Kind::kReplica);
  EXPECT_EQ(p.events[0].target.partition, 1u);
  EXPECT_EQ(p.events[0].target.replica, 2u);
}

TEST(FaultPlanParse, TimeUnitsAndOrdering) {
  // Events sort by trigger time whatever order they are written in.
  const FaultPlan p = parse_plan("recover:oracle0@1s;crash:oracle0@500us");
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].action, FaultAction::kCrash);
  EXPECT_EQ(p.events[0].at, usec(500));
  EXPECT_EQ(p.events[1].action, FaultAction::kRecover);
  EXPECT_EQ(p.events[1].at, sec(1));
}

TEST(FaultPlanParse, KillLeaderAndRecoverLast) {
  const FaultPlan p = parse_plan("kill-leader:oracle@10ms;recover:last@50ms");
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].action, FaultAction::kKillLeader);
  EXPECT_EQ(p.events[0].target.kind, FaultTarget::Kind::kOracle);
  EXPECT_EQ(p.events[1].target.kind, FaultTarget::Kind::kLastVictim);
}

TEST(FaultPlanParse, CutSidesAndDirection) {
  const FaultPlan sym = parse_plan("cut:p0+oracle1|p1@1ms");
  ASSERT_EQ(sym.events.size(), 1u);
  EXPECT_FALSE(sym.events[0].directed);
  ASSERT_EQ(sym.events[0].side_a.size(), 2u);
  EXPECT_EQ(sym.events[0].side_a[0].kind, FaultTarget::Kind::kPartition);
  EXPECT_EQ(sym.events[0].side_a[1].kind, FaultTarget::Kind::kOracleReplica);
  ASSERT_EQ(sym.events[0].side_b.size(), 1u);

  const FaultPlan dir = parse_plan("cut:p0r0>p0@1ms");
  EXPECT_TRUE(dir.events[0].directed);
}

TEST(FaultPlanParse, DropBurst) {
  const FaultPlan p = parse_plan("drop:0.25@100ms+300ms");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].action, FaultAction::kDropBurst);
  EXPECT_DOUBLE_EQ(p.events[0].drop_probability, 0.25);
  EXPECT_EQ(p.events[0].at, msec(100));
  EXPECT_EQ(p.events[0].duration, msec(300));
}

TEST(FaultPlanParse, MalformedSpecsThrow) {
  EXPECT_THROW(parse_plan(""), std::invalid_argument);
  EXPECT_THROW(parse_plan("crash:p0r0"), std::invalid_argument);       // no @time
  EXPECT_THROW(parse_plan("crash:p0@10ms"), std::invalid_argument);    // group, not process
  EXPECT_THROW(parse_plan("explode:p0r0@1ms"), std::invalid_argument); // unknown action
  EXPECT_THROW(parse_plan("crash:last@1ms"), std::invalid_argument);
  EXPECT_THROW(parse_plan("kill-leader:p0r1@1ms"), std::invalid_argument);
  EXPECT_THROW(parse_plan("cut:p0@1ms"), std::invalid_argument);       // one side
  EXPECT_THROW(parse_plan("drop:0.5@1ms"), std::invalid_argument);     // no duration
  EXPECT_THROW(parse_plan("crash:p0r0@10fortnights"), std::invalid_argument);
}

TEST(FaultPlanParse, ShippedPlansAllResolve) {
  ASSERT_FALSE(shipped_plans().empty());
  for (const ShippedPlan& sp : shipped_plans()) {
    const FaultPlan p = resolve_plan(sp.name);
    EXPECT_EQ(p.name, sp.name);
    EXPECT_FALSE(p.events.empty()) << sp.name;
  }
  // Non-names fall through to the DSL parser.
  EXPECT_EQ(resolve_plan("heal@1ms").name, "custom");
  EXPECT_THROW(resolve_plan("no-such-plan"), std::invalid_argument);
}

// ---- Nemesis execution -------------------------------------------------------

void preload_kv(Deployment& d, std::size_t vars, lincheck::KvSpec* spec = nullptr) {
  for (std::size_t i = 0; i < vars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % d.config().partitions), kv::KvValue{0, ""});
    if (spec != nullptr) spec->preload(VarId{i}, 0, "");
  }
}

TEST(Nemesis, ValidatesTargetsAgainstDeploymentShape) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  EXPECT_THROW(Nemesis(d, resolve_plan("crash:p5r0@1ms")), std::invalid_argument);
  EXPECT_THROW(Nemesis(d, resolve_plan("crash:p0r9@1ms")), std::invalid_argument);
  EXPECT_THROW(Nemesis(d, resolve_plan("crash:oracle7@1ms")), std::invalid_argument);
  EXPECT_THROW(Nemesis(d, resolve_plan("kill-leader:p2@1ms")), std::invalid_argument);
  EXPECT_NO_THROW(Nemesis(d, resolve_plan("crash:p1r2@1ms")));
}

TEST(Nemesis, CrashRecoverCycleCountsAndRestores) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan("crash:p0r1@5ms;recover:p0r1@40ms")};
  nem.arm();
  d.engine().run_for(msec(10));
  EXPECT_TRUE(d.server(0, 1).halted());
  EXPECT_TRUE(d.network().crashed(d.server(0, 1).pid()));
  d.engine().run_for(msec(50));
  EXPECT_FALSE(d.server(0, 1).halted());
  EXPECT_FALSE(d.network().crashed(d.server(0, 1).pid()));
  EXPECT_EQ(nem.events_fired(), 2u);
  EXPECT_EQ(d.metrics().counter("faults.events_injected"), 2u);
  EXPECT_EQ(d.metrics().counter("faults.crashes"), 1u);
  EXPECT_EQ(d.metrics().counter("faults.recoveries"), 1u);
  // The window closed, so the in-window counters exist (possibly zero).
  EXPECT_TRUE(d.metrics().counters().contains("faults.retries_in_window"));
}

TEST(Nemesis, KillLeaderElectsReplacementAndMeasuresIt) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan("leader-kill-recover")};
  nem.arm();
  d.engine().run_for(sec(1));

  EXPECT_EQ(d.metrics().counter("faults.leader_kills"), 1u);
  EXPECT_EQ(d.metrics().counter("faults.crashes"), 1u);
  EXPECT_EQ(d.metrics().counter("faults.recoveries"), 1u);
  // 3 replicas: the surviving majority elects a replacement, and the watcher
  // recorded how long that took.
  const stats::Histogram* h = d.metrics().find_histogram("faults.time_to_new_leader_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->mean(), 0.0);
  std::size_t live_leaders = 0;
  for (std::size_t r = 0; r < cfg.replicas_per_partition; ++r) {
    if (!d.server(0, r).halted() && d.server(0, r).is_leader()) ++live_leaders;
  }
  EXPECT_GE(live_leaders, 1u);
}

TEST(Nemesis, HealRestoresExactlyTheCutLinks) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  const ProcessId a = d.server(0, 0).pid();
  const ProcessId b = d.server(1, 0).pid();

  Nemesis nem{d, resolve_plan("partition-heal")};
  nem.arm();
  d.engine().run_for(msec(200));
  EXPECT_FALSE(d.network().link_up(a, b));
  EXPECT_FALSE(d.network().link_up(b, a));
  EXPECT_GT(d.metrics().counter("faults.links_cut"), 0u);
  d.engine().run_for(msec(400));
  EXPECT_TRUE(d.network().link_up(a, b));
  EXPECT_TRUE(d.network().link_up(b, a));
  EXPECT_EQ(d.metrics().counter("faults.heals"), 1u);
}

TEST(Nemesis, AsymmetricCutIsDirectional) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan("asym-partition")};
  nem.arm();
  d.engine().run_for(msec(200));
  const ProcessId victim = d.server(0, 0).pid();
  const ProcessId peer = d.server(0, 1).pid();
  EXPECT_FALSE(d.network().link_up(victim, peer));  // victim -> peer cut
  EXPECT_TRUE(d.network().link_up(peer, victim));   // peer -> victim still up
  d.engine().run_for(msec(400));
  EXPECT_TRUE(d.network().link_up(victim, peer));
}

TEST(Nemesis, DropBurstRestoresPreviousProbability) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  cfg.net.drop_probability = 0.01;
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan("drop-burst")};
  nem.arm();
  d.engine().run_for(msec(150));
  EXPECT_DOUBLE_EQ(d.network().config().drop_probability, 0.05);
  d.engine().run_for(msec(400));
  EXPECT_DOUBLE_EQ(d.network().config().drop_probability, 0.01);
  EXPECT_EQ(d.metrics().counter("faults.drop_bursts"), 1u);
}

// ---- acceptance: linearizable histories under every shipped plan -------------

class ShippedPlanLinearizability : public ::testing::TestWithParam<std::string> {};

TEST_P(ShippedPlanLinearizability, HistoriesUnderPlanAreLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = small_config(2, Strategy::kDssmr, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan(GetParam())};
  nem.arm();
  // Paced clients stretch the history past the last plan event (700ms), so
  // every injection lands while operations are in flight.
  auto history =
      record_history(d, /*ops_per_client=*/8, /*seed=*/23, kVars, /*think=*/msec(250));
  ASSERT_EQ(history.size(), 24u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec)) << "plan " << GetParam();
  EXPECT_GT(d.metrics().counter("faults.events_injected"), 0u);
}

std::vector<std::string> shipped_plan_names() {
  std::vector<std::string> names;
  for (const ShippedPlan& p : shipped_plans()) names.emplace_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllShippedPlans, ShippedPlanLinearizability,
                         ::testing::ValuesIn(shipped_plan_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- acceptance: byte-identical run records under every shipped plan ---------

std::string nemesis_record_json(const std::string& plan, std::uint64_t seed) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.replicas_per_partition = 3;  // keep quorums alive across kill-leader
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(100);
  cfg.measure = msec(900);
  cfg.seed = seed;
  cfg.nemesis = plan;
  const harness::RunResult r = harness::run_chirper(cfg);
  std::ostringstream os;
  stats::write_run_records(os, "fault_test", {harness::make_run_record(cfg, r)});
  return os.str();
}

class ShippedPlanDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ShippedPlanDeterminism, SameSeedSameRunRecordBytes) {
  const std::string first = nemesis_record_json(GetParam(), 77);
  const std::string second = nemesis_record_json(GetParam(), 77);
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second) << "plan " << GetParam();
  // The v3 faults section is present and the run recorded injections.
  EXPECT_NE(first.find("\"faults\""), std::string::npos);
  EXPECT_NE(first.find("\"events_injected\""), std::string::npos);
  EXPECT_NE(first.find("\"nemesis\": \"" + GetParam() + "\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllShippedPlans, ShippedPlanDeterminism,
                         ::testing::ValuesIn(shipped_plan_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FaultRunRecord, NoNemesisMeansNoFaultsSection) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 2;
  cfg.graph = {.n = 200, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(50);
  cfg.measure = msec(200);
  const harness::RunResult r = harness::run_chirper(cfg);
  std::ostringstream os;
  stats::write_run_records(os, "fault_test", {harness::make_run_record(cfg, r)});
  EXPECT_EQ(os.str().find("\"faults\""), std::string::npos);
  EXPECT_NE(os.str().find("\"nemesis\": \"none\""), std::string::npos);
}

}  // namespace
}  // namespace dssmr::fault
