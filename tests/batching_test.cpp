// Command batching & pipelined consensus: batcher-level behavior over the
// multicast fabric (flush triggers, destination-set union, dedup against
// unbatched submissions), the Paxos pipeline window, and whole-deployment
// guarantees with batching on — linearizability (including across a leader
// kill/recover), span tiling with the batch phase, determinism, and the
// batching-off purity the seed relies on.
#include "multicast/batcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/paxos.h"
#include "fault/fault_plan.h"
#include "fault/nemesis.h"
#include "harness/experiment.h"
#include "lincheck/lincheck.h"
#include "smr/kv.h"
#include "stats/run_record.h"
#include "stats/span.h"
#include "testing/cluster.h"
#include "testing/dssmr_fixture.h"
#include "testing/history.h"

namespace dssmr::multicast {
namespace {

using core::Strategy;
using harness::Deployment;
using testing::Fabric;
using testing::IntMsg;
using namespace dssmr::testing;

constexpr GroupId kG0{0};
constexpr GroupId kG1{1};

/// Fabric plus a client-tier BatchRelay wired to client 0.
struct BatchedFabric {
  BatchedFabric(std::size_t groups, BatchConfig bc) : fabric(groups, 3, 2) {
    fabric.network.add_process(relay, 0);
    relay.init_relay(fabric.network, fabric.directory, bc);
    fabric.clients[0]->set_batcher(&relay.batcher());
    fabric.engine.run_for(msec(50));  // elect leaders
  }

  Fabric fabric;
  BatchRelay relay;
};

TEST(Batcher, FlushesWhenBatchFills) {
  BatchedFabric b{1, {.batch_size = 2, .batch_delay = msec(10)}};
  const Time t0 = b.fabric.engine.now();
  Time flushed_at = 0;
  b.fabric.clients[0]->amcast_with_id(b.fabric.clients[0]->fresh_id(), {kG0},
                                      net::make_msg<IntMsg>(1),
                                      [&](Time t) { flushed_at = t; });
  EXPECT_EQ(b.relay.batcher().pending_entries(), 1u);
  b.fabric.clients[0]->amcast({kG0}, net::make_msg<IntMsg>(2));
  // Second submission fills the batch: flushed at enqueue time, long before
  // the 10ms delay bound.
  EXPECT_EQ(b.relay.batcher().pending_entries(), 0u);
  EXPECT_EQ(flushed_at, t0);
  b.fabric.engine.run_for(msec(100));
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(b.fabric.node(0, r).amdelivered.size(), 2u) << "replica " << r;
  }
}

TEST(Batcher, FlushesOnDelayBound) {
  BatchedFabric b{1, {.batch_size = 100, .batch_delay = usec(200)}};
  const Time t0 = b.fabric.engine.now();
  Time flushed_at = 0;
  b.fabric.clients[0]->amcast_with_id(b.fabric.clients[0]->fresh_id(), {kG0},
                                      net::make_msg<IntMsg>(3),
                                      [&](Time t) { flushed_at = t; });
  EXPECT_EQ(b.relay.batcher().pending_entries(), 1u);
  b.fabric.engine.run_for(msec(100));
  EXPECT_EQ(flushed_at, t0 + usec(200));
  EXPECT_EQ(b.relay.batcher().pending_entries(), 0u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(b.fabric.node(0, r).amdelivered.size(), 1u) << "replica " << r;
  }
}

TEST(Batcher, MultiGroupMulticastIsOneLogicalSubmission) {
  BatchedFabric b{2, {.batch_size = 2, .batch_delay = msec(10)}};
  // One multicast to two groups queues two entries but counts once against
  // the batch size (the batch bound is logical submissions, not fan-out).
  b.fabric.clients[0]->amcast({kG0, kG1}, net::make_msg<IntMsg>(4));
  EXPECT_EQ(b.relay.batcher().pending_entries(), 2u);
  b.fabric.clients[0]->amcast({kG0, kG1}, net::make_msg<IntMsg>(5));
  EXPECT_EQ(b.relay.batcher().pending_entries(), 0u);
  b.fabric.engine.run_for(msec(300));
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(b.fabric.node(g, r).amdelivered.size(), 2u)
          << "group " << g << " replica " << r;
    }
  }
}

TEST(Batcher, BatchedAndUnbatchedSubmissionsDeduplicate) {
  // Client 0 submits through the relay, client 1 re-sends the same multicast
  // id directly (a retransmission racing the batched first send): the derived
  // entry ids must collide so each replica delivers once.
  BatchedFabric b{1, {.batch_size = 1, .batch_delay = usec(100)}};
  const MsgId id = b.fabric.clients[0]->fresh_id();
  b.fabric.clients[0]->amcast_with_id(id, {kG0}, net::make_msg<IntMsg>(6));
  b.fabric.clients[1]->amcast_with_id(id, {kG0}, net::make_msg<IntMsg>(6));
  b.fabric.engine.run_for(msec(200));
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(b.fabric.node(0, r).amdelivered.size(), 1u) << "replica " << r;
  }
}

TEST(Batcher, HaltDropsQueueAndRestartAccepts) {
  BatchedFabric b{1, {.batch_size = 100, .batch_delay = msec(5)}};
  b.fabric.clients[0]->amcast({kG0}, net::make_msg<IntMsg>(7));
  EXPECT_EQ(b.relay.batcher().pending_entries(), 1u);
  b.relay.batcher().halt();
  EXPECT_EQ(b.relay.batcher().pending_entries(), 0u);
  b.fabric.engine.run_for(msec(50));
  for (std::size_t r = 0; r < 3; ++r) EXPECT_TRUE(b.fabric.node(0, r).amdelivered.empty());
  b.relay.batcher().restart();
  b.fabric.clients[0]->amcast({kG0}, net::make_msg<IntMsg>(8));
  b.fabric.engine.run_for(msec(50));
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(b.fabric.node(0, r).amdelivered.size(), 1u) << "replica " << r;
  }
}

// ---- Paxos pipeline window --------------------------------------------------

struct PipelineCluster {
  explicit PipelineCluster(consensus::PaxosConfig cfg, std::size_t n = 3,
                           std::uint64_t seed = 5)
      : network(engine, {}, seed) {
    std::vector<ProcessId> members;
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<testing::TestPaxosNode>();
      members.push_back(network.add_process(*node, static_cast<int>(i % 2)));
      nodes.push_back(std::move(node));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i]->init(network, GroupId{0}, members, cfg, seed + i);
      nodes[i]->core->start();
    }
    engine.run_for(msec(50));  // elect nodes[0]
  }

  sim::Engine engine;
  net::Network network;
  std::vector<std::unique_ptr<testing::TestPaxosNode>> nodes;
};

TEST(Pipeline, WindowBoundsInflightProposals) {
  consensus::PaxosConfig cfg;
  cfg.pipeline_depth = 2;
  cfg.max_batch = 2;
  PipelineCluster c{cfg};
  consensus::PaxosCore& leader = *c.nodes[0]->core;
  ASSERT_TRUE(leader.is_leader());
  for (std::int64_t v = 0; v < 12; ++v) {
    ASSERT_TRUE(leader.submit({MsgId{0x100 + static_cast<std::uint64_t>(v)},
                               net::make_msg<IntMsg>(v)}));
  }
  // 12 entries, window 2, chunks of <= 2: only 2 proposals may be undecided
  // at once; the rest waits in pending_ and re-flushes as decisions land.
  EXPECT_LE(leader.inflight_proposals(), 2u);
  EXPECT_EQ(leader.pending_entries(), 12u - 2u * cfg.max_batch);
  std::size_t max_inflight = 0;
  bool probing = true;
  std::function<void()> probe = [&] {
    if (!probing) return;
    max_inflight = std::max(max_inflight, leader.inflight_proposals());
    c.engine.schedule(usec(20), probe);
  };
  probe();
  c.engine.run_for(msec(200));
  probing = false;
  EXPECT_LE(max_inflight, 2u);
  EXPECT_EQ(leader.inflight_proposals(), 0u);
  EXPECT_EQ(leader.pending_entries(), 0u);
  // Every replica decided all 12 entries, in submission order.
  for (auto& n : c.nodes) {
    ASSERT_EQ(n->decided.size(), 12u);
    for (std::int64_t v = 0; v < 12; ++v) {
      EXPECT_EQ(net::msg_as<IntMsg>(n->decided[static_cast<std::size_t>(v)].payload).value, v);
    }
    EXPECT_TRUE(std::is_sorted(n->decided_slots.begin(), n->decided_slots.end()));
  }
}

TEST(Pipeline, DepthZeroKeepsSingleFlushBehavior) {
  consensus::PaxosConfig cfg;  // pipeline_depth = 0: one slot per flush
  PipelineCluster c{cfg};
  consensus::PaxosCore& leader = *c.nodes[0]->core;
  for (std::int64_t v = 0; v < 6; ++v) {
    ASSERT_TRUE(leader.submit({MsgId{0x200 + static_cast<std::uint64_t>(v)},
                               net::make_msg<IntMsg>(v)}));
  }
  c.engine.run_for(msec(100));
  for (auto& n : c.nodes) {
    ASSERT_EQ(n->decided.size(), 6u);
    // All six entries landed in the same slot: one flush, one proposal.
    EXPECT_EQ(n->decided_slots.front(), n->decided_slots.back());
  }
}

// ---- whole-deployment guarantees with batching on ---------------------------

harness::DeploymentConfig batched_config(std::size_t parts, std::size_t clients) {
  auto cfg = small_config(parts, Strategy::kDssmr, clients);
  cfg.batch_size = 8;
  cfg.batch_delay = usec(200);
  cfg.pipeline_depth = 4;
  return cfg;
}

class BatchedLinearizability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedLinearizability, ConcurrentHistoriesAreLinearizable) {
  constexpr std::size_t kVars = 5;
  auto cfg = batched_config(2, 4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();
  EXPECT_EQ(d.relay_count(), 2u);
  auto history = record_history(d, /*ops_per_client=*/8, GetParam(), kVars);
  ASSERT_EQ(history.size(), 32u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec)) << "seed " << GetParam();
  EXPECT_GT(d.metrics().counter("batch.flushes"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedLinearizability, ::testing::Values(1, 2, 3, 4, 5));

TEST(BatchedFaults, LeaderKillRecoverSplitsNoBatch) {
  // A batch split across a leader failover must neither duplicate nor drop
  // commands: drive load through the whole leader-kill-recover plan and check
  // the history is linearizable and the deployment consistent afterwards.
  constexpr std::size_t kVars = 6;
  auto cfg = batched_config(2, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();

  fault::Nemesis nem{d, fault::resolve_plan("leader-kill-recover")};
  nem.arm();
  // think-time paces the clients so the kill (120ms) and recovery (700ms)
  // both land while batched commands are in flight.
  auto history = record_history(d, 8, 42, kVars, /*think=*/msec(40));
  ASSERT_EQ(history.size(), 24u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec));
  d.engine().run_for(sec(1));  // let the 700ms recovery land and drain
  EXPECT_EQ(d.metrics().counter("faults.leader_kills"), 1u);
  EXPECT_EQ(d.metrics().counter("faults.recoveries"), 1u);
  EXPECT_GT(d.metrics().counter("batch.flushes"), 0u);
  EXPECT_TRUE(d.audit_consistency().empty());
}

harness::ChirperRunConfig chirper_batched(std::uint64_t seed) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(100);
  cfg.measure = msec(300);
  cfg.seed = seed;
  cfg.batch_size = 8;
  cfg.batch_delay = usec(200);
  cfg.pipeline_depth = 4;
  return cfg;
}

std::string record_json(const harness::ChirperRunConfig& cfg, const harness::RunResult& r) {
  std::ostringstream os;
  stats::write_run_records(os, "batching_test", {harness::make_run_record(cfg, r)});
  return os.str();
}

TEST(BatchedDeterminism, SameSeedSameRunRecordBytes) {
  const harness::ChirperRunConfig cfg = chirper_batched(77);
  const std::string first = record_json(cfg, harness::run_chirper(cfg));
  const std::string second = record_json(cfg, harness::run_chirper(cfg));
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
  // The record carries the v5 batching section and the knob metadata.
  EXPECT_NE(first.find("\"batching\""), std::string::npos);
  EXPECT_NE(first.find("\"batch_size\": \"8\""), std::string::npos);
  EXPECT_NE(first.find("\"pipeline_depth\": \"4\""), std::string::npos);
}

TEST(BatchedDeterminism, OffRunsCarryNoBatchingArtifacts) {
  harness::ChirperRunConfig cfg = chirper_batched(78);
  cfg.batch_size = 0;
  cfg.pipeline_depth = 0;
  const std::string json = record_json(cfg, harness::run_chirper(cfg));
  EXPECT_EQ(json.find("\"batching\""), std::string::npos);
  EXPECT_EQ(json.find("batch_size"), std::string::npos);
}

TEST(BatchedSpans, PhasesStillTileEndToEndLatency) {
  harness::ChirperRunConfig cfg = chirper_batched(9);
  cfg.spans = true;
  const harness::RunResult r = harness::run_chirper(cfg);
  const stats::SpanStore& spans = r.metrics.spans();
  EXPECT_GT(spans.count(stats::SpanPhase::kBatch), 0u);
  const stats::SpanQuery q{spans};
  std::size_t finished = 0;
  for (std::uint64_t tid : q.trace_ids()) {
    const stats::Span* root = q.root(tid);
    if (root == nullptr) continue;  // command still in flight at run end
    ++finished;
    EXPECT_EQ(q.attributed_total(tid), root->duration()) << "trace " << tid;
  }
  EXPECT_GT(finished, 0u);
}

}  // namespace
}  // namespace dssmr::multicast
