// Whole-system consistency stress tests: random concurrent workloads across
// a grid of (strategy, partitions, seed), followed by a quiescent audit of
// the global invariants (single ownership, replica agreement, oracle/owner
// agreement) and spot-checks of the final application state.
#include <gtest/gtest.h>

#include <tuple>

#include "chirper/chirper.h"
#include "harness/deployment.h"
#include "harness/experiment.h"
#include "smr/kv.h"
#include "testing/dssmr_fixture.h"
#include "workload/chirper_workload.h"

namespace dssmr {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

/// Runs a random concurrent KV workload: each client loops through `ops`
/// commands over `num_vars` variables, all in flight together.
void drive_random_kv(Deployment& d, std::size_t ops, std::size_t num_vars,
                     std::uint64_t seed) {
  std::vector<std::size_t> remaining(d.client_count(), ops);
  Rng rng{seed};
  std::function<void(std::size_t)> kick = [&](std::size_t ci) {
    if (remaining[ci]-- == 0) return;
    smr::Command cmd;
    const auto pick = [&] { return VarId{rng.below(num_vars)}; };
    switch (rng.below(4)) {
      case 0:
        cmd = kv_get(pick());
        break;
      case 1:
        cmd = kv_add(pick(), 1);
        break;
      case 2: {
        VarId a = pick(), b = pick(), c = pick();
        std::vector<VarId> srcs{a};
        if (b != a) srcs.push_back(b);
        if (c != a && c != b) srcs.push_back(c);
        cmd = kv_sum(srcs, a);
        break;
      }
      default:
        cmd = kv_set({pick()}, "z");
        break;
    }
    d.client(ci).issue(std::move(cmd), [&kick, ci](ReplyCode, const net::MessagePtr&) {
      kick(ci);
    });
  };
  for (std::size_t ci = 0; ci < d.client_count(); ++ci) kick(ci);

  const Time deadline = d.engine().now() + sec(120);
  while (d.engine().now() < deadline) {
    d.engine().run_for(msec(50));
    bool done = true;
    for (std::size_t ci = 0; ci < d.client_count(); ++ci) {
      done = done && !d.client(ci).busy();
    }
    if (done) break;
  }
  d.engine().run_for(msec(500));  // quiesce followers and stragglers
}

using GridParam = std::tuple<Strategy, std::size_t, std::uint64_t>;

class ConsistencyGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConsistencyGrid, RandomWorkloadLeavesConsistentState) {
  const auto [strategy, partitions, seed] = GetParam();
  constexpr std::size_t kVars = 12;

  auto cfg = small_config(partitions, strategy, /*clients=*/6);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % partitions), kv::KvValue{0, ""});
  }
  d.start();
  d.settle();

  drive_random_kv(d, /*ops=*/15, kVars, seed);

  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;

  // All preloaded variables are still reachable with a sane value.
  for (std::size_t i = 0; i < kVars; ++i) {
    net::MessagePtr reply;
    ASSERT_EQ(run_op(d, 0, kv_get(VarId{i}), &reply), ReplyCode::kOk) << "var " << i;
    EXPECT_GE(kv_num(reply), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConsistencyGrid,
    ::testing::Combine(::testing::Values(Strategy::kDssmr, Strategy::kStaticSsmr,
                                         Strategy::kDynaStar),
                       ::testing::Values(std::size_t{2}, std::size_t{3}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      // NOTE: no structured bindings here — square brackets do not protect
      // commas from the INSTANTIATE macro's preprocessor.
      std::string name = core::to_string(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_" + std::to_string(std::get<1>(info.param)) + "p_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ConsistencyFaults, AuditHoldsAfterLeaderCrashAndChurn) {
  constexpr std::size_t kVars = 8;
  auto cfg = small_config(2, Strategy::kDssmr, 4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
  }
  d.start();
  d.settle();

  d.engine().schedule(msec(5), [&] {
    for (std::size_t r = 0; r < 3; ++r) {
      if (d.server(1, r).is_leader()) {
        d.network().crash(d.server(1, r).pid());
        d.server(1, r).halt_node();
        return;
      }
    }
  });
  drive_random_kv(d, 12, kVars, 33);
  d.engine().run_for(sec(2));

  // Exclude the crashed replica (the audit does this internally).
  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(ConsistencyChirper, PostHeavyWorkloadKeepsOwnershipPartitioned) {
  auto cfg = small_config(3, Strategy::kDssmr, 6);
  Rng rng{5};
  auto graph = workload::SocialGraph::generate({.n = 60, .m = 2, .p_triad = 0.7}, rng);
  Deployment d{cfg, chirper::chirper_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t u = 0; u < graph.user_count(); ++u) {
    chirper::UserValue user;
    user.followers = graph.neighbors(VarId{u});
    user.following = user.followers;
    d.preload_var(VarId{u}, d.partition_gid(u % 3), user);
  }
  d.start();
  d.settle();

  workload::ChirperWorkloadConfig wcfg;
  wcfg.mix = workload::mixes::kTimelineHeavy;
  workload::ChirperWorkload wl{graph, wcfg, 9};
  harness::ClosedLoopDriver driver{d, [&wl] { return wl.next(); }};
  driver.run(/*warmup=*/0, /*measure=*/sec(2));
  d.engine().run_for(sec(1));

  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
  // Every user still accounted for.
  std::size_t owned = 0;
  for (std::size_t p = 0; p < 3; ++p) owned += d.server(p, 0).owned_count();
  EXPECT_EQ(owned, graph.user_count());
}

}  // namespace
}  // namespace dssmr
