// Elastic repartitioning: the ScalePlan DSL, the Scaler executor, and the
// acceptance properties every shipped plan must hold — linearizable client
// histories while partitions come and go (alone and composed with nemesis
// fault plans), no command lost or duplicated across a drain, byte-identical
// run records across same-seed runs, and no `elasticity` section (no elastic
// footprint at all) when no plan is armed.
#include "fault/scaler.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/nemesis.h"
#include "fault/scale_plan.h"
#include "harness/experiment.h"
#include "lincheck/lincheck.h"
#include "smr/kv.h"
#include "stats/run_record.h"
#include "testing/dssmr_fixture.h"
#include "testing/history.h"

namespace dssmr::fault {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

// ---- ScalePlan DSL -----------------------------------------------------------

TEST(ScalePlanParse, SingleAddEvent) {
  const ScalePlan p = parse_scale_plan("add-partition@30s");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].action, ScaleAction::kAddPartition);
  EXPECT_EQ(p.events[0].at, sec(30));
}

TEST(ScalePlanParse, RemoveCarriesPartitionIndex) {
  const ScalePlan p = parse_scale_plan("remove-partition:2@60s");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].action, ScaleAction::kRemovePartition);
  EXPECT_EQ(p.events[0].partition, 2u);
  EXPECT_EQ(p.events[0].at, sec(60));
}

TEST(ScalePlanParse, TimeUnitsAndOrdering) {
  // Events sort by trigger time whatever order they are written in.
  const ScalePlan p = parse_scale_plan("remove-partition:1@1s;add-partition@500us");
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].action, ScaleAction::kAddPartition);
  EXPECT_EQ(p.events[0].at, usec(500));
  EXPECT_EQ(p.events[1].action, ScaleAction::kRemovePartition);
  EXPECT_EQ(p.events[1].at, sec(1));
}

TEST(ScalePlanParse, MalformedSpecsThrow) {
  EXPECT_THROW(parse_scale_plan(""), std::invalid_argument);
  EXPECT_THROW(parse_scale_plan("add-partition"), std::invalid_argument);      // no @time
  EXPECT_THROW(parse_scale_plan("add-partition:3@1ms"), std::invalid_argument);  // add takes no arg
  EXPECT_THROW(parse_scale_plan("remove-partition@1ms"), std::invalid_argument);  // no index
  EXPECT_THROW(parse_scale_plan("shrink:1@1ms"), std::invalid_argument);       // unknown action
  EXPECT_THROW(parse_scale_plan("add-partition@10fortnights"), std::invalid_argument);
}

TEST(ScalePlanParse, ShippedPlansAllResolve) {
  ASSERT_FALSE(shipped_scale_plans().empty());
  for (const ShippedScalePlan& sp : shipped_scale_plans()) {
    const ScalePlan p = resolve_scale_plan(sp.name);
    EXPECT_EQ(p.name, sp.name);
    EXPECT_FALSE(p.events.empty()) << sp.name;
  }
  // Non-names fall through to the DSL parser.
  EXPECT_EQ(resolve_scale_plan("add-partition@1ms").name, "custom");
  EXPECT_THROW(resolve_scale_plan("no-such-plan"), std::invalid_argument);
}

// ---- Scaler validation and execution -----------------------------------------

harness::DeploymentConfig elastic_config(std::size_t parts, std::size_t clients) {
  auto cfg = small_config(parts, Strategy::kDssmr, clients);
  cfg.elastic = true;
  cfg.oracle.elastic = true;
  return cfg;
}

void preload_kv(Deployment& d, std::size_t vars, lincheck::KvSpec* spec = nullptr) {
  for (std::size_t i = 0; i < vars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % d.config().partitions), kv::KvValue{0, ""});
    if (spec != nullptr) spec->preload(VarId{i}, 0, "");
  }
}

/// Runs the engine until the scaler has fired every event and passed every
/// drain barrier (bounded, so a wedged drain fails the test instead of
/// spinning forever).
void run_until_quiesced(Deployment& d, const Scaler& s, Duration limit = sec(30)) {
  const Time deadline = d.engine().now() + limit;
  while (!s.quiesced() && d.engine().now() < deadline) {
    d.engine().run_for(msec(5));
  }
  ASSERT_TRUE(s.quiesced()) << "scale plan did not quiesce within the time limit";
}

TEST(Scaler, ValidatesPlanAgainstDeploymentShape) {
  auto cfg = elastic_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  // Partition 5 never exists in a 2-partition deployment.
  EXPECT_THROW(Scaler(d, resolve_scale_plan("remove-partition:5@1ms")), std::invalid_argument);
  // Removing the same partition twice.
  EXPECT_THROW(Scaler(d, resolve_scale_plan("remove-partition:1@1ms;remove-partition:1@2ms")),
               std::invalid_argument);
  // Draining down to zero live partitions.
  EXPECT_THROW(Scaler(d, resolve_scale_plan("remove-partition:0@1ms;remove-partition:1@2ms")),
               std::invalid_argument);
  // Partition 2 exists once the add before it has fired.
  EXPECT_NO_THROW(Scaler(d, resolve_scale_plan("add-partition@1ms;remove-partition:2@2ms")));
  EXPECT_NO_THROW(Scaler(d, resolve_scale_plan("remove-partition:1@1ms")));
}

TEST(Scaler, ScaleOutAdmitsPartitionAndRebalances) {
  constexpr std::size_t kVars = 48;
  auto cfg = elastic_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, kVars);
  d.start();
  d.settle();

  Scaler s{d, resolve_scale_plan("add-partition@5ms")};
  s.arm();
  run_until_quiesced(d, s);
  d.engine().run_for(sec(1));  // let the chunked rebalance moves finish

  EXPECT_EQ(d.partition_count(), 3u);
  EXPECT_EQ(d.live_partition_gids().size(), 3u);
  EXPECT_EQ(d.metrics().counter("elastic.partitions_added"), 1u);
  EXPECT_GT(d.metrics().counter("elastic.rebalance_moves"), 0u);
  EXPECT_GT(d.metrics().counter("elastic.rebalance_vars"), 0u);
  // The new partition actually holds state: some of the preloaded variables
  // were shipped onto it by the rebalance.
  std::size_t on_new = 0;
  for (std::size_t r = 0; r < cfg.replicas_per_partition; ++r) {
    on_new = std::max(on_new, d.server(2, r).owned_count());
  }
  EXPECT_GT(on_new, 0u);
  // Every variable is still readable through a client after the rebalance.
  for (std::size_t i = 0; i < kVars; ++i) {
    EXPECT_EQ(run_op(d, 0, kv_get(VarId{i})), ReplyCode::kOk) << "var " << i;
  }
  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(Scaler, ScaleInDrainsWithoutLosingOrDuplicatingState) {
  constexpr std::size_t kVars = 24;
  auto cfg = elastic_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, kVars);
  d.start();
  d.settle();

  // Give every variable a distinct value so a lost or duplicated move shows.
  for (std::size_t i = 0; i < kVars; ++i) {
    ASSERT_EQ(run_op(d, 0, kv_add(VarId{i}, static_cast<std::int64_t>(i + 1))),
              ReplyCode::kOk);
  }

  Scaler s{d, resolve_scale_plan("remove-partition:1@5ms")};
  s.arm();
  run_until_quiesced(d, s);

  EXPECT_TRUE(d.partition_retired(1));
  EXPECT_TRUE(d.partition_drained(1));
  EXPECT_EQ(d.live_partition_gids().size(), 1u);
  EXPECT_EQ(d.metrics().counter("elastic.partitions_retired"), 1u);
  const stats::Histogram* h = d.metrics().find_histogram("elastic.drain_time_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);

  // No command lost: every variable kept exactly the value written before the
  // drain. No duplication: the quiescent audit would flag a variable owned by
  // two partitions.
  for (std::size_t i = 0; i < kVars; ++i) {
    net::MessagePtr reply;
    ASSERT_EQ(run_op(d, 0, kv_get(VarId{i}), &reply), ReplyCode::kOk) << "var " << i;
    EXPECT_EQ(kv_num(reply), static_cast<std::int64_t>(i + 1)) << "var " << i;
  }
  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(Scaler, RetiredPartitionAnswersRetiredAndClientsReroute) {
  constexpr std::size_t kVars = 8;
  auto cfg = elastic_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, kVars);
  d.start();
  d.settle();

  Scaler s{d, resolve_scale_plan("remove-partition:1@5ms")};
  s.arm();
  run_until_quiesced(d, s);

  // Writes keep succeeding after the retire: stale prophecies pointing at the
  // drained group come back kRetired and the client re-consults and retries.
  for (std::size_t i = 0; i < kVars; ++i) {
    EXPECT_EQ(run_op(d, i % d.client_count(), kv_add(VarId{i}, 1)), ReplyCode::kOk)
        << "var " << i;
  }
  for (std::size_t r = 0; r < cfg.replicas_per_partition; ++r) {
    EXPECT_TRUE(d.server(1, r).retired());
    EXPECT_EQ(d.server(1, r).owned_count(), 0u);
  }
}

// ---- acceptance: linearizable histories under every shipped scale plan -------

class ShippedScalePlanLinearizability : public ::testing::TestWithParam<std::string> {};

TEST_P(ShippedScalePlanLinearizability, HistoriesUnderPlanAreLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = elastic_config(2, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();

  Scaler s{d, resolve_scale_plan(GetParam())};
  s.arm();
  // Paced clients stretch the history past the last plan event (400ms), so
  // adds and drains land while operations are in flight.
  auto history =
      record_history(d, /*ops_per_client=*/8, /*seed=*/31, kVars, /*think=*/msec(250));
  ASSERT_EQ(history.size(), 24u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec)) << "plan " << GetParam();
  EXPECT_EQ(s.events_fired(), resolve_scale_plan(GetParam()).events.size());
}

std::vector<std::string> shipped_scale_plan_names() {
  std::vector<std::string> names;
  for (const ShippedScalePlan& p : shipped_scale_plans()) names.emplace_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllShippedScalePlans, ShippedScalePlanLinearizability,
                         ::testing::ValuesIn(shipped_scale_plan_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- acceptance: elasticity composed with nemesis fault injection ------------

TEST(ElasticityUnderFaults, ScaleOutDuringLeaderKillIsLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = elastic_config(2, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();

  // The nemesis kills and recovers a partition leader while the scaler is
  // admitting a fresh partition and rebalancing onto it.
  Nemesis nem{d, resolve_plan("leader-kill-recover")};
  nem.arm();
  Scaler s{d, resolve_scale_plan("scale-out")};
  s.arm();

  auto history =
      record_history(d, /*ops_per_client=*/8, /*seed=*/47, kVars, /*think=*/msec(250));
  EXPECT_TRUE(lincheck::is_linearizable(history, spec));
  EXPECT_GT(d.metrics().counter("faults.events_injected"), 0u);
  EXPECT_EQ(d.metrics().counter("elastic.partitions_added"), 1u);
}

TEST(ElasticityUnderFaults, ScaleInDuringDropBurstIsLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = elastic_config(2, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();

  Nemesis nem{d, resolve_plan("drop-burst")};
  nem.arm();
  Scaler s{d, resolve_scale_plan("scale-in")};
  s.arm();

  auto history =
      record_history(d, /*ops_per_client=*/8, /*seed=*/53, kVars, /*think=*/msec(250));
  EXPECT_TRUE(lincheck::is_linearizable(history, spec));
  run_until_quiesced(d, s);
  const auto violations = d.audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

// ---- acceptance: byte-identical run records under every shipped plan ---------

std::string scale_record_json(const std::string& plan, std::uint64_t seed) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.replicas_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(100);
  cfg.measure = msec(900);
  cfg.seed = seed;
  cfg.scale_plan = plan;
  const harness::RunResult r = harness::run_chirper(cfg);
  std::ostringstream os;
  stats::write_run_records(os, "elasticity_test", {harness::make_run_record(cfg, r)});
  return os.str();
}

class ShippedScalePlanDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ShippedScalePlanDeterminism, SameSeedSameRunRecordBytes) {
  const std::string first = scale_record_json(GetParam(), 77);
  const std::string second = scale_record_json(GetParam(), 77);
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second) << "plan " << GetParam();
  // The v7 elasticity section is present and the run recorded plan events.
  EXPECT_NE(first.find("\"elasticity\""), std::string::npos);
  EXPECT_NE(first.find("\"plan_events\""), std::string::npos);
  EXPECT_NE(first.find("\"scale_plan\": \"" + GetParam() + "\""), std::string::npos);
  // Plans that retire a partition must surface the drain-latency histogram.
  if (GetParam() != "scale-out") {
    EXPECT_NE(first.find("\"drain_time_us\""), std::string::npos) << "plan " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllShippedScalePlans, ShippedScalePlanDeterminism,
                         ::testing::ValuesIn(shipped_scale_plan_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ElasticityRunRecord, NoScalePlanMeansNoElasticFootprint) {
  // A run without a scale plan must leave zero elastic trace in the record:
  // no `elasticity` section, no `elastic.*` counter, no `scale_plan` meta.
  // This is the byte-identity guard against pre-elasticity output (modulo the
  // schema token): the feature is pay-for-what-you-use.
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 2;
  cfg.graph = {.n = 200, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(50);
  cfg.measure = msec(200);
  const harness::RunResult r = harness::run_chirper(cfg);
  std::ostringstream os;
  stats::write_run_records(os, "elasticity_test", {harness::make_run_record(cfg, r)});
  EXPECT_EQ(os.str().find("\"elasticity\""), std::string::npos);
  EXPECT_EQ(os.str().find("elastic."), std::string::npos);
  EXPECT_EQ(os.str().find("\"scale_plan\""), std::string::npos);
}

}  // namespace
}  // namespace dssmr::fault
