#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "chirper/chirper.h"
#include "workload/chirper_workload.h"
#include "workload/holme_kim.h"
#include "workload/zipf.h"

namespace dssmr::workload {
namespace {

TEST(HolmeKim, EdgeCountMatchesModel) {
  Rng rng{1};
  const HolmeKimConfig cfg{.n = 1000, .m = 3, .p_triad = 0.8};
  auto edges = holme_kim(cfg, rng);
  // ~m edges per vertex beyond the seed; duplicates can push it slightly under.
  EXPECT_GT(edges.size(), 0.9 * 3 * 1000);
  EXPECT_LE(edges.size(), 3000u);
}

TEST(HolmeKim, NoSelfLoopsOrDuplicates) {
  Rng rng{2};
  auto edges = holme_kim({.n = 500, .m = 2, .p_triad = 0.5}, rng);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (auto [u, v] : edges) {
    EXPECT_NE(u, v);
    auto key = std::minmax(u, v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(HolmeKim, PowerLawishDegreeDistribution) {
  Rng rng{3};
  partition::Csr g = holme_kim_csr({.n = 5000, .m = 3, .p_triad = 0.8}, rng);
  std::uint64_t max_deg = 0;
  for (std::size_t u = 0; u < g.vertex_count(); ++u) {
    max_deg = std::max<std::uint64_t>(max_deg, g.xadj[u + 1] - g.xadj[u]);
  }
  const double avg = 2.0 * static_cast<double>(g.edge_count()) /
                     static_cast<double>(g.vertex_count());
  // Heavy tail: hubs far above the average degree.
  EXPECT_GT(static_cast<double>(max_deg), 10 * avg);
}

TEST(HolmeKim, TriadFormationRaisesClustering) {
  Rng rng1{4}, rng2{4};
  auto high = holme_kim_csr({.n = 3000, .m = 3, .p_triad = 0.95}, rng1);
  auto low = holme_kim_csr({.n = 3000, .m = 3, .p_triad = 0.0}, rng2);
  Rng s1{5}, s2{5};
  const double c_high = clustering_coefficient(high, 500, s1);
  const double c_low = clustering_coefficient(low, 500, s2);
  EXPECT_GT(c_high, 2 * c_low);
  EXPECT_GT(c_high, 0.3);  // the paper targets 0.6-1.0; sampled estimate is lower-bounded here
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng{6};
  Zipf z{10, 0.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[z.sample(rng)]++;
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng{7};
  Zipf z{1000, 0.99};
  std::size_t low = 0, total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    if (z.sample(rng) < 10) ++low;
  }
  // Top-10 of 1000 gets far more than its uniform 1% share.
  EXPECT_GT(low, total / 10);
}

TEST(Zipf, AliasMatchesCdfDistribution) {
  // sample() (alias method) and sample_cdf() (reference inversion) must draw
  // from the same distribution. Compare per-rank frequencies over a large
  // sample; a table-construction bug would skew individual ranks well past
  // this tolerance.
  const std::size_t n = 50;
  Zipf z{n, 0.99};
  Rng rng_alias{21}, rng_cdf{21};
  const int draws = 200000;
  std::vector<int> alias_counts(n, 0), cdf_counts(n, 0);
  for (int i = 0; i < draws; ++i) {
    alias_counts[z.sample(rng_alias)]++;
    cdf_counts[z.sample_cdf(rng_cdf)]++;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double pa = alias_counts[k] / static_cast<double>(draws);
    const double pc = cdf_counts[k] / static_cast<double>(draws);
    EXPECT_NEAR(pa, pc, 0.01) << "rank " << k;
  }
  // The head of the distribution must dominate in both samplers.
  EXPECT_GT(alias_counts[0], alias_counts[n - 1]);
  EXPECT_GT(cdf_counts[0], cdf_counts[n - 1]);
}

TEST(Zipf, AliasConsumesOneUniformPerDraw) {
  // Both samplers consume exactly one uniform() per call, so swapping one for
  // the other leaves every later draw of a shared Rng stream unchanged.
  Zipf z{100, 0.8};
  Rng a{33}, b{33};
  (void)z.sample(a);
  (void)z.sample_cdf(b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SocialGraph, AddRemoveEdges) {
  SocialGraph g{4};
  g.add_edge(VarId{0}, VarId{1});
  EXPECT_TRUE(g.connected(VarId{0}, VarId{1}));
  EXPECT_TRUE(g.connected(VarId{1}, VarId{0}));
  EXPECT_EQ(g.edge_count(), 1u);
  g.add_edge(VarId{0}, VarId{1});  // duplicate ignored
  EXPECT_EQ(g.edge_count(), 1u);
  g.remove_edge(VarId{0}, VarId{1});
  EXPECT_FALSE(g.connected(VarId{0}, VarId{1}));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(SocialGraph, CsrRoundTrip) {
  SocialGraph g{5};
  g.add_edge(VarId{0}, VarId{1});
  g.add_edge(VarId{1}, VarId{2});
  auto csr = g.to_csr();
  EXPECT_EQ(csr.vertex_count(), 5u);
  EXPECT_EQ(csr.edge_count(), 2u);
}

TEST(ChirperWorkload, RespectsMix) {
  Rng seed_rng{8};
  SocialGraph g = SocialGraph::generate({.n = 500, .m = 2, .p_triad = 0.5}, seed_rng);
  ChirperWorkloadConfig cfg;
  cfg.mix = {0.5, 0.5, 0.0, 0.0};
  ChirperWorkload wl{g, cfg, 9};
  int timeline = 0, post = 0;
  for (int i = 0; i < 2000; ++i) {
    auto cmd = wl.next();
    if (cmd.op == chirper::kGetTimeline) ++timeline;
    if (cmd.op == chirper::kPost) ++post;
  }
  EXPECT_NEAR(timeline, 1000, 120);
  EXPECT_NEAR(post, 1000, 120);
}

TEST(ChirperWorkload, PostWriteSetIsPosterPlusFollowers) {
  Rng seed_rng{10};
  SocialGraph g = SocialGraph::generate({.n = 200, .m = 2, .p_triad = 0.5}, seed_rng);
  ChirperWorkloadConfig cfg;
  cfg.mix = mixes::kPostOnly;
  ChirperWorkload wl{g, cfg, 11};
  auto cmd = wl.next();
  ASSERT_EQ(cmd.op, static_cast<std::uint32_t>(chirper::kPost));
  const VarId poster = cmd.write_set.at(0);
  EXPECT_EQ(cmd.write_set.size(), g.neighbors(poster).size() + 1);
}

TEST(ChirperWorkload, FollowUpdatesGroundTruth) {
  SocialGraph g{50};
  ChirperWorkloadConfig cfg;
  cfg.mix = {0.0, 0.0, 1.0, 0.0};
  cfg.follow_fof = 0.0;
  ChirperWorkload wl{g, cfg, 12};
  const std::size_t before = g.edge_count();
  auto cmd = wl.next();
  if (cmd.op == chirper::kFollow) {
    EXPECT_EQ(g.edge_count(), before + 1);
    EXPECT_TRUE(g.connected(cmd.write_set[0], cmd.write_set[1]));
    EXPECT_FALSE(cmd.hint_edges.empty());
  }
}

TEST(ChirperWorkload, UnfollowShrinksGraph) {
  Rng seed_rng{13};
  SocialGraph g = SocialGraph::generate({.n = 100, .m = 2, .p_triad = 0.5}, seed_rng);
  ChirperWorkloadConfig cfg;
  cfg.mix = {0.0, 0.0, 0.0, 1.0};
  ChirperWorkload wl{g, cfg, 14};
  const std::size_t before = g.edge_count();
  auto cmd = wl.next();
  if (cmd.op == chirper::kUnfollow) EXPECT_EQ(g.edge_count(), before - 1);
}

TEST(ChirperWorkload, HintPostsAttachEdges) {
  Rng seed_rng{15};
  SocialGraph g = SocialGraph::generate({.n = 100, .m = 2, .p_triad = 0.5}, seed_rng);
  ChirperWorkloadConfig cfg;
  cfg.mix = mixes::kPostOnly;
  cfg.hint_posts = true;
  ChirperWorkload wl{g, cfg, 16};
  auto cmd = wl.next();
  EXPECT_EQ(cmd.hint_edges.size(), cmd.write_set.size() - 1);
}

}  // namespace
}  // namespace dssmr::workload
