#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "multicast/atomic.h"
#include "multicast/messages.h"
#include "testing/cluster.h"

namespace dssmr::multicast {
namespace {

using testing::Fabric;
using testing::IntMsg;

std::vector<std::uint64_t> delivered_ids(const testing::RecordingGroupNode& n) {
  std::vector<std::uint64_t> ids;
  ids.reserve(n.amdelivered.size());
  for (const auto& m : n.amdelivered) ids.push_back(m.id.value);
  return ids;
}

TEST(Amcast, SingleGroupDeliversToAllReplicas) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(7));
  f.engine.run_for(msec(100));
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(f.node(0, r).amdelivered.size(), 1u);
    EXPECT_EQ(net::msg_as<IntMsg>(f.node(0, r).amdelivered[0].payload).value, 7);
  }
}

TEST(Amcast, MultiGroupDeliversAtEveryDestination) {
  Fabric f{3, 3, 1};
  f.engine.run_for(msec(50));
  f.clients[0]->amcast({GroupId{0}, GroupId{2}}, net::make_msg<IntMsg>(9));
  f.engine.run_for(msec(300));
  for (std::size_t g : {0u, 2u}) {
    for (std::size_t r = 0; r < 3; ++r) {
      ASSERT_EQ(f.node(g, r).amdelivered.size(), 1u) << "group " << g << " replica " << r;
    }
  }
  for (std::size_t r = 0; r < 3; ++r) EXPECT_TRUE(f.node(1, r).amdelivered.empty());
}

TEST(Amcast, RetriedSubmissionDeliversOnce) {
  Fabric f{2, 3, 1};
  f.engine.run_for(msec(50));
  const MsgId id = f.clients[0]->fresh_id();
  auto payload = net::make_msg<IntMsg>(4);
  f.clients[0]->amcast_with_id(id, {GroupId{0}, GroupId{1}}, payload);
  f.engine.schedule(msec(20), [&] {
    f.clients[0]->amcast_with_id(id, {GroupId{0}, GroupId{1}}, payload);
  });
  f.engine.run_for(msec(300));
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(f.node(g, r).amdelivered.size(), 1u);
    }
  }
}

TEST(Amcast, UniformAgreementWithinGroups) {
  Fabric f{3, 3, 4};
  f.engine.run_for(msec(50));
  Rng rng{21};
  for (int i = 0; i < 120; ++i) {
    f.engine.schedule(usec(1 + i * 137), [&f, &rng, i] {
      auto& cl = *f.clients[static_cast<std::size_t>(i) % f.clients.size()];
      std::vector<GroupId> dests;
      for (std::uint32_t g = 0; g < 3; ++g) {
        if (rng.chance(0.5)) dests.push_back(GroupId{g});
      }
      if (dests.empty()) dests.push_back(GroupId{rng.next() % 3u});
      cl.amcast(dests, net::make_msg<IntMsg>(i));
    });
  }
  f.engine.run_for(sec(2));
  for (std::size_t g = 0; g < 3; ++g) {
    auto ref = delivered_ids(f.node(g, 0));
    EXPECT_FALSE(ref.empty());
    for (std::size_t r = 1; r < 3; ++r) {
      EXPECT_EQ(delivered_ids(f.node(g, r)), ref) << "group " << g << " replica " << r;
    }
  }
}

TEST(Amcast, IntegrityNoDuplicatesNoInvention) {
  Fabric f{2, 3, 2};
  f.engine.run_for(msec(50));
  std::set<std::uint64_t> sent;
  for (int i = 0; i < 60; ++i) {
    f.engine.schedule(usec(i * 211), [&, i] {
      auto& cl = *f.clients[static_cast<std::size_t>(i % 2)];
      const MsgId id =
          cl.amcast({GroupId{static_cast<std::uint32_t>(i % 2)}}, net::make_msg<IntMsg>(i));
      sent.insert(id.value);
    });
  }
  f.engine.run_for(sec(1));
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t r = 0; r < 3; ++r) {
      auto ids = delivered_ids(f.node(g, r));
      std::set<std::uint64_t> unique(ids.begin(), ids.end());
      EXPECT_EQ(unique.size(), ids.size()) << "duplicate delivery";
      for (auto id : ids) EXPECT_TRUE(sent.contains(id)) << "invented message";
    }
  }
}

// Pairwise (prefix-order / acyclicity) check: any two messages delivered by
// two groups in common must be delivered in the same relative order.
TEST(Amcast, PrefixOrderAcrossGroups) {
  Fabric f{3, 3, 5};
  f.engine.run_for(msec(50));
  Rng rng{77};
  for (int i = 0; i < 200; ++i) {
    f.engine.schedule(usec(1 + i * 97), [&f, &rng, i] {
      auto& cl = *f.clients[static_cast<std::size_t>(i) % f.clients.size()];
      std::vector<GroupId> dests;
      for (std::uint32_t g = 0; g < 3; ++g) {
        if (rng.chance(0.6)) dests.push_back(GroupId{g});
      }
      if (dests.empty()) dests.push_back(GroupId{0});
      cl.amcast(dests, net::make_msg<IntMsg>(i));
    });
  }
  f.engine.run_for(sec(3));

  // Build per-group delivery position maps from replica 0 of each group.
  std::vector<std::map<std::uint64_t, std::size_t>> pos(3);
  for (std::size_t g = 0; g < 3; ++g) {
    auto ids = delivered_ids(f.node(g, 0));
    for (std::size_t i = 0; i < ids.size(); ++i) pos[g][ids[i]] = i;
  }
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t h = g + 1; h < 3; ++h) {
      std::vector<std::uint64_t> common;
      for (const auto& [id, p] : pos[g]) {
        (void)p;
        if (pos[h].contains(id)) common.push_back(id);
      }
      for (std::size_t i = 0; i < common.size(); ++i) {
        for (std::size_t j = i + 1; j < common.size(); ++j) {
          const auto a = common[i], b = common[j];
          const bool order_g = pos[g][a] < pos[g][b];
          const bool order_h = pos[h][a] < pos[h][b];
          EXPECT_EQ(order_g, order_h) << "groups " << g << "," << h
                                      << " disagree on relative order";
        }
      }
    }
  }
}

TEST(Amcast, DeliveryUnderMessageLoss) {
  net::NetworkConfig nc;
  nc.drop_probability = 0.05;
  Fabric f{2, 3, 2, nc};
  f.engine.run_for(msec(300));
  for (int i = 0; i < 30; ++i) {
    f.engine.schedule(msec(i * 3), [&, i] {
      f.clients[static_cast<std::size_t>(i % 2)]->amcast({GroupId{0}, GroupId{1}},
                                                         net::make_msg<IntMsg>(i));
    });
  }
  f.engine.run_for(sec(10));
  // With retry + pull recovery, both groups should converge on the same set.
  auto g0 = delivered_ids(f.node(0, 0));
  auto g1 = delivered_ids(f.node(1, 0));
  std::set<std::uint64_t> s0(g0.begin(), g0.end()), s1(g1.begin(), g1.end());
  EXPECT_EQ(s0, s1);
  EXPECT_GT(s0.size(), 20u);  // most submissions survive 5% loss with client-less retries
}

TEST(Amcast, ServerOriginatedMulticast) {
  Fabric f{2, 3, 0};
  f.engine.run_for(msec(50));
  // The leader of group 0 multicasts to both groups (as the oracle does).
  f.engine.schedule(msec(1), [&] {
    for (std::size_t r = 0; r < 3; ++r) {
      if (f.node(0, r).is_leader()) {
        f.node(0, r).amcast({GroupId{0}, GroupId{1}}, net::make_msg<IntMsg>(5));
      }
    }
  });
  f.engine.run_for(msec(300));
  EXPECT_EQ(f.node(0, 0).amdelivered.size(), 1u);
  EXPECT_EQ(f.node(1, 0).amdelivered.size(), 1u);
}

TEST(Rmcast, DeliversToAllMembersOfDestGroups) {
  Fabric f{3, 3, 0};
  f.engine.run_for(msec(50));
  f.engine.schedule(msec(1), [&] {
    f.node(0, 0).rmcast({GroupId{1}, GroupId{2}}, net::make_msg<IntMsg>(3));
  });
  f.engine.run_for(msec(100));
  for (std::size_t g : {1u, 2u}) {
    for (std::size_t r = 0; r < 3; ++r) {
      ASSERT_EQ(f.node(g, r).rmdelivered.size(), 1u);
      EXPECT_EQ(net::msg_as<IntMsg>(f.node(g, r).rmdelivered[0]).value, 3);
    }
  }
  for (std::size_t r = 0; r < 3; ++r) EXPECT_TRUE(f.node(0, r).rmdelivered.empty());
}

TEST(Rmcast, SenderInDestinationSelfDelivers) {
  Fabric f{2, 3, 0};
  f.engine.run_for(msec(50));
  f.engine.schedule(msec(1), [&] {
    f.node(0, 0).rmcast({GroupId{0}}, net::make_msg<IntMsg>(8));
  });
  f.engine.run_for(msec(100));
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(f.node(0, r).rmdelivered.size(), 1u);
}

TEST(Rmcast, RelaySpreadsPartialFlood) {
  // Hand-deliver an RmMsg to a single member; the relay must reach the rest.
  Fabric f{1, 3, 0};
  f.engine.run_for(msec(50));
  auto rm = std::make_shared<const RmMsg>(MsgId{0xdead}, f.node(0, 0).pid(),
                                          std::vector<GroupId>{GroupId{0}},
                                          net::make_msg<IntMsg>(1), /*relayed=*/false);
  f.engine.schedule(msec(1), [&] {
    f.network.send(f.node(0, 0).pid(), f.node(0, 1).pid(), rm);
  });
  f.engine.run_for(msec(100));
  EXPECT_EQ(f.node(0, 1).rmdelivered.size(), 1u);
  EXPECT_EQ(f.node(0, 2).rmdelivered.size(), 1u);  // reached only via relay
}

TEST(Rmcast, DuplicateEnvelopeDeliversOnce) {
  Fabric f{1, 3, 0};
  f.engine.run_for(msec(50));
  auto rm = std::make_shared<const RmMsg>(MsgId{0xbeef}, f.node(0, 0).pid(),
                                          std::vector<GroupId>{GroupId{0}},
                                          net::make_msg<IntMsg>(2), /*relayed=*/true);
  f.engine.schedule(msec(1), [&] {
    f.network.send(f.node(0, 0).pid(), f.node(0, 1).pid(), rm);
    f.network.send(f.node(0, 0).pid(), f.node(0, 1).pid(), rm);
  });
  f.engine.run_for(msec(100));
  EXPECT_EQ(f.node(0, 1).rmdelivered.size(), 1u);
}

TEST(Amcast, GroupLeaderCrashDoesNotLoseMessages) {
  Fabric f{2, 3, 1};
  f.engine.run_for(msec(50));
  // Find group 0's leader and crash it right after submitting a 2-group message.
  f.clients[0]->amcast({GroupId{0}, GroupId{1}}, net::make_msg<IntMsg>(1));
  f.engine.schedule(msec(2), [&] {
    for (std::size_t r = 0; r < 3; ++r) {
      if (f.node(0, r).is_leader()) {
        f.network.crash(f.node(0, r).pid());
        f.node(0, r).halt_node();
      }
    }
  });
  f.engine.run_for(sec(5));
  // Surviving replicas of group 0 and all of group 1 still deliver it.
  std::size_t g0_deliveries = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    if (!f.network.crashed(f.node(0, r).pid())) {
      g0_deliveries += f.node(0, r).amdelivered.size();
    }
  }
  EXPECT_GE(g0_deliveries, 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(f.node(1, r).amdelivered.size(), 1u);
  }
}

}  // namespace
}  // namespace dssmr::multicast
