// Partition-server behaviour under tricky interleavings: head-of-line
// blocking, S-SMR variable exchange details, move edge cases, exactly-once
// replies.
#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/dssmr_fixture.h"

namespace dssmr::core {
namespace {

using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

std::unique_ptr<Deployment> kv_deployment(std::size_t parts, Strategy strategy,
                                          std::size_t vars = 8, std::size_t clients = 4) {
  auto cfg = small_config(parts, strategy, clients);
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  for (std::size_t i = 0; i < vars; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % parts),
                   kv::KvValue{static_cast<std::int64_t>(i), ""});
  }
  d->start();
  d->settle();
  return d;
}

TEST(ServerExec, MultiPartitionCommandBlocksLaterCommands) {
  // Under S-SMR, a cross-partition command delivered first must complete
  // before a later single-partition command on the same partition executes.
  auto d = kv_deployment(2, Strategy::kStaticSsmr);
  std::vector<int> completion_order;
  d->client(0).issue(kv_sum({VarId{0}, VarId{1}}, VarId{0}),
                     [&](ReplyCode c, const net::MessagePtr&) {
                       ASSERT_EQ(c, ReplyCode::kOk);
                       completion_order.push_back(1);
                     });
  // Give the first command a head start into the log, then a local read.
  d->engine().run_for(msec(1));
  d->client(1).issue(kv_get(VarId{2}), [&](ReplyCode c, const net::MessagePtr&) {
    ASSERT_EQ(c, ReplyCode::kOk);
    completion_order.push_back(2);
  });
  d->engine().run_for(sec(2));
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 1);
  EXPECT_EQ(completion_order[1], 2);
}

TEST(ServerExec, CrossPartitionReadGetsRemoteValue) {
  auto d = kv_deployment(4, Strategy::kStaticSsmr);
  // Sum vars on partitions 1,2,3 into var on partition 0: partition 0 needs
  // three remote values shipped in.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{1}, VarId{2}, VarId{3}}, VarId{0}), &reply),
            ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 1 + 2 + 3);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 6);
}

TEST(ServerExec, CrossPartitionWriteAppliesAtOwnerOnly) {
  auto d = kv_deployment(2, Strategy::kStaticSsmr);
  // kSet writes both vars; each partition applies only its own.
  EXPECT_EQ(run_op(*d, 0, kv_set({VarId{0}, VarId{1}}, "w")), ReplyCode::kOk);
  EXPECT_TRUE(d->server(0, 0).owns(VarId{0}));
  EXPECT_FALSE(d->server(0, 0).owns(VarId{1}));
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_data(reply), "w");
}

TEST(ServerMove, MoveToPartitionAlreadyHoldingSomeVars) {
  auto d = kv_deployment(2, Strategy::kDssmr);
  // {v0,v2} @P0, {v1} @P1 -> most-held dest is P0; P0 is both source-holder
  // and destination.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{0}), &reply),
            ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 0 + 2 + 1);
  EXPECT_TRUE(d->server(0, 0).owns(VarId{1}));
  EXPECT_FALSE(d->server(1, 0).owns(VarId{1}));
  // Store value travelled with the move.
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 1);
}

TEST(ServerMove, ConcurrentOverlappingCollocationsStayConsistent) {
  auto d = kv_deployment(2, Strategy::kDssmr, 8, 4);
  // Two clients concurrently collocate overlapping variable sets.
  int done = 0;
  d->client(0).issue(kv_sum({VarId{0}, VarId{1}}, VarId{0}),
                     [&](ReplyCode c, const net::MessagePtr&) {
                       EXPECT_EQ(c, ReplyCode::kOk);
                       ++done;
                     });
  d->client(1).issue(kv_sum({VarId{1}, VarId{2}}, VarId{2}),
                     [&](ReplyCode c, const net::MessagePtr&) {
                       EXPECT_EQ(c, ReplyCode::kOk);
                       ++done;
                     });
  const Time deadline = d->engine().now() + sec(20);
  while (done < 2 && d->engine().now() < deadline) d->engine().run_for(msec(10));
  ASSERT_EQ(done, 2);
  d->engine().run_for(sec(1));
  const auto violations = d->audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(ServerMove, MoveIsExactlyOnceUnderRetransmission) {
  // Aggressive client timeouts force duplicated move submissions; the store
  // must neither lose nor duplicate the variable.
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  cfg.client_timeout = msec(20);
  cfg.net.intra_rack_latency = msec(8);
  cfg.net.inter_rack_latency = msec(15);
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  for (std::size_t i = 0; i < 4; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % 2),
                   kv::KvValue{static_cast<std::int64_t>(i), ""});
  }
  d->start();
  d->settle();
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{1}), &reply),
            ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 3);
  d->engine().run_for(sec(1));
  const auto violations = d->audit_consistency();
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(ServerExec, ExecutedCountAndBusyTimeAdvance) {
  auto d = kv_deployment(2, Strategy::kDssmr);
  const auto before = d->server(0, 0).executed_count();
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);
  d->engine().run_for(msec(100));
  EXPECT_GT(d->server(0, 0).executed_count(), before);
  EXPECT_GT(d->server(0, 0).busy_time(), 0);
}

TEST(ServerExec, StoreReflectsPreloadedBytes) {
  auto d = kv_deployment(2, Strategy::kDssmr);
  EXPECT_EQ(d->server(0, 0).owned_count(), 4u);
  EXPECT_GT(d->server(0, 0).store().total_bytes(), 0u);
}

TEST(ServerFallback, FallbackExecutesDespiteScatteredVars) {
  // With retries disabled, a stale-cache access goes straight to the S-SMR
  // fall-back across all partitions and still returns the right value.
  auto cfg = small_config(2, Strategy::kDssmr, 4);
  cfg.client_max_retries = -1;
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  for (std::size_t i = 0; i < 4; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % 2),
                   kv::KvValue{static_cast<std::int64_t>(10 * i), ""});
  }
  d->start();
  d->settle();
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1})), ReplyCode::kOk);  // cache v1@P1
  EXPECT_EQ(run_op(*d, 1, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{3})), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 10);
  EXPECT_EQ(d->metrics().counter("client.fallbacks"), 1u);
}

}  // namespace
}  // namespace dssmr::core
