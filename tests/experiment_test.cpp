// Experiment-harness smoke tests: tiny versions of the benchmark runs.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

namespace dssmr::harness {
namespace {

ChirperRunConfig tiny(core::Strategy strategy, std::size_t partitions) {
  ChirperRunConfig cfg;
  cfg.strategy = strategy;
  cfg.partitions = partitions;
  cfg.clients_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.warmup = msec(600);
  cfg.measure = sec(1);
  cfg.seed = 5;
  return cfg;
}

TEST(Experiment, PreparedWorkloadMetisBeatsHash) {
  auto cfg = tiny(core::Strategy::kDssmr, 4);
  cfg.placement = Placement::kHash;
  const double hash_cut = prepare_workload(cfg).edge_cut_fraction;
  cfg.placement = Placement::kMetis;
  const double metis_cut = prepare_workload(cfg).edge_cut_fraction;
  EXPECT_LT(metis_cut, hash_cut);
  EXPECT_GT(hash_cut, 0.5);  // hash placement cuts most edges of a social graph
}

TEST(Experiment, DssmrRunCompletesAndMeasures) {
  auto r = run_chirper(tiny(core::Strategy::kDssmr, 2));
  EXPECT_GT(r.throughput_cps, 100.0);
  EXPECT_GT(r.latency_avg_us, 0.0);
  EXPECT_GT(r.ok, 0u);
  EXPECT_GT(r.counter("moves.total"), 0u);
  EXPECT_FALSE(r.tput_series.empty());
}

TEST(Experiment, SsmrStaticRunCompletes) {
  auto cfg = tiny(core::Strategy::kStaticSsmr, 2);
  cfg.placement = Placement::kMetis;
  auto r = run_chirper(cfg);
  EXPECT_GT(r.throughput_cps, 100.0);
  EXPECT_EQ(r.counter("moves.total"), 0u);
  EXPECT_EQ(r.counter("client.consults"), 0u);
}

TEST(Experiment, DynaStarRunCompletes) {
  auto cfg = tiny(core::Strategy::kDynaStar, 2);
  cfg.workload.hint_posts = true;
  cfg.dynastar_hint_threshold = 500;
  auto r = run_chirper(cfg);
  EXPECT_GT(r.throughput_cps, 100.0);
  EXPECT_GT(r.counter("oracle.hints"), 0u);
}

TEST(Experiment, DssmrMovesSubsideOnPartitionableWorkload) {
  // Strong locality (perfectly partitionable communities): the scattered
  // neighbourhoods collocate and moves dry up.
  auto cfg = tiny(core::Strategy::kDssmr, 2);
  cfg.use_controlled_cut = true;
  cfg.controlled_edge_cut = 0.0;
  cfg.placement = Placement::kMetis;
  cfg.warmup = sec(2);
  cfg.measure = sec(2);
  cfg.trace = true;
  auto r = run_chirper(cfg);
  const auto& m = r.moves_series;
  ASSERT_GE(m.size(), 4u);
  const double early = m[0] + m[1];
  const double late = m[m.size() - 2] + m[m.size() - 1];
  EXPECT_LT(late, early * 0.5 + 10.0);

  // The event trace agrees with the counters, and under strong locality the
  // retry budget is never exhausted — the S-SMR fallback must not fire.
  const stats::Trace& t = r.metrics.trace();
  EXPECT_GT(t.count(stats::TraceEvent::kConsult), 0u);
  EXPECT_EQ(t.count(stats::TraceEvent::kConsult), r.counter("client.consults"));
  EXPECT_EQ(t.count(stats::TraceEvent::kMoveIssued), r.counter("client.moves"));
  EXPECT_EQ(t.count(stats::TraceEvent::kFallback), 0u);
}

TEST(Experiment, RunRecordSerializesToJson) {
  auto cfg = tiny(core::Strategy::kDssmr, 2);
  cfg.trace = true;
  auto r = run_chirper(cfg);
  std::vector<stats::RunRecord> runs;
  runs.push_back(make_run_record(cfg, r, "tiny"));
  std::ostringstream os;
  stats::write_run_records(os, "experiment_test", runs);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"dssmr.run_record.v7\""), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"experiment_test\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"client.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"client.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"cdf\""), std::string::npos);
  EXPECT_NE(json.find("\"client.completions\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"move_issued\""), std::string::npos);
}

TEST(Experiment, ThroughputScalesWithPartitionsOnPartitionableWorkload) {
  auto one = tiny(core::Strategy::kDssmr, 1);
  auto four = tiny(core::Strategy::kDssmr, 4);
  one.use_controlled_cut = four.use_controlled_cut = true;
  one.controlled_edge_cut = four.controlled_edge_cut = 0.0;
  one.placement = four.placement = Placement::kMetis;
  four.warmup = sec(2);
  auto r1 = run_chirper(one);
  auto r4 = run_chirper(four);
  EXPECT_GT(r4.throughput_cps, 1.5 * r1.throughput_cps)
      << "1p=" << r1.throughput_cps << " 4p=" << r4.throughput_cps;
}

}  // namespace
}  // namespace dssmr::harness
