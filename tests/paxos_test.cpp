#include "consensus/paxos.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/engine.h"
#include "testing/cluster.h"

namespace dssmr::consensus {
namespace {

using testing::IntMsg;
using testing::TestPaxosNode;

struct PaxosCluster {
  explicit PaxosCluster(std::size_t n, double drop = 0.0, std::uint64_t seed = 5)
      : network(engine, make_net(drop), seed) {
    std::vector<ProcessId> members;
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<TestPaxosNode>();
      members.push_back(network.add_process(*node, static_cast<int>(i % 2)));
      nodes.push_back(std::move(node));
    }
    PaxosConfig cfg;
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i]->init(network, GroupId{0}, members, cfg, seed + i);
      nodes[i]->core->start();
    }
  }

  static net::NetworkConfig make_net(double drop) {
    net::NetworkConfig c;
    c.drop_probability = drop;
    return c;
  }

  /// Submits through whichever node currently leads; retries until accepted.
  MsgId submit(std::int64_t value, std::uint64_t salt = 0) {
    const MsgId id{0x1000 + static_cast<std::uint64_t>(value) + (salt << 40)};
    for (auto& n : nodes) {
      if (n->core->is_leader() && n->core->submit({id, net::make_msg<IntMsg>(value)})) {
        return id;
      }
    }
    return MsgId{0};  // nobody leads yet
  }

  sim::Engine engine;
  net::Network network;
  std::vector<std::unique_ptr<TestPaxosNode>> nodes;
};

TEST(Paxos, ElectsInitialLeader) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  EXPECT_TRUE(c.nodes[0]->core->is_leader());
  EXPECT_FALSE(c.nodes[1]->core->is_leader());
  EXPECT_FALSE(c.nodes[2]->core->is_leader());
  for (auto& n : c.nodes) EXPECT_EQ(n->core->leader_hint(), c.nodes[0]->core->members()[0]);
}

TEST(Paxos, DecidesSubmittedValueEverywhere) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  c.submit(7);
  c.engine.run_for(msec(50));
  for (auto& n : c.nodes) {
    ASSERT_EQ(n->decided.size(), 1u);
    EXPECT_EQ(net::msg_as<IntMsg>(n->decided[0].payload).value, 7);
  }
}

TEST(Paxos, NonLeaderRejectsSubmit) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  EXPECT_FALSE(c.nodes[1]->core->submit({MsgId{1}, net::make_msg<IntMsg>(1)}));
}

TEST(Paxos, AllReplicasDeliverSameSequence) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  for (int i = 0; i < 50; ++i) {
    c.engine.schedule(usec(i * 100), [&, i] { c.submit(i); });
  }
  c.engine.run_for(msec(200));
  ASSERT_EQ(c.nodes[0]->decided.size(), 50u);
  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_EQ(c.nodes[r]->decided.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(c.nodes[r]->decided[i].id, c.nodes[0]->decided[i].id);
    }
  }
}

TEST(Paxos, BatchesManySubmissionsIntoFewSlots) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  for (int i = 0; i < 64; ++i) c.submit(i);  // all at the same instant
  c.engine.run_for(msec(50));
  ASSERT_EQ(c.nodes[0]->decided.size(), 64u);
  // With max_batch = 64 these should occupy very few slots.
  EXPECT_LE(c.nodes[0]->decided_slots.back(), 3u);
}

TEST(Paxos, DuplicateEntryIdsDedupAtLeader) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  const MsgId id = c.submit(42);
  c.nodes[0]->core->submit({id, net::make_msg<IntMsg>(42)});  // duplicate
  c.engine.run_for(msec(50));
  EXPECT_EQ(c.nodes[0]->decided.size(), 1u);
}

TEST(Paxos, SurvivesLeaderCrash) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  c.submit(1);
  c.engine.run_for(msec(50));

  // Crash the leader; a follower must take over.
  c.network.crash(c.nodes[0]->core->members()[0]);
  c.nodes[0]->core->halt();
  c.engine.run_for(msec(800));

  TestPaxosNode* leader = nullptr;
  for (auto& n : c.nodes) {
    if (&*n != c.nodes[0].get() && n->core->is_leader()) leader = n.get();
  }
  ASSERT_NE(leader, nullptr);

  leader->core->submit({MsgId{0x999}, net::make_msg<IntMsg>(2)});
  c.engine.run_for(msec(100));
  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_EQ(c.nodes[r]->decided.size(), 2u) << "replica " << r;
    EXPECT_EQ(net::msg_as<IntMsg>(c.nodes[r]->decided[0].payload).value, 1);
    EXPECT_EQ(net::msg_as<IntMsg>(c.nodes[r]->decided[1].payload).value, 2);
  }
}

TEST(Paxos, NewLeaderPreservesDecidedPrefix) {
  PaxosCluster c{3};
  c.engine.run_for(msec(50));
  for (int i = 0; i < 10; ++i) c.submit(i);
  c.engine.run_for(msec(50));
  auto prefix = c.nodes[1]->decided;

  c.network.crash(c.nodes[0]->core->members()[0]);
  c.nodes[0]->core->halt();
  c.engine.run_for(msec(800));

  // Submit through the new leader.
  for (auto& n : c.nodes) {
    if (n->core->is_leader()) n->core->submit({MsgId{0x777}, net::make_msg<IntMsg>(99)});
  }
  c.engine.run_for(msec(100));

  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_GE(c.nodes[r]->decided.size(), prefix.size());
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(c.nodes[r]->decided[i].id, prefix[i].id) << "replica " << r << " slot " << i;
    }
  }
}

TEST(Paxos, MakesProgressUnderMessageLoss) {
  PaxosCluster c{3, /*drop=*/0.10, /*seed=*/11};
  c.engine.run_for(msec(300));
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    c.engine.schedule(msec(i * 5), [&, i] {
      if (c.submit(i, static_cast<std::uint64_t>(i)) != MsgId{0}) ++accepted;
    });
  }
  c.engine.run_for(sec(3));
  // Everything the leader accepted must eventually decide on live replicas.
  for (auto& n : c.nodes) {
    EXPECT_EQ(static_cast<int>(n->decided.size()), accepted);
  }
  EXPECT_GT(accepted, 0);
}

TEST(Paxos, FiveReplicaClusterDecides) {
  PaxosCluster c{5};
  c.engine.run_for(msec(50));
  c.submit(123);
  c.engine.run_for(msec(100));
  for (auto& n : c.nodes) ASSERT_EQ(n->decided.size(), 1u);
}

TEST(Paxos, SingleReplicaDegenerateGroup) {
  PaxosCluster c{1};
  c.engine.run_for(msec(50));
  c.submit(5);
  c.engine.run_for(msec(50));
  ASSERT_EQ(c.nodes[0]->decided.size(), 1u);
}

}  // namespace
}  // namespace dssmr::consensus
