#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace dssmr::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(usec(30), [&] { order.push_back(3); });
  e.schedule(usec(10), [&] { order.push_back(1); });
  e.schedule(usec(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), usec(30));
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(usec(5), [&, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.schedule(usec(1), [&] {
      ++fired;
      e.schedule(usec(1), [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), usec(3));
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  Time seen = -1;
  e.schedule(usec(7), [&] { e.schedule(0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_EQ(seen, usec(7));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const TimerId id = e.schedule(usec(10), [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_executed(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(0);
  e.cancel(999);
  bool fired = false;
  e.schedule(usec(1), [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilAdvancesClockToTarget) {
  Engine e;
  int fired = 0;
  e.schedule(usec(10), [&] { ++fired; });
  e.schedule(usec(100), [&] { ++fired; });
  e.run_until(usec(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), usec(50));
  e.run_until(usec(200));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), usec(200));
}

TEST(Engine, RunForIsRelative) {
  Engine e;
  e.run_for(usec(25));
  e.run_for(usec(25));
  EXPECT_EQ(e.now(), usec(50));
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule(usec(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  // Remaining event still pending and runnable.
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepRunsExactlyOneEvent) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] { ++fired; });
  e.schedule(usec(2), [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, StepSkipsCancelledEvents) {
  Engine e;
  int fired = 0;
  const TimerId a = e.schedule(usec(1), [&] { ++fired; });
  e.schedule(usec(2), [&] { ++fired; });
  e.cancel(a);
  EXPECT_TRUE(e.step());  // skips the cancelled one, fires the second
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.step());
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const TimerId a = e.schedule(usec(1), [] {});
  e.schedule(usec(2), [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, DeterministicReplay) {
  auto run = [] {
    Engine e;
    std::vector<Time> times;
    for (int i = 0; i < 100; ++i) {
      e.schedule(usec((i * 37) % 50), [&, i] {
        if (i % 3 == 0) e.schedule(usec(i), [&] { times.push_back(e.now()); });
        times.push_back(e.now());
      });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dssmr::sim
