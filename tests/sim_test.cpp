#include "sim/engine.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace dssmr::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(usec(30), [&] { order.push_back(3); });
  e.schedule(usec(10), [&] { order.push_back(1); });
  e.schedule(usec(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), usec(30));
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(usec(5), [&, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.schedule(usec(1), [&] {
      ++fired;
      e.schedule(usec(1), [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), usec(3));
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  Time seen = -1;
  e.schedule(usec(7), [&] { e.schedule(0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_EQ(seen, usec(7));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const TimerId id = e.schedule(usec(10), [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_executed(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(0);
  e.cancel(999);
  bool fired = false;
  e.schedule(usec(1), [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilAdvancesClockToTarget) {
  Engine e;
  int fired = 0;
  e.schedule(usec(10), [&] { ++fired; });
  e.schedule(usec(100), [&] { ++fired; });
  e.run_until(usec(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), usec(50));
  e.run_until(usec(200));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), usec(200));
}

TEST(Engine, RunForIsRelative) {
  Engine e;
  e.run_for(usec(25));
  e.run_for(usec(25));
  EXPECT_EQ(e.now(), usec(50));
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule(usec(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  // Remaining event still pending and runnable.
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepRunsExactlyOneEvent) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] { ++fired; });
  e.schedule(usec(2), [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, StepSkipsCancelledEvents) {
  Engine e;
  int fired = 0;
  const TimerId a = e.schedule(usec(1), [&] { ++fired; });
  e.schedule(usec(2), [&] { ++fired; });
  e.cancel(a);
  EXPECT_TRUE(e.step());  // skips the cancelled one, fires the second
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.step());
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const TimerId a = e.schedule(usec(1), [] {});
  e.schedule(usec(2), [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, CancelAfterFireIsNoopAndKeepsPendingExact) {
  // Regression: the old lazy-cancel set let a cancel() of an already-fired
  // timer poison pending() forever. The generation-tagged ids make it a
  // no-op and keep the count exact.
  Engine e;
  int fired = 0;
  const TimerId a = e.schedule(usec(1), [&] { ++fired; });
  const TimerId b = e.schedule(usec(2), [&] { ++fired; });
  EXPECT_TRUE(e.step());  // fires a
  EXPECT_EQ(e.pending(), 1u);
  e.cancel(a);  // already fired: must not touch the count
  EXPECT_EQ(e.pending(), 1u);
  e.cancel(a);  // and must stay idempotent
  EXPECT_EQ(e.pending(), 1u);
  e.cancel(b);  // genuinely pending
  EXPECT_EQ(e.pending(), 0u);
  e.cancel(TimerId{0xdeadbeef00000001ull});  // never issued
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_executed(), 1u);
}

TEST(Engine, DoubleCancelCountsOnce) {
  Engine e;
  const TimerId a = e.schedule(usec(1), [] {});
  e.schedule(usec(2), [] {});
  e.cancel(a);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, StaleCancelOfReusedSlotIsNoop) {
  // After a timer fires (or is cancelled) its slot is recycled for new
  // timers; a stale id for the old occupant must not cancel the new one.
  Engine e;
  int fired = 0;
  const TimerId old_id = e.schedule(usec(1), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  // Reuses old_id's slot but with a fresh generation.
  const TimerId fresh = e.schedule(usec(1), [&] { ++fired; });
  EXPECT_NE(old_id, fresh);
  e.cancel(old_id);  // stale: different generation, same slot
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PendingExactUnderChurn) {
  Engine e;
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(e.schedule(usec(i + 1), [] {}));
  EXPECT_EQ(e.pending(), 100u);
  for (int i = 0; i < 100; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(e.pending(), 50u);
  // Cancelling the already-cancelled half again changes nothing.
  for (int i = 0; i < 100; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(e.pending(), 50u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.events_executed(), 50u);
}

TEST(Engine, CallbackLargerThanInlineBufferStillWorks) {
  // Callbacks above the small-buffer threshold take the heap path.
  Engine e;
  std::array<std::uint64_t, 16> big{};  // 128 bytes captured by value
  big.fill(7);
  std::uint64_t sum = 0;
  e.schedule(usec(1), [big, &sum] {
    for (auto v : big) sum += v;
  });
  e.run();
  EXPECT_EQ(sum, 7u * 16u);
}

TEST(Engine, DeterministicReplay) {
  auto run = [] {
    Engine e;
    std::vector<Time> times;
    for (int i = 0; i < 100; ++i) {
      e.schedule(usec((i * 37) % 50), [&, i] {
        if (i % 3 == 0) e.schedule(usec(i), [&] { times.push_back(e.now()); });
        times.push_back(e.now());
      });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dssmr::sim
