// Causal span tracing end-to-end: trace-tree structure across the protocol
// layers, exact phase tiling of end-to-end latency, span propagation through
// the failed-move -> retry -> fallback path, disabled-mode invariance, and
// the Chrome trace_event / run-record exports.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/deployment.h"
#include "harness/experiment.h"
#include "smr/kv.h"
#include "stats/run_record.h"
#include "stats/span.h"
#include "stats/span_export.h"
#include "testing/dssmr_fixture.h"
#include "testing/tiny_json.h"

namespace dssmr::core {
namespace {

using harness::Deployment;
using smr::ReplyCode;
using stats::Span;
using stats::SpanPhase;
using stats::SpanQuery;
using namespace dssmr::testing;

std::unique_ptr<Deployment> deployment(harness::DeploymentConfig cfg, std::size_t vars = 6) {
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  for (std::size_t i = 0; i < vars; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % cfg.partitions),
                   kv::KvValue{static_cast<std::int64_t>(i), ""});
  }
  d->start();
  d->settle();
  return d;
}

TEST(Span, SingleCommandProducesCompleteTraceTree) {
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.spans = true;
  auto d = deployment(cfg);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);

  SpanQuery q{d->metrics().spans()};
  const auto ids = q.trace_ids();
  ASSERT_EQ(ids.size(), 1u);
  const Span* root = q.root(ids[0]);
  ASSERT_NE(root, nullptr);
  EXPECT_GT(root->duration(), 0);

  // A first DS-SMR op crosses every layer: consult (client + oracle view),
  // multicast, server queue/execute, reply.
  EXPECT_GE(q.count(ids[0], SpanPhase::kConsult), 1u);
  EXPECT_GE(q.count(ids[0], SpanPhase::kOracle), 1u);
  EXPECT_GE(q.count(ids[0], SpanPhase::kAmcast), 1u);
  EXPECT_GE(q.count(ids[0], SpanPhase::kQueue), 1u);
  EXPECT_GE(q.count(ids[0], SpanPhase::kExecute), 1u);
  EXPECT_GE(q.count(ids[0], SpanPhase::kReply), 1u);

  // Every non-root span of the trace hangs off the root (layers that only
  // know the trace id record parent 0, which attaches to the root).
  const auto all = q.trace(ids[0]);
  EXPECT_EQ(q.children(ids[0], root->id).size(), all.size() - 1);

  // The client-attributed phases tile [issue, finish] exactly.
  EXPECT_EQ(q.attributed_total(ids[0]), root->duration());

  // Server/oracle/multicast views are extra perspectives on time the client
  // already attributed — never folded into the phase histograms. (Client
  // spans carry the replying group for the Chrome export, so "recorded by
  // the client" is a node check, not a group check.)
  const std::uint32_t client_node = d->client(0).pid().value;
  for (const Span* s : all) {
    if (s->node != client_node) {
      EXPECT_FALSE(s->folded) << to_string(s->phase);
    }
  }
}

TEST(Span, PhasesTileEndToEndLatencyExactly) {
  auto cfg = small_config(3, Strategy::kDssmr, 2);
  cfg.spans = true;
  auto d = deployment(cfg);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1})), ReplyCode::kOk);
  // Multi-partition command: triggers a move, so the kMove phase appears.
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}, VarId{2}}, VarId{0})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 1, kv_add(VarId{4}, 2)), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);

  const stats::SpanStore& store = d->metrics().spans();
  SpanQuery q{store};
  const auto ids = q.trace_ids();
  // Moves/consults reuse the originating command's trace id: one per command.
  ASSERT_EQ(ids.size(), 4u);
  for (std::uint64_t tid : ids) {
    const Span* root = q.root(tid);
    ASSERT_NE(root, nullptr) << "trace " << tid << " never finished";
    EXPECT_EQ(q.attributed_total(tid), root->duration()) << "trace " << tid;
  }

  // Histogram level: the per-phase totals sum to the command total (this is
  // the identity the run record's `phases` section documents).
  double phase_sum = 0;
  for (SpanPhase p : stats::kLatencyPhases) {
    const stats::Histogram& h = store.phase_histogram(p);
    phase_sum += h.mean() * static_cast<double>(h.count());
  }
  const stats::Histogram& cmd = store.phase_histogram(SpanPhase::kCommand);
  ASSERT_EQ(cmd.count(), 4u);
  EXPECT_NEAR(phase_sum, cmd.mean() * static_cast<double>(cmd.count()), 0.5);
}

// The phantom variable (known only to the oracle) dooms every prophesied
// move, so the command traverses consult -> move(fail) -> retry ... ->
// S-SMR fallback. The whole journey must land in ONE trace.
TEST(Span, FailedMoveRetryFallbackStaysInOneTrace) {
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.spans = true;
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  d->preload_var(VarId{1}, d->partition_gid(1), kv::KvValue{7, ""});
  for (std::size_t r = 0; r < cfg.oracle_replicas; ++r) {
    d->oracle(r).preload(VarId{5}, d->partition_gid(0));
  }
  d->start();
  d->settle();

  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{1}, VarId{5}}, VarId{1})), ReplyCode::kOk);
  EXPECT_GE(d->metrics().counter("client.retries"), 1u);
  EXPECT_EQ(d->metrics().counter("client.fallbacks"), 1u);

  SpanQuery q{d->metrics().spans()};
  const auto ids = q.trace_ids();
  ASSERT_EQ(ids.size(), 1u) << "retries/moves must reuse the command's trace id";
  const std::uint64_t tid = ids[0];

  // Retried command: the original consult plus at least one re-consult.
  EXPECT_GE(q.count(tid, SpanPhase::kConsult), 2u);
  // Exactly one fallback window, and it is a view (not part of the tiling).
  const auto fallbacks = q.select(tid, SpanPhase::kFallback);
  ASSERT_EQ(fallbacks.size(), 1u);
  EXPECT_FALSE(fallbacks[0]->folded);
  // At least one move span closed unsuccessfully (arg != 0).
  const auto moves = q.select(tid, SpanPhase::kMove);
  ASSERT_GE(moves.size(), 1u);
  bool any_failed = false;
  for (const Span* m : moves) any_failed = any_failed || m->arg != 0;
  EXPECT_TRUE(any_failed);

  // Even through retries and the fallback, the tiling stays exact.
  const Span* root = q.root(tid);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(q.attributed_total(tid), root->duration());
  // The fallback window ends when the command does.
  EXPECT_EQ(fallbacks[0]->end, root->end);
}

// Span tracing must not perturb the simulation: the trace id rides in a
// byte-budget that is charged whether tracing is on or off, and record()
// bails on one branch when disabled. Same seed + same ops => identical
// virtual-clock outcome either way.
TEST(Span, DisabledTracingIsVirtualTimeInvariantAndRecordsNothing) {
  struct Outcome {
    Time end_time = 0;
    std::map<std::string, std::uint64_t> counters;
    std::size_t spans_recorded = 0;
  };
  const auto run = [](bool spans) {
    auto cfg = small_config(2, Strategy::kDssmr, 2);
    cfg.spans = spans;
    auto d = deployment(cfg);
    EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{0})), ReplyCode::kOk);
    EXPECT_EQ(run_op(*d, 1, kv_add(VarId{2}, 5)), ReplyCode::kOk);
    EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);
    Outcome out;
    out.end_time = d->engine().now();
    for (const auto& [name, c] : d->metrics().counters()) out.counters[name] = c.value();
    out.spans_recorded = d->metrics().spans().spans().size();
    return out;
  };

  const Outcome off = run(false);
  const Outcome on = run(true);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.counters, on.counters);
  EXPECT_EQ(off.spans_recorded, 0u);
  EXPECT_GT(on.spans_recorded, 0u);
}

TEST(Span, ChromeTraceExportIsValidJsonWithCompleteTree) {
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.spans = true;
  auto d = deployment(cfg);
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{0})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);

  std::ostringstream os;
  stats::write_chrome_trace(os, d->metrics().spans(), "case-a");
  const JsonValue doc = JsonParser::parse(os.str());

  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Metadata must name the synthetic processes (clients + partitions).
  std::vector<std::string> process_names;
  std::map<std::int64_t, std::vector<std::string>> complete_by_trace;
  std::int64_t root_trace = -1;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.at("ph").str;
    if (ph == "M" && e.at("name").str == "process_name") {
      process_names.push_back(e.at("args").at("name").str);
      continue;
    }
    if (ph != "X") continue;
    // Complete events carry the full span schema.
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_GE(e.at("dur").as_int(), 0);
    const JsonValue& args = e.at("args");
    EXPECT_EQ(args.at("run").str, "case-a");
    const std::int64_t tid = args.at("trace_id").as_int();
    complete_by_trace[tid].push_back(e.at("name").str);
    if (e.at("name").str == "command") root_trace = tid;
  }

  auto has_name = [&](const std::string& want) {
    for (const std::string& n : process_names) {
      if (n.find(want) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_name("clients"));
  EXPECT_TRUE(has_name("partition 0"));
  EXPECT_TRUE(has_name("oracle"));

  // At least one complete span tree: a root plus children in the same trace.
  ASSERT_NE(root_trace, -1) << "no command root span exported";
  EXPECT_GE(complete_by_trace[root_trace].size(), 3u);
}

// The acceptance scenario: a multi-partition Chirper run with tracing
// produces a v2 run record whose `phases` histograms tile the end-to-end
// latency, and a Chrome trace that passes the schema check above.
TEST(Span, ChirperRunRecordCarriesPhasesAndChromeTrace) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 2;
  cfg.graph.n = 200;
  cfg.warmup = msec(300);
  cfg.measure = msec(700);
  cfg.spans = true;
  harness::RunResult r = harness::run_chirper(cfg);
  ASSERT_GT(r.ok, 0u);

  // Per-command exact tiling over the full store.
  SpanQuery q{r.metrics.spans()};
  std::size_t finished = 0;
  for (std::uint64_t tid : q.trace_ids()) {
    const Span* root = q.root(tid);
    if (root == nullptr) continue;  // in flight when the run ended
    ++finished;
    EXPECT_EQ(q.attributed_total(tid), root->duration()) << "trace " << tid;
  }
  EXPECT_GT(finished, 0u);

  // Run record: schema v2, a `phases` section with the tiling phases.
  std::ostringstream rec_os;
  stats::write_run_records(rec_os, "span_test", {harness::make_run_record(cfg, r, "chirper")});
  const JsonValue doc = JsonParser::parse(rec_os.str());
  EXPECT_EQ(doc.at("schema").str, "dssmr.run_record.v7");
  const JsonValue& run = doc.at("runs").array.at(0);
  ASSERT_TRUE(run.has("phases"));
  const JsonValue& phases = run.at("phases");
  ASSERT_TRUE(phases.has("command"));
  EXPECT_TRUE(phases.has("amcast"));
  EXPECT_TRUE(phases.has("execute"));
  EXPECT_TRUE(phases.has("reply"));
  // Totals from the serialized histograms tile the command total.
  double phase_sum = 0;
  for (SpanPhase p : stats::kLatencyPhases) {
    const std::string key{to_string(p)};
    if (!phases.has(key)) continue;
    const JsonValue& h = phases.at(key);
    phase_sum += h.at("mean").number * h.at("count").number;
  }
  const JsonValue& cmd = phases.at("command");
  const double cmd_sum = cmd.at("mean").number * cmd.at("count").number;
  EXPECT_NEAR(phase_sum, cmd_sum, 0.01 * cmd_sum + 1.0);
  EXPECT_TRUE(run.at("spans").at("enabled").boolean);
  EXPECT_GT(run.at("spans").at("recorded").number, 0.0);

  // Chrome export of the same store parses.
  std::ostringstream chrome_os;
  stats::write_chrome_trace(chrome_os, r.metrics.spans(), "chirper");
  const JsonValue chrome = JsonParser::parse(chrome_os.str());
  EXPECT_GT(chrome.at("traceEvents").array.size(), 0u);
}

}  // namespace
}  // namespace dssmr::core
