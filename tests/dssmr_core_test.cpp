// End-to-end protocol tests of the DS-SMR core over the full stack
// (clients -> oracle -> atomic multicast -> partitions).
#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/dssmr_fixture.h"

namespace dssmr {
namespace {

using core::Strategy;
using harness::Deployment;
using harness::DeploymentConfig;
using smr::ReplyCode;
using namespace dssmr::testing;

std::unique_ptr<Deployment> make_kv_deployment(
    DeploymentConfig cfg, std::size_t vars = 8,
    core::DssmrPolicy::DestRule rule = core::DssmrPolicy::DestRule::kMostHeld) {
  auto d = std::make_unique<Deployment>(cfg, kv::kv_app_factory(), [rule] {
    return std::make_unique<core::DssmrPolicy>(rule);
  });
  // v0..v{n-1} spread round-robin across partitions, value num = id * 10.
  for (std::size_t i = 0; i < vars; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % cfg.partitions),
                   kv::KvValue{static_cast<std::int64_t>(i * 10), "init"});
  }
  d->start();
  d->settle();
  return d;
}

TEST(DssmrCore, SinglePartitionRead) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 20);
  EXPECT_EQ(kv_data(reply), "init");
}

TEST(DssmrCore, SinglePartitionWriteVisibleToLaterReads) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_set({VarId{3}}, "hello")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{3}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_data(reply), "hello");
}

TEST(DssmrCore, CrossPartitionCommandMovesAndExecutes) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  // v0 (partition 0) + v1 (partition 1): DS-SMR must collocate, then execute.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 0 + 10);
  EXPECT_GE(d->metrics().counter("client.moves"), 1u);
  // Both variables now live on one partition, according to the oracle...
  const GroupId p0 = d->oracle(0).mapping().locate(VarId{0});
  const GroupId p1 = d->oracle(0).mapping().locate(VarId{1});
  EXPECT_EQ(p0, p1);
  // ...and according to the partitions themselves.
  int owners = 0;
  for (std::size_t p = 0; p < 2; ++p) {
    if (d->server(p, 0).owns(VarId{0}) && d->server(p, 0).owns(VarId{1})) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

TEST(DssmrCore, SubsequentAccessIsSinglePartition) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{1})), ReplyCode::kOk);
  const auto moves_before = d->metrics().counter("client.moves");
  // Same variable pair again: no further moves needed.
  EXPECT_EQ(run_op(*d, 1, kv_sum({VarId{0}, VarId{1}}, VarId{0})), ReplyCode::kOk);
  EXPECT_EQ(d->metrics().counter("client.moves"), moves_before);
}

TEST(DssmrCore, LocationCacheSkipsConsult) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2})), ReplyCode::kOk);
  const auto consults = d->metrics().counter("client.consults");
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2})), ReplyCode::kOk);  // cached now
  EXPECT_EQ(d->metrics().counter("client.consults"), consults);
  EXPECT_GE(d->metrics().counter("client.cache_hits"), 1u);
  EXPECT_EQ(d->client(0).cached_location(VarId{2}), d->partition_gid(0));
}

TEST(DssmrCore, CacheDisabledAlwaysConsults) {
  auto cfg = small_config(2, Strategy::kDssmr);
  cfg.client_cache = false;
  auto d = make_kv_deployment(cfg);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2})), ReplyCode::kOk);
  EXPECT_EQ(d->metrics().counter("client.consults"), 2u);
  EXPECT_EQ(d->metrics().counter("client.cache_hits"), 0u);
}

TEST(DssmrCore, StaleCacheTriggersRetryAndRecovers) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  // Client 0 caches v1 -> partition 1.
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1})), ReplyCode::kOk);
  // Client 1 collocates v0+v2+v1; most-held sends all three to partition 0.
  EXPECT_EQ(run_op(*d, 1, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{1})), ReplyCode::kOk);
  ASSERT_EQ(d->oracle(0).mapping().locate(VarId{1}), d->partition_gid(0));
  // Client 0's cache is stale; the access must still succeed via retry.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 30);  // the sum wrote 0+20+10 into v1
  EXPECT_GE(d->metrics().counter("client.retries"), 1u);
  EXPECT_GE(d->metrics().counter("server.retries_issued"), 1u);
}

TEST(DssmrCore, FallbackToSsmrAfterRetryBudget) {
  auto cfg = small_config(2, Strategy::kDssmr);
  cfg.client_max_retries = -1;  // any retry goes straight to the fall-back
  auto d = make_kv_deployment(cfg);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1})), ReplyCode::kOk);  // warm cache: v1 @ P1
  EXPECT_EQ(run_op(*d, 1, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{1})), ReplyCode::kOk);
  ASSERT_EQ(d->oracle(0).mapping().locate(VarId{1}), d->partition_gid(0));
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(d->metrics().counter("client.fallbacks"), 1u);
  EXPECT_EQ(kv_num(reply), 30);
}

TEST(DssmrCore, CreateThenAccess) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, make_create(VarId{100})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, kv_add(VarId{100}, 5)), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{100}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 5);
}

TEST(DssmrCore, DuplicateCreateRejected) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, make_create(VarId{100})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 1, make_create(VarId{100})), ReplyCode::kNok);
  EXPECT_EQ(run_op(*d, 0, make_create(VarId{0})), ReplyCode::kNok);  // preloaded
}

TEST(DssmrCore, DeleteThenAccessFails) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, make_delete(VarId{4})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{4})), ReplyCode::kNok);
  // The variable is gone from the partitions, too.
  for (std::size_t p = 0; p < 2; ++p) EXPECT_FALSE(d->server(p, 0).owns(VarId{4}));
}

TEST(DssmrCore, AccessUnknownVariableIsNok) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{999})), ReplyCode::kNok);
}

TEST(DssmrCore, CreateAfterDeleteSucceeds) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, make_delete(VarId{5})), ReplyCode::kOk);
  EXPECT_EQ(run_op(*d, 0, make_create(VarId{5})), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{5}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 0);  // fresh default, not the old value
}

TEST(DssmrCore, ReplicasOfPartitionConverge) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(run_op(*d, static_cast<std::size_t>(i % 4), kv_add(VarId{i % 8u}, i)),
              ReplyCode::kOk);
  }
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}, VarId{2}}, VarId{0})), ReplyCode::kOk);
  d->engine().run_for(sec(1));  // let followers drain their queues
  for (std::size_t p = 0; p < 2; ++p) {
    for (VarId v : {VarId{0}, VarId{1}, VarId{2}, VarId{3}}) {
      if (!d->server(p, 0).owns(v)) continue;
      const auto* a = dynamic_cast<const kv::KvValue*>(d->server(p, 0).store().get(v));
      ASSERT_NE(a, nullptr);
      for (std::size_t r = 1; r < 3; ++r) {
        const auto* b = dynamic_cast<const kv::KvValue*>(d->server(p, r).store().get(v));
        ASSERT_NE(b, nullptr) << "replica " << r << " missing var " << v.value;
        EXPECT_EQ(a->num, b->num);
        EXPECT_EQ(a->data, b->data);
      }
    }
  }
}

// ---- S-SMR baseline ----------------------------------------------------------

TEST(SsmrBaseline, SinglePartitionOps) {
  auto d = make_kv_deployment(small_config(2, Strategy::kStaticSsmr));
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{2}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 20);
  EXPECT_EQ(d->metrics().counter("client.consults"), 0u);  // static oracle is local
}

TEST(SsmrBaseline, CrossPartitionExecutionIsExecutionAtomic) {
  auto d = make_kv_deployment(small_config(2, Strategy::kStaticSsmr));
  // v0 @ P0, v1 @ P1, v3 @ P1: sum across partitions, write into v3.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{3}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 10);
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{3}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 10);
  // No moves ever happen under the static scheme.
  EXPECT_EQ(d->metrics().counter("client.moves"), 0u);
  EXPECT_GE(d->metrics().counter("server.multi_partition_commands"), 1u);
}

TEST(SsmrBaseline, WritesApplyAtOwningPartitionOnly) {
  auto d = make_kv_deployment(small_config(2, Strategy::kStaticSsmr));
  EXPECT_EQ(run_op(*d, 0, kv_set({VarId{0}, VarId{1}}, "both")), ReplyCode::kOk);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_data(reply), "both");
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_data(reply), "both");
  // Ownership unchanged.
  EXPECT_TRUE(d->server(0, 0).owns(VarId{0}));
  EXPECT_TRUE(d->server(1, 0).owns(VarId{1}));
}

TEST(SsmrBaseline, FourPartitionSpanningCommand) {
  auto d = make_kv_deployment(small_config(4, Strategy::kStaticSsmr), /*vars=*/8);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}, VarId{2}, VarId{3}}, VarId{0}), &reply),
            ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 0 + 10 + 20 + 30);
}

// ---- DynaStar extension mode ---------------------------------------------------

TEST(DynaStarMode, OracleIssuesMoves) {
  auto cfg = small_config(2, Strategy::kDynaStar);
  cfg.oracle.oracle_issues_moves = true;
  auto d = make_kv_deployment(cfg);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 10);
  EXPECT_GE(d->metrics().counter("oracle.moves_issued"), 1u);
  EXPECT_EQ(d->metrics().counter("client.moves"), 0u);
  const GroupId p0 = d->oracle(0).mapping().locate(VarId{0});
  EXPECT_EQ(p0, d->oracle(0).mapping().locate(VarId{1}));
}

// ---- fault tolerance -----------------------------------------------------------

TEST(DssmrFaults, SurvivesOracleLeaderCrash) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);
  // Crash the oracle leader.
  for (std::size_t r = 0; r < 3; ++r) {
    if (d->oracle(r).is_leader()) {
      d->network().crash(d->oracle(r).pid());
      d->oracle(r).halt_node();
      break;
    }
  }
  // A cache-missing op needs the oracle; the client's timeout + the new
  // oracle leader must carry it through.
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_sum({VarId{0}, VarId{1}}, VarId{1}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 10);
}

TEST(DssmrFaults, SurvivesPartitionLeaderCrash) {
  auto d = make_kv_deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_add(VarId{0}, 7)), ReplyCode::kOk);
  for (std::size_t r = 0; r < 3; ++r) {
    if (d->server(0, r).is_leader()) {
      d->network().crash(d->server(0, r).pid());
      d->server(0, r).halt_node();
      break;
    }
  }
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 7);
}

TEST(DssmrFaults, ExactlyOnceUnderDuplicatedSubmissions) {
  // kAdd is not idempotent; the reply cache must absorb client retransmits.
  auto cfg = small_config(2, Strategy::kDssmr);
  cfg.client_timeout = msec(30);  // aggressive timeouts -> spurious resends
  cfg.net.inter_rack_latency = msec(20);
  cfg.net.intra_rack_latency = msec(10);
  auto d = make_kv_deployment(cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(run_op(*d, 0, kv_add(VarId{0}, 1)), ReplyCode::kOk);
  }
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 1, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 5);
}

}  // namespace
}  // namespace dssmr
