// Locality fast path: prophecy prefetch, piggybacked cache repair and move
// coalescing — functional behavior (prefetch installs warm the cache, repair
// entries re-route retries, coalesced moves still execute and reply), epoch
// monotonicity against forged/stale repairs, linearizability with the whole
// fast path on (including under every shipped nemesis plan), and the
// off-by-default purity the seed relies on: locality-off runs must produce
// byte-identical run records and carry no locality artifacts.
#include "core/client_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/move_coalescer.h"
#include "fault/fault_plan.h"
#include "fault/nemesis.h"
#include "harness/experiment.h"
#include "lincheck/lincheck.h"
#include "smr/kv.h"
#include "stats/run_record.h"
#include "testing/dssmr_fixture.h"
#include "testing/history.h"

namespace dssmr::core {
namespace {

using harness::Deployment;
using namespace dssmr::testing;

harness::DeploymentConfig locality_config(std::size_t parts, std::size_t clients) {
  auto cfg = small_config(parts, Strategy::kDssmr, clients);
  cfg.prefetch_k = 8;
  cfg.cache_repair = true;
  cfg.coalesce_moves = 4;
  cfg.coalesce_delay = usec(200);
  return cfg;
}

void preload_kv(Deployment& d, std::size_t vars, lincheck::KvSpec* spec = nullptr) {
  for (std::size_t i = 0; i < vars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % d.config().partitions), kv::KvValue{0, ""});
    if (spec != nullptr) spec->preload(VarId{i}, 0, "");
  }
}

// ---- prophecy prefetch -------------------------------------------------------

TEST(Prefetch, ConsultInstallsCoAccessedNeighbours) {
  auto cfg = locality_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 6);
  d.start();
  d.settle();

  // Client 0's multi-var command seeds the oracle's co-access table with
  // {0,2,4}; client 1 then consults for {0}: the prophecy's prefetch carries
  // 0's co-accessed partners, warming client 1's cache for vars it never
  // touched.
  EXPECT_EQ(run_op(d, 0, kv_sum({VarId{0}, VarId{2}}, VarId{4})), smr::ReplyCode::kOk);
  EXPECT_EQ(run_op(d, 1, kv_get(VarId{0})), smr::ReplyCode::kOk);
  EXPECT_TRUE(d.client(1).cached_location(VarId{2}).has_value());
  EXPECT_TRUE(d.client(1).cached_location(VarId{4}).has_value());
  EXPECT_GT(d.metrics().counter("locality.prefetch_installed"), 0u);

  // The warmed entries are real cache entries: the next command over them
  // skips the oracle entirely when they share a partition.
  const auto loc2 = d.client(1).cached_location(VarId{2});
  const auto loc4 = d.client(1).cached_location(VarId{4});
  ASSERT_TRUE(loc2.has_value() && loc4.has_value());
  if (*loc2 == *loc4) {
    const std::uint64_t consults = d.metrics().counter("client.consults");
    EXPECT_EQ(run_op(d, 1, kv_sum({VarId{2}}, VarId{4})), smr::ReplyCode::kOk);
    EXPECT_EQ(d.metrics().counter("client.consults"), consults);
    EXPECT_GT(d.metrics().counter("locality.prefetch_hits"), 0u);
  }
}

TEST(Prefetch, OffConfigInstallsNothing) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);  // prefetch_k = 0
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 6);
  d.start();
  d.settle();
  EXPECT_EQ(run_op(d, 0, kv_sum({VarId{0}, VarId{2}}, VarId{4})), smr::ReplyCode::kOk);
  EXPECT_EQ(run_op(d, 1, kv_get(VarId{0})), smr::ReplyCode::kOk);
  EXPECT_FALSE(d.client(1).cached_location(VarId{2}).has_value());
  EXPECT_EQ(d.metrics().counter("locality.prefetch_installed"), 0u);
}

// ---- piggybacked cache repair ------------------------------------------------

TEST(CacheRepair, RepliesAdvanceEpochsMonotonically) {
  auto cfg = locality_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  EXPECT_EQ(run_op(d, 0, kv_get(VarId{1})), smr::ReplyCode::kOk);
  const std::uint64_t e1 = d.client(0).cached_epoch(VarId{1});
  EXPECT_GT(e1, 0u);  // preloaded vars start at epoch 1

  // A forged repair with a stale epoch must never roll the cache back, no
  // matter what location it claims.
  const auto before = d.client(0).cached_location(VarId{1});
  ASSERT_TRUE(before.has_value());
  const GroupId other =
      *before == d.partition_gid(0) ? d.partition_gid(1) : d.partition_gid(0);
  d.client(0).apply_repair({{VarId{1}, other, /*epoch=*/0}});
  EXPECT_EQ(d.client(0).cached_location(VarId{1}), before);
  EXPECT_EQ(d.client(0).cached_epoch(VarId{1}), e1);

  // Equal epoch: still no install (strictly-greater rule).
  d.client(0).apply_repair({{VarId{1}, other, e1}});
  EXPECT_EQ(d.client(0).cached_location(VarId{1}), before);

  // Strictly newer epoch: installs and advances.
  d.client(0).apply_repair({{VarId{1}, other, e1 + 1}});
  EXPECT_EQ(d.client(0).cached_location(VarId{1}), other);
  EXPECT_EQ(d.client(0).cached_epoch(VarId{1}), e1 + 1);
}

TEST(CacheRepair, MovedVarRepairReachesOtherClients) {
  auto cfg = locality_config(2, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  d.settle();

  // Both clients learn var 0 (partition 0) and var 1 (partition 1).
  EXPECT_EQ(run_op(d, 0, kv_get(VarId{0})), smr::ReplyCode::kOk);
  EXPECT_EQ(run_op(d, 1, kv_get(VarId{0})), smr::ReplyCode::kOk);
  EXPECT_EQ(run_op(d, 1, kv_get(VarId{1})), smr::ReplyCode::kOk);

  // Client 0 collocates {0,1} via a DS-SMR move; client 1's cache is now
  // stale for whichever var moved. Its next command over both vars either
  // routes by luck or hits kRetry — with repair on, the retry reply teaches
  // it the new owner without a fresh consult ending in fallback.
  EXPECT_EQ(run_op(d, 0, kv_sum({VarId{0}}, VarId{1})), smr::ReplyCode::kOk);
  EXPECT_EQ(run_op(d, 1, kv_sum({VarId{0}}, VarId{1})), smr::ReplyCode::kOk);
  EXPECT_TRUE(d.audit_consistency().empty());
  // Repair actually flowed somewhere in the run (prophecy epochs, retry or
  // OK-reply piggyback).
  EXPECT_GT(d.metrics().counter("locality.repairs"), 0u);
}

// ---- move coalescing ---------------------------------------------------------

TEST(Coalescing, BufferedMovesFlushAndExecute) {
  auto cfg = locality_config(2, 4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 8);
  d.start();
  d.settle();
  ASSERT_NE(d.move_coalescer(), nullptr);

  // Every client issues a cross-partition command at once: their moves land
  // in the coalescer inside one delay window and flush together.
  std::vector<smr::ReplyCode> codes(4, smr::ReplyCode::kNok);
  std::size_t done = 0;
  for (std::size_t ci = 0; ci < 4; ++ci) {
    const auto v = static_cast<std::uint64_t>(2 * ci);
    d.client(ci).issue(kv_sum({VarId{v}}, VarId{v + 1}),
                       [&codes, &done, ci](smr::ReplyCode c, const net::MessagePtr&) {
                         codes[ci] = c;
                         ++done;
                       });
  }
  d.engine().run_for(sec(5));
  ASSERT_EQ(done, 4u);
  for (std::size_t ci = 0; ci < 4; ++ci) {
    EXPECT_EQ(codes[ci], smr::ReplyCode::kOk) << "client " << ci;
  }
  EXPECT_EQ(d.metrics().counter("client.moves"), 4u);
  EXPECT_TRUE(d.audit_consistency().empty());
}

TEST(Coalescing, DisabledMeansNoCoalescerProcess) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  preload_kv(d, 4);
  d.start();
  EXPECT_EQ(d.move_coalescer(), nullptr);
}

// ---- linearizability with the full fast path on ------------------------------

class LocalityLinearizability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalityLinearizability, ConcurrentHistoriesAreLinearizable) {
  constexpr std::size_t kVars = 5;
  auto cfg = locality_config(2, 4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();
  auto history = record_history(d, /*ops_per_client=*/8, GetParam(), kVars);
  ASSERT_EQ(history.size(), 32u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec)) << "seed " << GetParam();
  EXPECT_TRUE(d.audit_consistency().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalityLinearizability, ::testing::Values(1, 2, 3, 4, 5));

// Prefetch + repair + coalescing stay linearizable under every shipped fault
// plan: stale prefetched locations, repairs racing crashes and coalesced
// moves split by leader failover must all degrade to retries, never to a
// consistency violation.
class LocalityUnderFaults : public ::testing::TestWithParam<std::string> {};

TEST_P(LocalityUnderFaults, HistoriesUnderPlanAreLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = locality_config(2, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  lincheck::KvSpec spec;
  preload_kv(d, kVars, &spec);
  d.start();
  d.settle();

  fault::Nemesis nem{d, fault::resolve_plan(GetParam())};
  nem.arm();
  auto history =
      record_history(d, /*ops_per_client=*/8, /*seed=*/23, kVars, /*think=*/msec(250));
  ASSERT_EQ(history.size(), 24u);
  EXPECT_TRUE(lincheck::is_linearizable(history, spec)) << "plan " << GetParam();
  EXPECT_GT(d.metrics().counter("faults.events_injected"), 0u);
}

std::vector<std::string> shipped_plan_names() {
  std::vector<std::string> names;
  for (const fault::ShippedPlan& p : fault::shipped_plans()) names.emplace_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllShippedPlans, LocalityUnderFaults,
                         ::testing::ValuesIn(shipped_plan_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- determinism and off-by-default purity -----------------------------------

harness::ChirperRunConfig chirper_locality(std::uint64_t seed) {
  harness::ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(100);
  cfg.measure = msec(300);
  cfg.seed = seed;
  cfg.prefetch_k = 8;
  cfg.cache_repair = true;
  cfg.coalesce_moves = 4;
  cfg.coalesce_delay = usec(200);
  return cfg;
}

std::string record_json(const harness::ChirperRunConfig& cfg, const harness::RunResult& r) {
  std::ostringstream os;
  stats::write_run_records(os, "locality_test", {harness::make_run_record(cfg, r)});
  return os.str();
}

TEST(LocalityDeterminism, SameSeedSameRunRecordBytes) {
  const harness::ChirperRunConfig cfg = chirper_locality(77);
  const std::string first = record_json(cfg, harness::run_chirper(cfg));
  const std::string second = record_json(cfg, harness::run_chirper(cfg));
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
  // The record carries the v6 locality section and the knob metadata.
  EXPECT_NE(first.find("\"locality\""), std::string::npos);
  EXPECT_NE(first.find("\"prefetch_k\": \"8\""), std::string::npos);
  EXPECT_NE(first.find("\"cache_repair\": \"true\""), std::string::npos);
  EXPECT_NE(first.find("\"coalesce_moves\": \"4\""), std::string::npos);
}

TEST(LocalityDeterminism, OffRunsCarryNoLocalityArtifacts) {
  harness::ChirperRunConfig cfg = chirper_locality(78);
  cfg.prefetch_k = 0;
  cfg.cache_repair = false;
  cfg.coalesce_moves = 0;
  const std::string json = record_json(cfg, harness::run_chirper(cfg));
  EXPECT_EQ(json.find("\"locality\""), std::string::npos);
  EXPECT_EQ(json.find("prefetch"), std::string::npos);
  EXPECT_EQ(json.find("cache_repair"), std::string::npos);
}

// The real off-mode purity bar: a locality-off run record is byte-identical
// to one from a config that predates the locality knobs entirely (the two
// structs differ only in the new default-zero fields).
TEST(LocalityDeterminism, OffModeMatchesPreLocalityRecordBytes) {
  harness::ChirperRunConfig off = chirper_locality(79);
  off.prefetch_k = 0;
  off.cache_repair = false;
  off.coalesce_moves = 0;

  harness::ChirperRunConfig legacy;
  legacy.partitions = off.partitions;
  legacy.clients_per_partition = off.clients_per_partition;
  legacy.graph = off.graph;
  legacy.warmup = off.warmup;
  legacy.measure = off.measure;
  legacy.seed = off.seed;

  const std::string a = record_json(off, harness::run_chirper(off));
  const std::string b = record_json(legacy, harness::run_chirper(legacy));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dssmr::core
