// Unit tests of the oracle-side placement machinery: the dynamic Mapping,
// the DS-SMR destination rules, and the DynaStar-style graph policy.
#include <gtest/gtest.h>

#include "core/dynastar_policy.h"
#include "core/mapping.h"
#include "core/oracle.h"

namespace dssmr::core {
namespace {

std::vector<GroupId> three_parts() { return {GroupId{0}, GroupId{1}, GroupId{2}}; }

TEST(Mapping, PlaceLocateErase) {
  Mapping m{three_parts()};
  EXPECT_EQ(m.locate(VarId{1}), kNoGroup);
  m.place(VarId{1}, GroupId{2});
  EXPECT_EQ(m.locate(VarId{1}), GroupId{2});
  EXPECT_TRUE(m.contains(VarId{1}));
  m.erase(VarId{1});
  EXPECT_FALSE(m.contains(VarId{1}));
  EXPECT_EQ(m.var_count(), 0u);
}

TEST(Mapping, LoadTracking) {
  Mapping m{three_parts()};
  m.place(VarId{1}, GroupId{0});
  m.place(VarId{2}, GroupId{0});
  m.place(VarId{3}, GroupId{1});
  EXPECT_EQ(m.load(GroupId{0}), 2u);
  EXPECT_EQ(m.load(GroupId{1}), 1u);
  EXPECT_EQ(m.load(GroupId{2}), 0u);
  EXPECT_EQ(m.least_loaded(), GroupId{2});
  m.place(VarId{1}, GroupId{2});  // re-place updates both counts
  EXPECT_EQ(m.load(GroupId{0}), 1u);
  EXPECT_EQ(m.load(GroupId{2}), 1u);
}

TEST(DssmrPolicy, PlaceNewBalances) {
  Mapping m{three_parts()};
  DssmrPolicy policy;
  for (std::uint64_t i = 0; i < 9; ++i) {
    const GroupId p = policy.place_new(VarId{i}, m);
    m.place(VarId{i}, p);
  }
  for (GroupId g : three_parts()) EXPECT_EQ(m.load(g), 3u);
}

TEST(DssmrPolicy, MostHeldPicksDominantPartition) {
  Mapping m{three_parts()};
  m.place(VarId{1}, GroupId{1});
  m.place(VarId{2}, GroupId{1});
  m.place(VarId{3}, GroupId{2});
  DssmrPolicy policy{DssmrPolicy::DestRule::kMostHeld};
  EXPECT_EQ(policy.choose_destination({VarId{1}, VarId{2}, VarId{3}}, m), GroupId{1});
}

TEST(DssmrPolicy, MostHeldTiesAreSpread) {
  // With pure ties the hashed tie-break must not always pick partition 0.
  Mapping m{three_parts()};
  DssmrPolicy policy{DssmrPolicy::DestRule::kMostHeld};
  std::set<std::uint32_t> chosen;
  for (std::uint64_t i = 0; i < 40; i += 2) {
    m.place(VarId{i}, GroupId{0});
    m.place(VarId{i + 1}, GroupId{1});
    chosen.insert(policy.choose_destination({VarId{i}, VarId{i + 1}}, m).value);
  }
  EXPECT_GT(chosen.size(), 1u);
}

TEST(DssmrPolicy, DestinationIsDeterministic) {
  Mapping m{three_parts()};
  m.place(VarId{1}, GroupId{0});
  m.place(VarId{2}, GroupId{1});
  for (auto rule : {DssmrPolicy::DestRule::kMostHeld, DssmrPolicy::DestRule::kRandomInvolved,
                    DssmrPolicy::DestRule::kLeastLoaded}) {
    DssmrPolicy a{rule}, b{rule};
    EXPECT_EQ(a.choose_destination({VarId{1}, VarId{2}}, m),
              b.choose_destination({VarId{1}, VarId{2}}, m));
  }
}

TEST(DssmrPolicy, RandomInvolvedStaysAmongInvolved) {
  Mapping m{three_parts()};
  m.place(VarId{1}, GroupId{0});
  m.place(VarId{2}, GroupId{2});
  DssmrPolicy policy{DssmrPolicy::DestRule::kRandomInvolved};
  const GroupId d = policy.choose_destination({VarId{1}, VarId{2}}, m);
  EXPECT_TRUE(d == GroupId{0} || d == GroupId{2});
}

TEST(DssmrPolicy, LeastLoadedPrefersEmptierPartition) {
  Mapping m{three_parts()};
  for (std::uint64_t i = 0; i < 5; ++i) m.place(VarId{i}, GroupId{0});
  m.place(VarId{10}, GroupId{1});
  DssmrPolicy policy{DssmrPolicy::DestRule::kLeastLoaded};
  EXPECT_EQ(policy.choose_destination({VarId{0}, VarId{10}}, m), GroupId{1});
}

TEST(DeriveMoveId, StableAndDistinct) {
  EXPECT_EQ(derive_move_id(MsgId{7}), derive_move_id(MsgId{7}));
  EXPECT_NE(derive_move_id(MsgId{7}), derive_move_id(MsgId{8}));
  EXPECT_NE(derive_move_id(MsgId{7}), MsgId{7});
}

// ---- DynaStarPolicy ------------------------------------------------------------

DynaStarPolicy::Config dynastar_cfg(std::uint32_t k, std::uint64_t every = 1000) {
  DynaStarPolicy::Config cfg;
  cfg.repartition_every_hints = every;
  cfg.partitioner.k = k;
  return cfg;
}

TEST(DynaStarPolicy, FallsBackBeforeFirstRepartition) {
  Mapping m{three_parts()};
  m.place(VarId{1}, GroupId{0});
  m.place(VarId{2}, GroupId{1});
  DynaStarPolicy policy{dynastar_cfg(3)};
  const GroupId d = policy.choose_destination({VarId{1}, VarId{2}}, m);
  EXPECT_TRUE(d == GroupId{0} || d == GroupId{1});
  EXPECT_EQ(policy.repartition_count(), 0u);
}

TEST(DynaStarPolicy, RepartitionTriggersOnHintThreshold) {
  DynaStarPolicy policy{dynastar_cfg(2, /*every=*/4)};
  policy.on_hint({{VarId{1}, VarId{2}}, {VarId{2}, VarId{3}}});
  EXPECT_EQ(policy.repartition_count(), 0u);
  policy.on_hint({{VarId{3}, VarId{4}}, {VarId{4}, VarId{1}}});
  EXPECT_EQ(policy.repartition_count(), 1u);
}

TEST(DynaStarPolicy, IdealPartitioningSeparatesCliques) {
  Mapping m{{GroupId{0}, GroupId{1}}};
  DynaStarPolicy policy{dynastar_cfg(2)};
  // Two 4-cliques, A = {0..3}, B = {10..13}, scattered over the mapping.
  for (std::uint64_t c : {0ull, 10ull}) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      for (std::uint64_t j = i + 1; j < 4; ++j) {
        policy.preload_edge(VarId{c + i}, VarId{c + j}, 10);
      }
      m.place(VarId{c + i}, GroupId{static_cast<std::uint32_t>(i % 2)});
    }
  }
  policy.force_repartition();
  EXPECT_EQ(policy.repartition_count(), 1u);

  // The destination for clique A's variables must be one partition, and the
  // destination for clique B must be the other (balance).
  const GroupId da =
      policy.choose_destination({VarId{0}, VarId{1}, VarId{2}, VarId{3}}, m);
  const GroupId db =
      policy.choose_destination({VarId{10}, VarId{11}, VarId{12}, VarId{13}}, m);
  EXPECT_NE(da, kNoGroup);
  EXPECT_NE(db, kNoGroup);
  EXPECT_NE(da, db);
}

TEST(DynaStarPolicy, PlaceNewUsesIdealWhenKnown) {
  Mapping m{{GroupId{0}, GroupId{1}}};
  DynaStarPolicy policy{dynastar_cfg(2)};
  policy.preload_edge(VarId{1}, VarId{2}, 5);
  policy.preload_edge(VarId{3}, VarId{4}, 5);
  policy.force_repartition();
  const GroupId p1 = policy.place_new(VarId{1}, m);
  const GroupId p2 = policy.place_new(VarId{2}, m);
  EXPECT_EQ(p1, p2);  // connected pair shares its ideal partition
  // An unknown variable falls back to least-loaded.
  m.place(VarId{100}, GroupId{0});
  EXPECT_EQ(policy.place_new(VarId{999}, m), GroupId{1});
}

TEST(DynaStarPolicy, GraphGrowsWithCreatesAndHints) {
  DynaStarPolicy policy{dynastar_cfg(2)};
  policy.on_create(VarId{5});
  policy.on_hint({{VarId{5}, VarId{6}}});
  EXPECT_EQ(policy.graph_vertex_count(), 2u);
  EXPECT_EQ(policy.graph_edge_count(), 1u);
}

}  // namespace
}  // namespace dssmr::core
