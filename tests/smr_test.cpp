// Unit tests of the SMR layer: execution engine, variable store, execution
// view, KV application semantics, and command plumbing.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "smr/app.h"
#include "smr/command.h"
#include "smr/execution.h"
#include "smr/kv.h"

namespace dssmr::smr {
namespace {

// ---- ExecutionEngine ----------------------------------------------------------

TEST(ExecutionEngine, RunsTasksInOrderWithServiceTime) {
  sim::Engine engine;
  ExecutionEngine exec{engine};
  std::vector<std::pair<int, Time>> finished;
  for (int i = 0; i < 3; ++i) {
    exec.enqueue({MsgId{static_cast<std::uint64_t>(i)}, nullptr, nullptr, usec(10),
                  [&, i] { finished.emplace_back(i, engine.now()); }});
  }
  engine.run();
  ASSERT_EQ(finished.size(), 3u);
  EXPECT_EQ(finished[0], std::make_pair(0, usec(10)));
  EXPECT_EQ(finished[1], std::make_pair(1, usec(20)));
  EXPECT_EQ(finished[2], std::make_pair(2, usec(30)));
  EXPECT_EQ(exec.busy_time(), usec(30));
  EXPECT_EQ(exec.executed_count(), 3u);
}

TEST(ExecutionEngine, HeadWaitsBlockEverythingBehind) {
  sim::Engine engine;
  ExecutionEngine exec{engine};
  bool input_ready = false;
  std::vector<int> order;
  exec.enqueue({MsgId{1}, nullptr, [&] { return input_ready; }, usec(5),
                [&] { order.push_back(1); }});
  exec.enqueue({MsgId{2}, nullptr, nullptr, usec(5), [&] { order.push_back(2); }});
  engine.run_for(msec(1));
  EXPECT_TRUE(order.empty());  // both blocked behind the head
  input_ready = true;
  exec.notify();
  engine.run_for(msec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ExecutionEngine, OnHeadRunsOnceBeforeReadyChecks) {
  sim::Engine engine;
  ExecutionEngine exec{engine};
  int head_calls = 0;
  bool ready = false;
  exec.enqueue({MsgId{1}, [&] { ++head_calls; }, [&] { return ready; }, usec(1), [] {}});
  engine.run_for(msec(1));
  exec.notify();
  exec.notify();
  EXPECT_EQ(head_calls, 1);
  ready = true;
  exec.notify();
  engine.run_for(msec(1));
  EXPECT_EQ(head_calls, 1);
  EXPECT_TRUE(exec.idle());
}

TEST(ExecutionEngine, ZeroServiceTaskCompletes) {
  sim::Engine engine;
  ExecutionEngine exec{engine};
  bool ran = false;
  exec.enqueue({MsgId{1}, nullptr, nullptr, 0, [&] { ran = true; }});
  engine.run_for(usec(1));
  EXPECT_TRUE(ran);
}

TEST(ExecutionEngine, TaskEnqueuedFromRunCallback) {
  sim::Engine engine;
  ExecutionEngine exec{engine};
  std::vector<int> order;
  exec.enqueue({MsgId{1}, nullptr, nullptr, usec(1), [&] {
                  order.push_back(1);
                  exec.enqueue({MsgId{2}, nullptr, nullptr, usec(1),
                                [&] { order.push_back(2); }});
                }});
  engine.run_for(msec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- VariableStore / ExecutionView --------------------------------------------

TEST(VariableStore, PutGetTakeErase) {
  VariableStore store;
  EXPECT_FALSE(store.contains(VarId{1}));
  store.put(VarId{1}, std::make_unique<kv::KvValue>(5, "x"));
  ASSERT_TRUE(store.contains(VarId{1}));
  EXPECT_EQ(dynamic_cast<kv::KvValue*>(store.get(VarId{1}))->num, 5);
  auto taken = store.take(VarId{1});
  ASSERT_NE(taken, nullptr);
  EXPECT_FALSE(store.contains(VarId{1}));
  EXPECT_EQ(store.take(VarId{1}), nullptr);
}

TEST(VariableStore, TotalBytesSumsValues) {
  VariableStore store;
  store.put(VarId{1}, std::make_unique<kv::KvValue>(0, "abcd"));
  store.put(VarId{2}, std::make_unique<kv::KvValue>(0, ""));
  EXPECT_EQ(store.total_bytes(), (24 + 4) + 24u);
}

TEST(ExecutionView, PrefersLocalOverBorrowed) {
  VariableStore store;
  store.put(VarId{1}, std::make_unique<kv::KvValue>(10, "local"));
  ExecutionView view{store};
  view.lend(VarId{1}, std::make_unique<kv::KvValue>(99, "remote"));
  view.lend(VarId{2}, std::make_unique<kv::KvValue>(7, "only-remote"));
  EXPECT_EQ(view.get_as<kv::KvValue>(VarId{1})->data, "local");
  EXPECT_EQ(view.get_as<kv::KvValue>(VarId{2})->data, "only-remote");
  EXPECT_TRUE(view.is_local(VarId{1}));
  EXPECT_FALSE(view.is_local(VarId{2}));
  EXPECT_FALSE(view.contains(VarId{3}));
}

TEST(ExecutionView, BorrowedWritesDoNotTouchStore) {
  VariableStore store;
  ExecutionView view{store};
  view.lend(VarId{1}, std::make_unique<kv::KvValue>(1, ""));
  view.get_as<kv::KvValue>(VarId{1})->num = 42;
  EXPECT_FALSE(store.contains(VarId{1}));
}

// ---- KV application -------------------------------------------------------------

TEST(KvApp, GetSetAddSum) {
  kv::KvApp app;
  VariableStore store;
  store.put(VarId{1}, std::make_unique<kv::KvValue>(3, "a"));
  store.put(VarId{2}, std::make_unique<kv::KvValue>(4, "b"));

  ExecutionView view{store};
  Command get;
  get.op = kv::kGet;
  get.read_set = {VarId{1}};
  auto reply = app.execute(get, view);
  EXPECT_EQ(net::msg_as<kv::KvReply>(reply).num, 3);

  Command add;
  add.op = kv::kAdd;
  add.write_set = {VarId{1}};
  add.arg = "-5";
  reply = app.execute(add, view);
  EXPECT_EQ(net::msg_as<kv::KvReply>(reply).num, -2);

  Command sum;
  sum.op = kv::kSumTo;
  sum.read_set = {VarId{1}, VarId{2}};
  sum.write_set = {VarId{2}};
  reply = app.execute(sum, view);
  EXPECT_EQ(net::msg_as<kv::KvReply>(reply).num, 2);
  EXPECT_EQ(dynamic_cast<kv::KvValue*>(store.get(VarId{2}))->num, 2);
}

TEST(KvApp, MissingVariableHandledGracefully) {
  kv::KvApp app;
  VariableStore store;
  ExecutionView view{store};
  Command get;
  get.op = kv::kGet;
  get.read_set = {VarId{404}};
  auto reply = app.execute(get, view);
  EXPECT_EQ(net::msg_as<kv::KvReply>(reply).data, "<missing>");
}

TEST(KvApp, ServiceTimeGrowsWithVars) {
  kv::KvApp app;
  Command small;
  small.op = kv::kGet;
  small.read_set = {VarId{1}};
  Command big = small;
  big.read_set = {VarId{1}, VarId{2}, VarId{3}};
  EXPECT_LT(app.service_time(small), app.service_time(big));
}

// ---- Command ---------------------------------------------------------------------

TEST(Command, VarsIsDedupedUnion) {
  Command c;
  c.read_set = {VarId{3}, VarId{1}};
  c.write_set = {VarId{1}, VarId{2}};
  EXPECT_EQ(c.vars(), (std::vector<VarId>{VarId{1}, VarId{2}, VarId{3}}));
}

TEST(Command, SizeGrowsWithContent) {
  Command small;
  Command big;
  big.read_set = {VarId{1}, VarId{2}};
  big.arg = std::string(100, 'x');
  EXPECT_LT(small.size_bytes(), big.size_bytes());
}

TEST(Command, ToStringCoversAllTypes) {
  EXPECT_STREQ(to_string(CommandType::kAccess), "access");
  EXPECT_STREQ(to_string(CommandType::kCreate), "create");
  EXPECT_STREQ(to_string(CommandType::kDelete), "delete");
  EXPECT_STREQ(to_string(CommandType::kMove), "move");
  EXPECT_STREQ(to_string(ReplyCode::kOk), "ok");
  EXPECT_STREQ(to_string(ReplyCode::kRetry), "retry");
  EXPECT_STREQ(to_string(ReplyCode::kNok), "nok");
}

TEST(VarShipMsg, SizeIncludesValues) {
  std::vector<std::pair<VarId, std::shared_ptr<const VarValue>>> vars;
  vars.emplace_back(VarId{1}, std::make_shared<kv::KvValue>(0, std::string(100, 'y')));
  VarShipMsg ship{MsgId{1}, GroupId{0}, false, std::move(vars)};
  EXPECT_GT(ship.size_bytes(), 100u);
}

}  // namespace
}  // namespace dssmr::smr
