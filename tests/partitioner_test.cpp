#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "partition/graph.h"
#include "workload/holme_kim.h"

namespace dssmr::partition {
namespace {

/// A graph of `clusters` dense cliques connected by single bridge edges — the
/// canonical easy case any decent partitioner must nail.
Csr clustered_graph(std::uint32_t clusters, std::uint32_t size) {
  GraphBuilder b;
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t i = 0; i < size; ++i) {
      for (std::uint32_t j = i + 1; j < size; ++j) b.add_edge(base + i, base + j);
    }
    if (c > 0) b.add_edge(base - 1, base);  // bridge
  }
  return b.build();
}

TEST(GraphBuilder, AccumulatesParallelEdges) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 0, 3);
  EXPECT_EQ(b.edge_weight(0, 1), 4);
  EXPECT_EQ(b.edge_count(), 1u);
}

TEST(GraphBuilder, IgnoresSelfLoops) {
  GraphBuilder b;
  b.add_edge(2, 2);
  EXPECT_EQ(b.edge_count(), 0u);
  EXPECT_EQ(b.vertex_count(), 3u);  // vertex 2 still exists
}

TEST(GraphBuilder, BuildsSymmetricCsr) {
  GraphBuilder b;
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 5);
  Csr g = b.build();
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree_weight(1), 7);
  EXPECT_EQ(g.degree_weight(0), 2);
  EXPECT_EQ(g.total_vertex_weight(), 3);
}

TEST(EdgeCut, CountsCrossEdgesOnly) {
  GraphBuilder b;
  b.add_edge(0, 1, 10);
  b.add_edge(2, 3, 7);
  b.add_edge(1, 2, 1);
  Csr g = b.build();
  EXPECT_EQ(edge_cut(g, {0, 0, 1, 1}), 1);
  EXPECT_EQ(edge_cut(g, {0, 1, 0, 1}), 18);
  EXPECT_DOUBLE_EQ(edge_cut_fraction(g, {0, 0, 1, 1}), 1.0 / 3.0);
}

TEST(Partitioner, EmptyGraph) {
  Csr g;
  PartitionerConfig cfg;
  cfg.k = 4;
  auto r = partition_graph(g, cfg);
  EXPECT_TRUE(r.part.empty());
  EXPECT_EQ(r.cut, 0);
}

TEST(Partitioner, SinglePartIsTrivial) {
  Csr g = clustered_graph(2, 10);
  PartitionerConfig cfg;
  cfg.k = 1;
  auto r = partition_graph(g, cfg);
  EXPECT_EQ(r.cut, 0);
  for (auto p : r.part) EXPECT_EQ(p, 0u);
}

TEST(Partitioner, SeparatesTwoCliquesPerfectly) {
  Csr g = clustered_graph(2, 20);
  PartitionerConfig cfg;
  cfg.k = 2;
  auto r = partition_graph(g, cfg);
  EXPECT_EQ(r.cut, 1);  // only the bridge
  EXPECT_EQ(r.part_weights[0], 20);
  EXPECT_EQ(r.part_weights[1], 20);
}

TEST(Partitioner, FourCliquesFourParts) {
  Csr g = clustered_graph(4, 16);
  PartitionerConfig cfg;
  cfg.k = 4;
  auto r = partition_graph(g, cfg);
  EXPECT_LE(r.cut, 3);  // the three bridges
  for (auto w : r.part_weights) EXPECT_EQ(w, 16);
}

TEST(Partitioner, RespectsBalanceCap) {
  Rng rng{3};
  Csr g = workload::holme_kim_csr({.n = 3000, .m = 3, .p_triad = 0.7}, rng);
  PartitionerConfig cfg;
  cfg.k = 8;
  cfg.imbalance = 1.05;
  auto r = partition_graph(g, cfg);
  const Weight cap =
      static_cast<Weight>(1.05 * static_cast<double>(g.total_vertex_weight()) / 8.0) + 1;
  Weight total = 0;
  for (auto w : r.part_weights) {
    EXPECT_LE(w, cap);
    total += w;
  }
  EXPECT_EQ(total, g.total_vertex_weight());
}

TEST(Partitioner, NoVertexLost) {
  Rng rng{5};
  Csr g = workload::holme_kim_csr({.n = 1000, .m = 2, .p_triad = 0.8}, rng);
  PartitionerConfig cfg;
  cfg.k = 4;
  auto r = partition_graph(g, cfg);
  ASSERT_EQ(r.part.size(), g.vertex_count());
  for (auto p : r.part) EXPECT_LT(p, 4u);
}

TEST(Partitioner, BeatsHashPlacementOnClusteredGraphs) {
  Rng rng{7};
  Csr g = workload::holme_kim_csr({.n = 4000, .m = 3, .p_triad = 0.9}, rng);
  PartitionerConfig cfg;
  cfg.k = 4;
  auto r = partition_graph(g, cfg);
  const Weight hash_cut = edge_cut(g, hash_partition(g.vertex_count(), 4));
  EXPECT_LT(r.cut, hash_cut / 3) << "multilevel cut " << r.cut << " vs hash " << hash_cut;
}

TEST(Partitioner, DeterministicAcrossCalls) {
  Rng rng{11};
  Csr g = workload::holme_kim_csr({.n = 2000, .m = 3, .p_triad = 0.8}, rng);
  PartitionerConfig cfg;
  cfg.k = 4;
  auto a = partition_graph(g, cfg);
  auto b = partition_graph(g, cfg);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(Partitioner, ReportedCutMatchesRecount) {
  Rng rng{13};
  Csr g = workload::holme_kim_csr({.n = 1500, .m = 2, .p_triad = 0.6}, rng);
  PartitionerConfig cfg;
  cfg.k = 3;
  auto r = partition_graph(g, cfg);
  EXPECT_EQ(r.cut, edge_cut(g, r.part));
}

TEST(Partitioner, RefinementImprovesOnNoRefinement) {
  // More passes do not monotonically improve (different local optima), but
  // refinement must clearly beat projecting the coarse partition unrefined.
  Rng rng{17};
  Csr g = workload::holme_kim_csr({.n = 2000, .m = 3, .p_triad = 0.8}, rng);
  PartitionerConfig none;
  none.k = 4;
  none.refine_passes = 0;
  PartitionerConfig many = none;
  many.refine_passes = 8;
  const Weight refined = partition_graph(g, many).cut;
  const Weight unrefined = partition_graph(g, none).cut;
  EXPECT_LT(refined, unrefined) << refined << " vs " << unrefined;
}

TEST(HashPartition, RoundRobin) {
  auto p = hash_partition(7, 3);
  EXPECT_EQ(p, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2, 0}));
}

}  // namespace
}  // namespace dssmr::partition
