// Network-partition fault injection: leader isolation, dueling leaders,
// partition heal — exercised at the Paxos, multicast and DS-SMR layers.
#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/cluster.h"
#include "testing/dssmr_fixture.h"

namespace dssmr {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

TEST(NetLinks, DownLinkDropsTraffic) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  struct Sink : net::Actor {
    int got = 0;
    void on_message(ProcessId, const net::MessagePtr&) override { ++got; }
  } a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.set_link(pa, pb, false);
  network.send(pa, pb, net::make_msg<IntMsg>(1));
  network.send(pb, pa, net::make_msg<IntMsg>(1));
  engine.run();
  EXPECT_EQ(a.got + b.got, 0);
  network.set_link(pa, pb, true);
  network.send(pa, pb, net::make_msg<IntMsg>(2));
  engine.run();
  EXPECT_EQ(b.got, 1);
}

TEST(NetLinks, InFlightMessagesDieWhenLinkCut) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  struct Sink : net::Actor {
    int got = 0;
    void on_message(ProcessId, const net::MessagePtr&) override { ++got; }
  } a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.send(pa, pb, net::make_msg<IntMsg>(1));
  engine.schedule(usec(10), [&] { network.set_link(pa, pb, false); });
  engine.run();
  EXPECT_EQ(b.got, 0);
}

TEST(PaxosPartition, IsolatedLeaderIsReplaced) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  // Isolate the current leader from its peers.
  std::size_t leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (f.node(0, r).is_leader()) leader = r;
  }
  ASSERT_LT(leader, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != leader) f.network.set_link(f.node(0, leader).pid(), f.node(0, r).pid(), false);
  }
  f.engine.run_for(sec(2));
  std::size_t new_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != leader && f.node(0, r).is_leader()) new_leader = r;
  }
  ASSERT_LT(new_leader, 3u) << "majority side did not elect a replacement";

  // The majority side makes progress.
  f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(5));
  f.engine.run_for(msec(300));
  EXPECT_EQ(f.node(0, new_leader).amdelivered.size(), 1u);
}

TEST(PaxosPartition, HealedLeaderStepsDownAndCatchesUp) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  std::size_t old_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (f.node(0, r).is_leader()) old_leader = r;
  }
  ASSERT_LT(old_leader, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != old_leader) {
      f.network.set_link(f.node(0, old_leader).pid(), f.node(0, r).pid(), false);
    }
  }
  f.engine.run_for(sec(2));
  // Decide values on the majority side while the old leader is isolated.
  for (int i = 0; i < 5; ++i) {
    f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(i));
  }
  f.engine.run_for(msec(500));

  // Heal; the old leader must adopt the new ballot and learn the decisions.
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != old_leader) {
      f.network.set_link(f.node(0, old_leader).pid(), f.node(0, r).pid(), true);
    }
  }
  f.engine.run_for(sec(2));
  EXPECT_EQ(f.node(0, old_leader).amdelivered.size(), 5u);
  // All replicas agree on the sequence.
  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_EQ(f.node(0, r).amdelivered.size(), f.node(0, 0).amdelivered.size());
    for (std::size_t i = 0; i < f.node(0, 0).amdelivered.size(); ++i) {
      EXPECT_EQ(f.node(0, r).amdelivered[i].id, f.node(0, 0).amdelivered[i].id);
    }
  }
  // Exactly one leader after healing.
  int leaders = 0;
  for (std::size_t r = 0; r < 3; ++r) leaders += f.node(0, r).is_leader();
  EXPECT_EQ(leaders, 1);
}

TEST(DssmrPartition, OperationsResumeAfterOracleHeals) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  cfg.client_cache = false;  // force oracle involvement on every op
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t i = 0; i < 4; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{7, ""});
  }
  d.start();
  d.settle();

  // Cut the clients off from the whole oracle group.
  std::vector<ProcessId> clients_pids, oracle_pids;
  for (std::size_t c = 0; c < d.client_count(); ++c) clients_pids.push_back(d.client(c).pid());
  for (std::size_t r = 0; r < 3; ++r) oracle_pids.push_back(d.oracle(r).pid());
  d.network().partition_sets(clients_pids, oracle_pids, false);

  bool done = false;
  smr::ReplyCode rc = ReplyCode::kNok;
  d.client(0).issue(kv_get(VarId{0}), [&](ReplyCode c, const net::MessagePtr&) {
    done = true;
    rc = c;
  });
  d.engine().run_for(sec(1));
  EXPECT_FALSE(done);  // consult cannot reach the oracle

  d.network().partition_sets(clients_pids, oracle_pids, true);
  d.engine().run_for(sec(2));
  EXPECT_TRUE(done);  // client retransmission gets through after the heal
  EXPECT_EQ(rc, ReplyCode::kOk);
}

}  // namespace
}  // namespace dssmr
