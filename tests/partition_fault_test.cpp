// Network-partition fault injection: leader isolation, dueling leaders,
// partition heal — exercised at the Paxos, multicast and DS-SMR layers.
#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/cluster.h"
#include "testing/dssmr_fixture.h"

namespace dssmr {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

TEST(NetLinks, DownLinkDropsTraffic) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  struct Sink : net::Actor {
    int got = 0;
    void on_message(ProcessId, const net::MessagePtr&) override { ++got; }
  } a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.set_link(pa, pb, false);
  network.send(pa, pb, net::make_msg<IntMsg>(1));
  network.send(pb, pa, net::make_msg<IntMsg>(1));
  engine.run();
  EXPECT_EQ(a.got + b.got, 0);
  network.set_link(pa, pb, true);
  network.send(pa, pb, net::make_msg<IntMsg>(2));
  engine.run();
  EXPECT_EQ(b.got, 1);
}

TEST(NetLinks, InFlightMessagesDieWhenLinkCut) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  struct Sink : net::Actor {
    int got = 0;
    void on_message(ProcessId, const net::MessagePtr&) override { ++got; }
  } a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.send(pa, pb, net::make_msg<IntMsg>(1));
  engine.schedule(usec(10), [&] { network.set_link(pa, pb, false); });
  engine.run();
  EXPECT_EQ(b.got, 0);
}

TEST(NetLinks, DirectionalCutBlocksOnlyOneWay) {
  sim::Engine engine;
  net::Network network{engine, {}, 1};
  struct Sink : net::Actor {
    int got = 0;
    void on_message(ProcessId, const net::MessagePtr&) override { ++got; }
  } a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.set_link_directed(pa, pb, false);
  EXPECT_FALSE(network.link_up(pa, pb));
  EXPECT_TRUE(network.link_up(pb, pa));
  network.send(pa, pb, net::make_msg<IntMsg>(1));
  network.send(pb, pa, net::make_msg<IntMsg>(2));
  engine.run();
  EXPECT_EQ(b.got, 0);  // a -> b is cut
  EXPECT_EQ(a.got, 1);  // b -> a still delivers
  // The symmetric set_link(true) restores both directions.
  network.set_link(pa, pb, true);
  network.send(pa, pb, net::make_msg<IntMsg>(3));
  engine.run();
  EXPECT_EQ(b.got, 1);
}

TEST(NetLinks, HaltedNodeIsSilentWithoutNetworkCrash) {
  // Regression: a halted GroupNode used to keep serving reliable-multicast
  // floods, TsQuery and direct messages because only the Paxos handler
  // checked halted — a "crashed" replica was only dead if the test also cut
  // the network. halt_node() alone must silence the whole node.
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  // Halt a non-leader so the group keeps sequencing without re-election.
  std::size_t victim = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (!f.node(0, r).is_leader()) victim = r;
  }
  ASSERT_LT(victim, 3u);
  f.node(0, victim).halt_node();
  EXPECT_TRUE(f.node(0, victim).halted());

  const std::size_t live = (victim + 1) % 3;
  f.node(0, live).rmcast({GroupId{0}}, net::make_msg<IntMsg>(9));
  f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(10));
  f.engine.run_for(msec(300));

  EXPECT_GE(f.node(0, live).rmdelivered.size(), 1u);
  EXPECT_GE(f.node(0, live).amdelivered.size(), 1u);
  EXPECT_TRUE(f.node(0, victim).rmdelivered.empty());
  EXPECT_TRUE(f.node(0, victim).amdelivered.empty());
}

TEST(PaxosPartition, IsolatedLeaderIsReplaced) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  // Isolate the current leader from its peers.
  std::size_t leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (f.node(0, r).is_leader()) leader = r;
  }
  ASSERT_LT(leader, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != leader) f.network.set_link(f.node(0, leader).pid(), f.node(0, r).pid(), false);
  }
  f.engine.run_for(sec(2));
  std::size_t new_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != leader && f.node(0, r).is_leader()) new_leader = r;
  }
  ASSERT_LT(new_leader, 3u) << "majority side did not elect a replacement";

  // The majority side makes progress.
  f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(5));
  f.engine.run_for(msec(300));
  EXPECT_EQ(f.node(0, new_leader).amdelivered.size(), 1u);
}

TEST(PaxosPartition, HealedLeaderStepsDownAndCatchesUp) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  std::size_t old_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (f.node(0, r).is_leader()) old_leader = r;
  }
  ASSERT_LT(old_leader, 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != old_leader) {
      f.network.set_link(f.node(0, old_leader).pid(), f.node(0, r).pid(), false);
    }
  }
  f.engine.run_for(sec(2));
  // Decide values on the majority side while the old leader is isolated.
  for (int i = 0; i < 5; ++i) {
    f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(i));
  }
  f.engine.run_for(msec(500));

  // Heal; the old leader must adopt the new ballot and learn the decisions.
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != old_leader) {
      f.network.set_link(f.node(0, old_leader).pid(), f.node(0, r).pid(), true);
    }
  }
  f.engine.run_for(sec(2));
  EXPECT_EQ(f.node(0, old_leader).amdelivered.size(), 5u);
  // All replicas agree on the sequence.
  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_EQ(f.node(0, r).amdelivered.size(), f.node(0, 0).amdelivered.size());
    for (std::size_t i = 0; i < f.node(0, 0).amdelivered.size(); ++i) {
      EXPECT_EQ(f.node(0, r).amdelivered[i].id, f.node(0, 0).amdelivered[i].id);
    }
  }
  // Exactly one leader after healing.
  int leaders = 0;
  for (std::size_t r = 0; r < 3; ++r) leaders += f.node(0, r).is_leader();
  EXPECT_EQ(leaders, 1);
}

TEST(DssmrPartition, OperationsResumeAfterOracleHeals) {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  cfg.client_cache = false;  // force oracle involvement on every op
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t i = 0; i < 4; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{7, ""});
  }
  d.start();
  d.settle();

  // Cut the clients off from the whole oracle group.
  std::vector<ProcessId> clients_pids, oracle_pids;
  for (std::size_t c = 0; c < d.client_count(); ++c) clients_pids.push_back(d.client(c).pid());
  for (std::size_t r = 0; r < 3; ++r) oracle_pids.push_back(d.oracle(r).pid());
  d.network().partition_sets(clients_pids, oracle_pids, false);

  bool done = false;
  smr::ReplyCode rc = ReplyCode::kNok;
  d.client(0).issue(kv_get(VarId{0}), [&](ReplyCode c, const net::MessagePtr&) {
    done = true;
    rc = c;
  });
  d.engine().run_for(sec(1));
  EXPECT_FALSE(done);  // consult cannot reach the oracle

  d.network().partition_sets(clients_pids, oracle_pids, true);
  d.engine().run_for(sec(2));
  EXPECT_TRUE(done);  // client retransmission gets through after the heal
  EXPECT_EQ(rc, ReplyCode::kOk);
}

TEST(PaxosPartition, LeaderKillThenRestartRelearnsLog) {
  Fabric f{1, 3, 1};
  f.engine.run_for(msec(50));
  std::size_t old_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (f.node(0, r).is_leader()) old_leader = r;
  }
  ASSERT_LT(old_leader, 3u);

  // Full crash: network cut + node halted.
  f.network.crash(f.node(0, old_leader).pid());
  f.node(0, old_leader).halt_node();
  f.engine.run_for(sec(2));

  std::size_t new_leader = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (r != old_leader && f.node(0, r).is_leader()) new_leader = r;
  }
  ASSERT_LT(new_leader, 3u) << "surviving majority did not elect a replacement";

  // Decide a batch of messages the dead replica never saw.
  for (int i = 0; i < 5; ++i) {
    f.clients[0]->amcast({GroupId{0}}, net::make_msg<IntMsg>(i));
  }
  f.engine.run_for(msec(500));
  ASSERT_EQ(f.node(0, new_leader).amdelivered.size(), 5u);
  EXPECT_TRUE(f.node(0, old_leader).amdelivered.empty());

  // Restart: rejoin as follower, re-learn the missed log via catch-up.
  f.network.recover(f.node(0, old_leader).pid());
  f.node(0, old_leader).restart_node();
  EXPECT_FALSE(f.node(0, old_leader).halted());
  f.engine.run_for(sec(2));

  ASSERT_EQ(f.node(0, old_leader).amdelivered.size(), 5u)
      << "restarted replica did not re-learn the log";
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.node(0, old_leader).amdelivered[i].id,
              f.node(0, new_leader).amdelivered[i].id);
  }
}

/// Shared body for the oracle-member-crash scenario so determinism can be
/// asserted by running it twice.
std::pair<std::uint64_t, std::uint64_t> run_oracle_member_crash() {
  auto cfg = small_config(2, Strategy::kDssmr, 2);
  cfg.client_cache = false;  // every op consults the oracle
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  for (std::size_t i = 0; i < 4; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{7, ""});
  }
  d.start();
  d.settle();

  // Crash a non-leader oracle replica; consults must keep flowing.
  std::size_t victim = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    if (!d.oracle(r).is_leader()) victim = r;
  }
  EXPECT_LT(victim, 3u);
  d.network().crash(d.oracle(victim).pid());
  d.oracle(victim).halt_node();

  std::uint64_t ok = 0;
  for (int i = 0; i < 6; ++i) {
    if (run_op(d, i % 2, kv_get(VarId{static_cast<std::uint64_t>(i) % 4})) ==
        ReplyCode::kOk) {
      ++ok;
    }
  }

  d.network().recover(d.oracle(victim).pid());
  d.oracle(victim).restart_node();
  d.engine().run_for(sec(2));
  EXPECT_EQ(run_op(d, 0, kv_get(VarId{1})), ReplyCode::kOk);
  EXPECT_TRUE(d.audit_consistency().empty());
  return {ok, d.total_executed()};
}

TEST(DssmrPartition, OracleMemberCrashStaysLiveAndDeterministic) {
  const auto first = run_oracle_member_crash();
  EXPECT_EQ(first.first, 6u);  // all ops succeed with the oracle majority up
  const auto second = run_oracle_member_crash();
  EXPECT_EQ(first, second) << "same seed + same fault should replay identically";
}

}  // namespace
}  // namespace dssmr
