// End-to-end determinism guarantees the perf work must not break:
//   1. the same config + seed produces byte-identical run-record JSON on
//      repeated runs in one process, and
//   2. the parallel sweep runner (harness/sweep.h) produces results identical
//      to a serial sweep, independent of thread count and scheduling.
// Together these back the benches' promise that `--jobs N` output is
// byte-for-byte the same as a serial run.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "stats/run_record.h"

namespace dssmr::harness {
namespace {

ChirperRunConfig small_config(std::uint64_t seed) {
  ChirperRunConfig cfg;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.warmup = msec(100);
  cfg.measure = msec(300);
  cfg.seed = seed;
  return cfg;
}

std::string record_json(const ChirperRunConfig& cfg, const RunResult& r) {
  std::ostringstream os;
  stats::write_run_records(os, "determinism_test", {make_run_record(cfg, r)});
  return os.str();
}

TEST(Determinism, SameSeedSameRunRecordBytes) {
  const ChirperRunConfig cfg = small_config(77);
  const std::string first = record_json(cfg, run_chirper(cfg));
  const std::string second = record_json(cfg, run_chirper(cfg));
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedsActuallyDiffer) {
  // Guards against the identity test above passing vacuously (e.g. the seed
  // being ignored and every run producing the same canned output).
  const ChirperRunConfig a = small_config(77);
  const ChirperRunConfig b = small_config(78);
  EXPECT_NE(record_json(a, run_chirper(a)), record_json(b, run_chirper(b)));
}

TEST(Determinism, ParallelSweepMatchesSerial) {
  std::vector<ChirperRunConfig> cfgs;
  for (std::uint64_t s = 90; s < 94; ++s) cfgs.push_back(small_config(s));

  const std::vector<RunResult> serial = run_sweep(cfgs, 1);
  const std::vector<RunResult> parallel = run_sweep(cfgs, 4);
  ASSERT_EQ(serial.size(), parallel.size());

  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Full-strength check: the serialized run records (every counter,
    // histogram bucket, and time series) must match byte-for-byte.
    EXPECT_EQ(record_json(cfgs[i], serial[i]), record_json(cfgs[i], parallel[i]))
        << "sweep point " << i << " diverged between serial and --jobs 4";
  }
}

TEST(Determinism, ParallelMapPreservesSubmissionOrder) {
  const auto out = parallel_map(16, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Determinism, ParallelForPropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace dssmr::harness
