// Fine-grained oracle behaviour, observed through the full stack: prophecy
// contents, destination recommendations, hint accounting, signal-gated
// create replies.
#include <gtest/gtest.h>

#include "core/dynastar_policy.h"
#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/dssmr_fixture.h"

namespace dssmr::core {
namespace {

using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

/// A test client that exposes raw consult/prophecy interaction.
class ProbingClient : public multicast::ClientNode {
 public:
  std::vector<std::shared_ptr<const smr::ProphecyMsg>> prophecies;

  void consult(GroupId oracle, const smr::Command& cmd) {
    const MsgId id = fresh_id();
    amcast_with_id(id, {oracle}, net::make_msg<smr::ConsultMsg>(id, cmd));
  }

 protected:
  void on_reply(ProcessId, const net::MessagePtr& m) override {
    if (auto p = std::dynamic_pointer_cast<const smr::ProphecyMsg>(m)) {
      prophecies.push_back(std::move(p));
    }
  }
};

struct OracleFixture : ::testing::Test {
  OracleFixture()
      : d(small_config(2, Strategy::kDssmr, 1), kv::kv_app_factory(),
          [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); }) {
    for (std::size_t i = 0; i < 6; ++i) {
      d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    }
    d.start();
    d.settle();
    d.network().add_process(probe, 0);
    probe.init_client_node(d.network(), directory());
  }

  const multicast::Directory& directory() {
    // The probing client reuses the deployment's directory via a client proxy.
    return d.client(0).directory();
  }

  const smr::ProphecyMsg& last_prophecy() {
    DSSMR_ASSERT(!probe.prophecies.empty());
    return *probe.prophecies.back();
  }

  void run_until_prophecy(std::size_t count) {
    const Time deadline = d.engine().now() + sec(5);
    while (probe.prophecies.size() < count && d.engine().now() < deadline) {
      d.engine().run_for(msec(5));
    }
    ASSERT_EQ(probe.prophecies.size(), count);
  }

  Deployment d;
  ProbingClient probe;
};

TEST_F(OracleFixture, ProphecyListsEveryVariableLocation) {
  smr::Command cmd = kv_sum({VarId{0}, VarId{1}, VarId{2}}, VarId{0});
  probe.consult(d.oracle_gid(), cmd);
  run_until_prophecy(1);
  const auto& p = last_prophecy();
  EXPECT_EQ(p.code, ReplyCode::kOk);
  ASSERT_EQ(p.locations.size(), 3u);
  for (const auto& [v, loc] : p.locations) {
    EXPECT_EQ(loc, d.partition_gid(v.value % 2));
  }
  // Two of three variables on partition 0 -> most-held recommends partition 0.
  EXPECT_EQ(p.dest, d.partition_gid(0));
  EXPECT_FALSE(p.oracle_moved);
}

TEST_F(OracleFixture, SinglePartitionProphecyHasNoMoveDestNeeded) {
  probe.consult(d.oracle_gid(), kv_get(VarId{0}));
  run_until_prophecy(1);
  const auto& p = last_prophecy();
  EXPECT_EQ(p.code, ReplyCode::kOk);
  ASSERT_EQ(p.locations.size(), 1u);
  EXPECT_EQ(p.dest, d.partition_gid(0));
}

TEST_F(OracleFixture, UnknownVariableProphecyIsNok) {
  probe.consult(d.oracle_gid(), kv_get(VarId{555}));
  run_until_prophecy(1);
  EXPECT_EQ(last_prophecy().code, ReplyCode::kNok);
  EXPECT_TRUE(last_prophecy().locations.empty());
}

TEST_F(OracleFixture, CreateProphecyAssignsAPartition) {
  probe.consult(d.oracle_gid(), make_create(VarId{100}));
  run_until_prophecy(1);
  const auto& p = last_prophecy();
  EXPECT_EQ(p.code, ReplyCode::kOk);
  EXPECT_NE(p.dest, kNoGroup);
  // Existing variable -> nok.
  probe.consult(d.oracle_gid(), make_create(VarId{0}));
  run_until_prophecy(2);
  EXPECT_EQ(last_prophecy().code, ReplyCode::kNok);
}

TEST_F(OracleFixture, ConsultsDoNotMutateTheMapping) {
  const auto before = d.oracle(0).mapping().entries();
  probe.consult(d.oracle_gid(), kv_sum({VarId{0}, VarId{1}}, VarId{0}));
  run_until_prophecy(1);
  EXPECT_EQ(d.oracle(0).mapping().entries(), before);
}

TEST_F(OracleFixture, MappingVarCountTracksCreatesAndDeletes) {
  EXPECT_EQ(d.oracle(0).mapping().var_count(), 6u);
  EXPECT_EQ(run_op(d, 0, make_create(VarId{50})), ReplyCode::kOk);
  EXPECT_EQ(d.oracle(0).mapping().var_count(), 7u);
  EXPECT_EQ(run_op(d, 0, make_delete(VarId{50})), ReplyCode::kOk);
  EXPECT_EQ(d.oracle(0).mapping().var_count(), 6u);
}

TEST_F(OracleFixture, OracleBusyTimeAccrues) {
  EXPECT_EQ(run_op(d, 0, kv_get(VarId{0})), ReplyCode::kOk);
  Duration busy = 0;
  for (std::size_t r = 0; r < 3; ++r) busy += d.oracle(r).busy_time();
  EXPECT_GT(busy, 0);
}

TEST(OracleHints, HintsReachEveryOracleReplicaIdentically) {
  auto cfg = small_config(2, Strategy::kDynaStar, 1);
  cfg.client_hints = true;
  cfg.oracle.oracle_issues_moves = true;
  DynaStarPolicy::Config pc;
  pc.repartition_every_hints = 1000000;  // never, for this test
  pc.partitioner.k = 2;
  harness::Deployment d{cfg, kv::kv_app_factory(),
                        [pc] { return std::make_unique<DynaStarPolicy>(pc); }};
  for (std::size_t i = 0; i < 4; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
  }
  d.start();
  d.settle();

  // A command carrying hint edges; the client forwards them after success.
  smr::Command cmd = kv_get(VarId{0});
  cmd.hint_edges = {{VarId{0}, VarId{1}}, {VarId{1}, VarId{2}}};
  EXPECT_EQ(run_op(d, 0, cmd), ReplyCode::kOk);
  d.engine().run_for(msec(200));

  for (std::size_t r = 0; r < 3; ++r) {
    auto& policy = dynamic_cast<DynaStarPolicy&>(d.oracle(r).policy());
    EXPECT_EQ(policy.graph_edge_count(), 2u) << "oracle replica " << r;
  }
}

}  // namespace
}  // namespace dssmr::core
