#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bounded.h"
#include "common/rng.h"
#include "common/types.h"

namespace dssmr {
namespace {

TEST(StrongId, ComparesAndHashes) {
  ProcessId a{1}, b{2}, c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  std::unordered_set<ProcessId> s{a, b, c};
  EXPECT_EQ(s.size(), 2u);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(msec(3), usec(3000));
  EXPECT_EQ(sec(2), msec(2000));
  EXPECT_DOUBLE_EQ(to_seconds(sec(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(5)), 5.0);
}

TEST(Rng, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng r{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng r{9};
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r{13};
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r{17};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.25);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{42};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{19};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(BoundedSet, DedupsWithinWindow) {
  BoundedSet<int> s{4};
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
}

TEST(BoundedSet, EvictsOldest) {
  BoundedSet<int> s{3};
  s.insert(1);
  s.insert(2);
  s.insert(3);
  s.insert(4);  // evicts 1
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_EQ(s.size(), 3u);
}

TEST(BoundedMap, PutFindEvict) {
  BoundedMap<int, std::string> m{2};
  m.put(1, "a");
  m.put(2, "b");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "a");
  m.put(3, "c");  // evicts key 1
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_NE(m.find(2), nullptr);
  EXPECT_NE(m.find(3), nullptr);
}

TEST(BoundedMap, OverwriteDoesNotGrow) {
  BoundedMap<int, int> m{2};
  m.put(1, 10);
  m.put(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(1), 20);
}

}  // namespace
}  // namespace dssmr
