#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/bounded.h"
#include "common/flat_map.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/types.h"

namespace dssmr {
namespace {

TEST(StrongId, ComparesAndHashes) {
  ProcessId a{1}, b{2}, c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  std::unordered_set<ProcessId> s{a, b, c};
  EXPECT_EQ(s.size(), 2u);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(msec(3), usec(3000));
  EXPECT_EQ(sec(2), msec(2000));
  EXPECT_DOUBLE_EQ(to_seconds(sec(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(5)), 5.0);
}

TEST(Rng, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng r{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng r{9};
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r{13};
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r{17};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.25);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{42};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{19};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(BoundedSet, DedupsWithinWindow) {
  BoundedSet<int> s{4};
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
}

TEST(BoundedSet, EvictsOldest) {
  BoundedSet<int> s{3};
  s.insert(1);
  s.insert(2);
  s.insert(3);
  s.insert(4);  // evicts 1
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_EQ(s.size(), 3u);
}

TEST(BoundedMap, PutFindEvict) {
  BoundedMap<int, std::string> m{2};
  m.put(1, "a");
  m.put(2, "b");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "a");
  m.put(3, "c");  // evicts key 1
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_NE(m.find(2), nullptr);
  EXPECT_NE(m.find(3), nullptr);
}

TEST(BoundedMap, OverwriteDoesNotGrow) {
  BoundedMap<int, int> m{2};
  m.put(1, 10);
  m.put(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(1), 20);
}

TEST(FlatMap, InsertFindErase) {
  common::FlatMap<VarId, GroupId> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(VarId{1}), m.end());
  m[VarId{1}] = GroupId{10};
  m[VarId{2}] = GroupId{20};
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(VarId{1}));
  ASSERT_NE(m.find(VarId{2}), m.end());
  EXPECT_EQ(m.find(VarId{2})->second, GroupId{20});
  EXPECT_TRUE(m.erase(VarId{1}));
  EXPECT_FALSE(m.erase(VarId{1}));
  EXPECT_FALSE(m.contains(VarId{1}));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  common::FlatMap<std::uint64_t, Time> m;
  EXPECT_EQ(m[7], 0);  // value-initialized, like unordered_map
  m[7] = usec(5);
  EXPECT_EQ(m[7], usec(5));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EmplaceReportsInsertion) {
  common::FlatMap<VarId, GroupId> m;
  auto [it1, fresh1] = m.emplace(VarId{3}, GroupId{1});
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, GroupId{1});
  auto [it2, fresh2] = m.emplace(VarId{3}, GroupId{2});
  EXPECT_FALSE(fresh2);  // existing entry untouched, like unordered_map
  EXPECT_EQ(it2->second, GroupId{1});
}

TEST(FlatMap, IterationCoversAllEntries) {
  common::FlatMap<VarId, GroupId> m;
  for (std::uint64_t i = 0; i < 100; ++i) m[VarId{i}] = GroupId{static_cast<std::uint32_t>(i)};
  std::set<std::uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k.value, v.value);
    seen.insert(k.value);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(FlatMap, EqualityIsOrderIndependent) {
  common::FlatMap<VarId, GroupId> a, b;
  b.reserve(512);  // different table size, same contents
  for (std::uint64_t i = 0; i < 50; ++i) {
    a[VarId{i}] = GroupId{1};
    b[VarId{49 - i}] = GroupId{1};
  }
  EXPECT_EQ(a, b);
  b[VarId{7}] = GroupId{2};
  EXPECT_NE(a, b);
}

TEST(FlatMap, ReserveAvoidsRehash) {
  common::FlatMap<VarId, GroupId> m;
  m.reserve(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) m[VarId{i}] = GroupId{0};
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(m.contains(VarId{i}));
}

TEST(FlatMap, MatchesUnorderedMapUnderChurn) {
  // Reference-model stress: random insert/overwrite/erase/clear against
  // std::unordered_map, with lookups after every step. Backward-shift
  // deletion is the subtle part — erase-heavy churn exercises it.
  common::FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng{23};
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t k = rng.below(256);  // dense keys -> long probe chains
    switch (rng.below(4)) {
      case 0:
      case 1:
        flat[k] = step;
        ref[k] = static_cast<std::uint64_t>(step);
        break;
      case 2:
        EXPECT_EQ(flat.erase(k), ref.erase(k) > 0);
        break;
      case 3: {
        auto fit = flat.find(k);
        auto rit = ref.find(k);
        ASSERT_EQ(fit != flat.end(), rit != ref.end());
        if (rit != ref.end()) EXPECT_EQ(fit->second, rit->second);
        break;
      }
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(it->second, v);
  }
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_FALSE(flat.contains(1));
}

TEST(FlatMap, EraseByIterator) {
  common::FlatMap<VarId, GroupId> m;
  m[VarId{1}] = GroupId{1};
  m[VarId{2}] = GroupId{2};
  m.erase(m.find(VarId{1}));
  EXPECT_FALSE(m.contains(VarId{1}));
  EXPECT_TRUE(m.contains(VarId{2}));
}

TEST(Pool, ReusesFreedBlocks) {
  const auto before = common::Pool::stats();
  void* a = common::Pool::allocate(64);
  common::Pool::deallocate(a, 64);
  void* b = common::Pool::allocate(64);
  EXPECT_EQ(a, b);  // same size class, LIFO free list
  common::Pool::deallocate(b, 64);
  const auto after = common::Pool::stats();
  EXPECT_GE(after.reused, before.reused + 1);
}

TEST(Pool, LargeBlocksBypassThePool) {
  void* p = common::Pool::allocate(4096);
  ASSERT_NE(p, nullptr);
  common::Pool::deallocate(p, 4096);
}

TEST(PoolAllocator, WorksWithAllocateShared) {
  struct Payload {
    std::uint64_t a, b;
  };
  auto sp = std::allocate_shared<Payload>(common::PoolAllocator<Payload>{});
  sp->a = 1;
  sp->b = 2;
  auto sp2 = sp;
  sp.reset();
  EXPECT_EQ(sp2->a + sp2->b, 3u);
}

}  // namespace
}  // namespace dssmr
