// Client-proxy behaviour details: cache lifecycle, hint forwarding gating,
// strategy labels, timeout-driven retransmission.
#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/command.h"
#include "smr/kv.h"
#include "testing/cluster.h"
#include "testing/dssmr_fixture.h"

namespace dssmr::core {
namespace {

using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

std::unique_ptr<Deployment> deployment(harness::DeploymentConfig cfg, std::size_t vars = 6) {
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  for (std::size_t i = 0; i < vars; ++i) {
    d->preload_var(VarId{i}, d->partition_gid(i % cfg.partitions),
                   kv::KvValue{static_cast<std::int64_t>(i), ""});
  }
  d->start();
  d->settle();
  return d;
}

TEST(ClientProxy, StrategyNames) {
  EXPECT_STREQ(to_string(Strategy::kStaticSsmr), "S-SMR");
  EXPECT_STREQ(to_string(Strategy::kDssmr), "DS-SMR");
  EXPECT_STREQ(to_string(Strategy::kDynaStar), "DynaStar");
}

TEST(ClientProxy, CacheStartsEmptyAndFillsFromProphecies) {
  auto d = deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(d->client(0).cached_location(VarId{0}), std::nullopt);
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0})), ReplyCode::kOk);
  EXPECT_EQ(d->client(0).cached_location(VarId{0}), d->partition_gid(0));
  // Another client's cache is unaffected.
  EXPECT_EQ(d->client(1).cached_location(VarId{0}), std::nullopt);
}

TEST(ClientProxy, MoveUpdatesCacheForAllMovedVars) {
  auto d = deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{2}, VarId{1}}, VarId{1})), ReplyCode::kOk);
  // All three collocated on partition 0 (most-held); the mover's cache knows.
  for (VarId v : {VarId{0}, VarId{1}, VarId{2}}) {
    EXPECT_EQ(d->client(0).cached_location(v), d->partition_gid(0));
  }
}

TEST(ClientProxy, NokDoesNotPoisonCache) {
  auto d = deployment(small_config(2, Strategy::kDssmr));
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{77})), ReplyCode::kNok);
  EXPECT_EQ(d->client(0).cached_location(VarId{77}), std::nullopt);
}

TEST(ClientProxy, HintsOnlySentWhenEnabled) {
  auto cfg = small_config(2, Strategy::kDssmr);
  cfg.client_hints = false;
  auto d = deployment(cfg);
  smr::Command cmd = kv_get(VarId{0});
  cmd.hint_edges = {{VarId{0}, VarId{1}}};
  EXPECT_EQ(run_op(*d, 0, cmd), ReplyCode::kOk);
  d->engine().run_for(msec(200));
  EXPECT_EQ(d->metrics().counter("client.hints"), 0u);
  EXPECT_EQ(d->metrics().counter("oracle.hints"), 0u);
}

TEST(ClientProxy, TimeoutsRetransmitUntilAnswered) {
  // Latency above the client timeout: progress must come from retransmission
  // (and the reply caches make the retransmissions harmless).
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.client_timeout = msec(25);
  cfg.net.intra_rack_latency = msec(10);
  cfg.net.inter_rack_latency = msec(18);
  auto d = deployment(cfg);
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_add(VarId{0}, 3), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 3);
  EXPECT_GT(d->metrics().counter("client.timeouts"), 0u);
  // Despite duplicated submissions, the add applied once.
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 3);
}

TEST(ClientProxy, SequentialOpsReuseTheProxy) {
  auto d = deployment(small_config(2, Strategy::kDssmr));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(run_op(*d, 0, kv_add(VarId{0}, 1)), ReplyCode::kOk);
    EXPECT_FALSE(d->client(0).busy());
  }
  net::MessagePtr reply;
  EXPECT_EQ(run_op(*d, 0, kv_get(VarId{0}), &reply), ReplyCode::kOk);
  EXPECT_EQ(kv_num(reply), 20);
}

// Regression: a failed move (non-kOk reply) used to be dropped on the floor in
// kAwaitMove — the timeout then replayed the identical move id forever, the
// destination's cached kRetry reply came back forever, and the client never
// reached the S-SMR fallback. The phantom variable below is known only to the
// oracle, so every move the oracle prophesies is doomed to a partial install.
TEST(ClientProxy, FailedMoveRetriesThenFallsBack) {
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.trace = true;
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  d->preload_var(VarId{1}, d->partition_gid(1), kv::KvValue{7, ""});
  // Phantom: the oracle believes VarId{5} lives on partition 0, but no
  // partition actually holds it — a permanently stale mapping.
  for (std::size_t r = 0; r < cfg.oracle_replicas; ++r) {
    d->oracle(r).preload(VarId{5}, d->partition_gid(0));
  }
  d->start();
  d->settle();

  bool done = false;
  smr::ReplyCode rc = ReplyCode::kNok;
  d->client(0).issue(kv_sum({VarId{1}, VarId{5}}, VarId{1}),
                     [&](smr::ReplyCode c, const net::MessagePtr&) {
                       done = true;
                       rc = c;
                     });
  const Time deadline = d->engine().now() + sec(30);
  while (!done && d->engine().now() < deadline) {
    d->engine().run_until(std::min<Time>(d->engine().now() + msec(10), deadline));
  }
  ASSERT_TRUE(done) << "client wedged replaying a failed move";
  EXPECT_EQ(rc, ReplyCode::kOk);
  EXPECT_GE(d->metrics().counter("client.retries"), 1u);
  EXPECT_EQ(d->metrics().counter("client.fallbacks"), 1u);

  const stats::Trace& trace = d->metrics().trace();
  EXPECT_GE(trace.count(stats::TraceEvent::kMoveFailed), 1u);
  EXPECT_GE(trace.count(stats::TraceEvent::kRetry), 1u);
  EXPECT_EQ(trace.count(stats::TraceEvent::kFallback), 1u);
}

// Regression: after a move the client used to cache ALL the command's
// variables at the destination, even though the destination gives up its claim
// on variables no source shipped. The move reply now carries the installed
// set, and only that set may enter the cache.
TEST(ClientProxy, FailedMoveCachesOnlyInstalledVars) {
  auto cfg = small_config(2, Strategy::kDssmr, 1);
  cfg.trace = true;
  cfg.client_max_retries = -1;  // first failed move goes straight to fallback
  auto d = std::make_unique<Deployment>(
      cfg, kv::kv_app_factory(),
      [] { return std::make_unique<DssmrPolicy>(DssmrPolicy::DestRule::kMostHeld); });
  d->preload_var(VarId{1}, d->partition_gid(1), kv::KvValue{7, ""});
  for (std::size_t r = 0; r < cfg.oracle_replicas; ++r) {
    d->oracle(r).preload(VarId{5}, d->partition_gid(0));
  }
  d->start();
  d->settle();

  EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{1}, VarId{5}}, VarId{1})), ReplyCode::kOk);
  EXPECT_EQ(d->metrics().counter("client.fallbacks"), 1u);
  EXPECT_GE(d->metrics().trace().count(stats::TraceEvent::kMoveFailed), 1u);
  // The phantom never landed anywhere: caching it would poison the cache.
  EXPECT_EQ(d->client(0).cached_location(VarId{5}), std::nullopt);
  // The real variable did install at the move destination and may be cached.
  EXPECT_TRUE(d->client(0).cached_location(VarId{1}).has_value());
}

// At-most-once even after reply-cache eviction: a duplicate access whose
// reply-cache entry was already evicted must be caught by the per-client
// watermark — dropped silently below it, answered from the stored final
// reply at it, and never re-executed. The real client proxy cannot produce
// this ordering (total order delivers its retransmissions before any later
// command), so the test forges CommandMsg deliveries from a bare multicast
// client with hand-picked logical command ids.
TEST(ClientProxy, DuplicateAfterReplyCacheEvictionExecutesOnce) {
  auto cfg = small_config(1, Strategy::kDssmr, 1);
  cfg.server.reply_cache_capacity = 1;  // every new reply evicts the previous
  auto d = deployment(cfg, /*vars=*/2);

  RecordingClient rc;
  d->network().add_process(rc, 0);
  rc.init_client_node(d->network(), d->server(0, 0).directory());

  const auto forge = [&](std::uint64_t seq, smr::Command cmd) {
    cmd.requester = rc.pid();
    cmd.id = MsgId{(static_cast<std::uint64_t>(rc.pid().value) << 32) | seq};
    rc.amcast({d->partition_gid(0)}, net::make_msg<smr::CommandMsg>(std::move(cmd)));
    d->engine().run_for(msec(50));
  };
  const auto last_num = [&] {
    const auto& r = net::msg_as<smr::ReplyMsg>(rc.replies.back());
    EXPECT_EQ(r.code, ReplyCode::kOk);
    return kv_num(r.app_reply);
  };

  forge(1, kv_add(VarId{0}, 3));
  ASSERT_EQ(rc.replies.size(), 1u);
  EXPECT_EQ(last_num(), 3);

  // A second command evicts the add's entry from the capacity-1 reply cache...
  forge(2, kv_get(VarId{0}));
  ASSERT_EQ(rc.replies.size(), 2u);
  EXPECT_EQ(last_num(), 3);

  // ...so this stale duplicate misses the cache. Below the watermark it must
  // be dropped without a reply — and without executing the add again.
  forge(1, kv_add(VarId{0}, 3));
  EXPECT_EQ(rc.replies.size(), 2u);

  // A duplicate of the watermark command itself gets the stored reply resent.
  forge(2, kv_get(VarId{0}));
  ASSERT_EQ(rc.replies.size(), 3u);
  EXPECT_EQ(last_num(), 3);

  // Fresh read confirms the add applied exactly once.
  forge(3, kv_get(VarId{0}));
  ASSERT_EQ(rc.replies.size(), 4u);
  EXPECT_EQ(last_num(), 3);
}

TEST(ClientProxy, StaticStrategyNeverTouchesTheOracle) {
  auto d = deployment(small_config(2, Strategy::kStaticSsmr));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(run_op(*d, 0, kv_sum({VarId{0}, VarId{1}}, VarId{0})), ReplyCode::kOk);
  }
  EXPECT_EQ(d->metrics().counter("client.consults"), 0u);
  EXPECT_EQ(d->metrics().counter("oracle.consults"), 0u);
  EXPECT_EQ(d->metrics().counter("client.moves"), 0u);
}

}  // namespace
}  // namespace dssmr::core
