#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "stats/histogram.h"
#include "stats/json_writer.h"
#include "stats/metrics.h"
#include "stats/run_record.h"
#include "stats/span.h"
#include "stats/timeseries.h"
#include "stats/trace.h"

namespace dssmr::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0.0), 0);
  // Small values (< 64) land in exact buckets.
  EXPECT_EQ(h.percentile(1.0), 63);
}

TEST(Histogram, PercentileBoundedRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  const auto p50 = static_cast<double>(h.percentile(0.50));
  const auto p99 = static_cast<double>(h.percentile(0.99));
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.02);
}

TEST(Histogram, MeanAndStddev) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_NEAR(h.stddev(), 8.1649, 0.001);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.record((i * 7919) % 100000);
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, CdfThinningKeepsEnds) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  auto cdf = h.cdf(10);
  EXPECT_LE(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(5, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.5), 5);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.record(1'000'000'000'000LL);
  EXPECT_EQ(h.count(), 1u);
  const double rel = std::abs(static_cast<double>(h.percentile(1.0)) - 1e12) / 1e12;
  EXPECT_LT(rel, 0.02);
}

TEST(Histogram, PercentileExtremesAreExact) {
  // q=0 and q=1 must return the exact recorded extremes, not the midpoint of
  // the log bucket they landed in.
  Histogram h;
  h.record(1000);
  h.record(1500);
  EXPECT_EQ(h.percentile(0.0), 1000);
  EXPECT_EQ(h.percentile(1.0), 1500);
}

TEST(Histogram, PercentileExtremesSingleValue) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.percentile(0.0), 777);
  EXPECT_EQ(h.percentile(1.0), 777);
  EXPECT_EQ(h.percentile(0.5), h.percentile(0.5));  // well-defined in between
}

TEST(Histogram, ThinnedCdfPointsAreUnique) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  auto cdf = h.cdf(10);
  ASSERT_GE(cdf.size(), 2u);
  EXPECT_LE(cdf.size(), 10u);
  // Strictly increasing x — in particular the final point must not be a
  // duplicate of the stride-sampled point before it.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].first, cdf[i].first) << "duplicate/unordered point at " << i;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ThinnedCdfSinglePoint) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i);
  auto cdf = h.cdf(1);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 1.0);  // the kept point is the last one
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts{sec(1)};
  ts.add(usec(500), 1);
  ts.add(msec(999), 1);
  ts.add(sec(1), 5);
  ts.add(sec(2) + 1, 2);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 5);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(3), 0);
  EXPECT_DOUBLE_EQ(ts.total(), 9);
}

TEST(TimeSeries, RateNormalizesPerSecond) {
  TimeSeries ts{msec(500)};
  ts.add(0, 10);
  EXPECT_DOUBLE_EQ(ts.rate(0), 20.0);
}

TEST(TimeSeries, BucketStart) {
  TimeSeries ts{sec(2)};
  EXPECT_EQ(ts.bucket_start(3), sec(6));
}

TEST(TimeSeriesDeathTest, FarFutureTimeFailsLoudly) {
  // A corrupted clock (e.g. an unsigned underflow producing ~2^63 us) must
  // abort with a diagnostic, not resize the bucket vector to oblivion.
  TimeSeries ts{usec(1)};
  const Time absurd = static_cast<Time>(TimeSeries::kMaxBuckets) + sec(1);
  EXPECT_DEATH(ts.add(absurd, 1), "implausibly far");
}

TEST(Metrics, CountersDefaultZero) {
  Metrics m;
  EXPECT_EQ(m.counter("nope"), 0u);
  m.inc("a");
  m.inc("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
}

TEST(Metrics, HistogramsCreateOnUse) {
  Metrics m;
  EXPECT_EQ(m.find_histogram("lat"), nullptr);
  m.histogram("lat").record(7);
  ASSERT_NE(m.find_histogram("lat"), nullptr);
  EXPECT_EQ(m.find_histogram("lat")->count(), 1u);
}

TEST(Metrics, SeriesUseConfiguredWidth) {
  Metrics m{msec(100)};
  m.series("tput").add(msec(150), 1);
  EXPECT_DOUBLE_EQ(m.series("tput").bucket(1), 1);
}

TEST(Metrics, ResetClearsAll) {
  Metrics m;
  m.inc("a");
  m.histogram("h").record(1);
  m.series("s").add(0, 1);
  m.reset();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_EQ(m.find_histogram("h"), nullptr);
  EXPECT_EQ(m.find_series("s"), nullptr);
}

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.field("name", "run");
  w.field("n", std::uint64_t{3});
  w.key("xs");
  w.begin_array();
  w.value(std::int64_t{1});
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"name\": \"run\",\n  \"n\": 3,\n  \"xs\": [\n    1,\n    2.5,\n"
            "    true,\n    null\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json_escaped("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escaped(std::string_view{"\x01", 1}), "\\u0001");
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.field("k\"ey", "v\nal");
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"k\\\"ey\": \"v\\nal\"\n}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[\n  null,\n  null\n]");
}

TEST(Trace, DisabledRecordsNothing) {
  Trace t;
  t.record(TraceEvent::kConsult, 10);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CountsAndSelect) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kConsult, 10, 1, 100);
  t.record(TraceEvent::kRetry, 20, 1, 100, 1);
  t.record(TraceEvent::kRetry, 30, 1, 100, 2);
  t.record(TraceEvent::kFallback, 40, 1, 100, 2);
  EXPECT_EQ(t.count(TraceEvent::kRetry), 2u);
  EXPECT_EQ(t.count(TraceEvent::kFallback), 1u);
  EXPECT_EQ(t.total(), 4u);
  auto retries = t.select(TraceEvent::kRetry);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].t, 20);
  EXPECT_EQ(retries[1].arg, 2);
}

TEST(Trace, CapacityDropsRecordsButKeepsCounts) {
  Trace t;
  t.enable();
  t.set_capacity(2);
  for (int i = 0; i < 5; ++i) t.record(TraceEvent::kAmcastDeliver, i);
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(t.count(TraceEvent::kAmcastDeliver), 5u);
}

TEST(Trace, ClearKeepsEnabledFlag) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kConsult, 1);
  t.clear();
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.total(), 0u);
  t.record(TraceEvent::kConsult, 2);
  EXPECT_EQ(t.total(), 1u);
}

TEST(Trace, WriteJsonlOneLinePerRecord) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kMoveIssued, 5, 9, 42, 1);
  t.record(TraceEvent::kMoveFailed, 6, 3, 42, 1);
  std::ostringstream os;
  t.write_jsonl(os, "my \"run\"");
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("\"event\":\"move_issued\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"move_failed\""), std::string::npos);
  EXPECT_NE(out.find("\"run\":\"my \\\"run\\\"\""), std::string::npos);
}

// Guards the enum / to_string / sentinel triple: adding a TraceEvent without
// a to_string case trips this (the static_assert in trace.h catches a stale
// sentinel at compile time).
TEST(Trace, ToStringCoversEveryEvent) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kTraceEventTypes; ++i) {
    const std::string_view name = to_string(static_cast<TraceEvent>(i));
    EXPECT_NE(name, "unknown") << "TraceEvent " << i << " missing a to_string case";
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kTraceEventTypes) << "duplicate TraceEvent names";
}

TEST(Span, ToStringCoversEveryPhase) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kSpanPhases; ++i) {
    const std::string_view name = to_string(static_cast<SpanPhase>(i));
    EXPECT_NE(name, "unknown") << "SpanPhase " << i << " missing a to_string case";
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kSpanPhases) << "duplicate SpanPhase names";
}

TEST(Span, DisabledStoreRecordsNothing) {
  SpanStore s;
  s.record({.trace_id = 1, .phase = SpanPhase::kConsult, .start = 10, .end = 20});
  EXPECT_TRUE(s.spans().empty());
  EXPECT_EQ(s.count(SpanPhase::kConsult), 0u);
  EXPECT_FALSE(s.has_phase_data());
}

TEST(Span, FoldControlsPhaseHistograms) {
  SpanStore s;
  s.enable();
  s.record({.trace_id = 1, .phase = SpanPhase::kConsult, .start = 10, .end = 25});
  s.record({.trace_id = 1, .phase = SpanPhase::kQueue, .start = 30, .end = 50},
           /*fold=*/false);
  // Both are counted and retained...
  EXPECT_EQ(s.count(SpanPhase::kConsult), 1u);
  EXPECT_EQ(s.count(SpanPhase::kQueue), 1u);
  ASSERT_EQ(s.spans().size(), 2u);
  EXPECT_TRUE(s.spans()[0].folded);
  EXPECT_FALSE(s.spans()[1].folded);
  // ...but only the folded one lands in the phase histograms.
  EXPECT_EQ(s.phase_histogram(SpanPhase::kConsult).count(), 1u);
  EXPECT_EQ(s.phase_histogram(SpanPhase::kConsult).max(), 15);
  EXPECT_EQ(s.phase_histogram(SpanPhase::kQueue).count(), 0u);
  EXPECT_TRUE(s.has_phase_data());
}

TEST(Span, CapacityDropsSpansButKeepsCounts) {
  SpanStore s;
  s.enable();
  s.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    s.record({.trace_id = 1, .phase = SpanPhase::kExecute,
              .start = Time{0}, .end = Time{10}});
  }
  EXPECT_EQ(s.spans().size(), 2u);
  EXPECT_EQ(s.dropped(), 3u);
  EXPECT_EQ(s.count(SpanPhase::kExecute), 5u);
  EXPECT_EQ(s.phase_histogram(SpanPhase::kExecute).count(), 5u);
}

TEST(Span, ClearKeepsEnabledCapacityAndNames) {
  SpanStore s;
  s.enable();
  s.set_group_name(GroupId{0}, "partition 0");
  s.record({.trace_id = 1, .phase = SpanPhase::kReply, .start = 1, .end = 2});
  s.clear();
  EXPECT_TRUE(s.enabled());
  EXPECT_TRUE(s.spans().empty());
  EXPECT_EQ(s.count(SpanPhase::kReply), 0u);
  EXPECT_FALSE(s.has_phase_data());
  EXPECT_EQ(s.group_names().at(0), "partition 0");
}

TEST(SpanQuery, TreeStructureAndSelection) {
  SpanStore s;
  s.enable();
  // Children first, root last (the real recording order: the root span is
  // recorded at command completion with a pre-allocated id).
  const std::uint64_t root_id = s.alloc_id();
  s.record({.trace_id = 7, .parent = root_id, .phase = SpanPhase::kConsult,
            .start = 10, .end = 30});
  s.record({.trace_id = 7, .parent = 0, .phase = SpanPhase::kAmcast,
            .start = 30, .end = 60},
           /*fold=*/false);  // parent 0: attaches to the root
  s.record({.trace_id = 7, .parent = root_id, .phase = SpanPhase::kConsult,
            .start = 5, .end = 9});
  s.record({.trace_id = 9, .phase = SpanPhase::kConsult, .start = 0, .end = 1});
  s.record({.trace_id = 7, .id = root_id, .phase = SpanPhase::kCommand,
            .start = 5, .end = 100});

  SpanQuery q{s};
  EXPECT_EQ(q.trace_ids(), (std::vector<std::uint64_t>{7, 9}));

  const Span* root = q.root(7);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->id, root_id);
  EXPECT_EQ(q.root(9), nullptr);   // no kCommand span
  EXPECT_EQ(q.root(42), nullptr);  // unknown trace

  // trace() and select() are ordered by (start, id).
  const auto all = q.trace(7);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->start, 5);
  const auto consults = q.select(7, SpanPhase::kConsult);
  ASSERT_EQ(consults.size(), 2u);
  EXPECT_EQ(consults[0]->start, 5);
  EXPECT_EQ(consults[1]->start, 10);
  EXPECT_EQ(q.count(7, SpanPhase::kFallback), 0u);

  // Explicit parents and parent-0 spans are both children of the root.
  EXPECT_EQ(q.children(7, root_id).size(), 3u);

  // Folded non-root spans only: the unfolded amcast view doesn't count.
  EXPECT_EQ(q.attributed_total(7), Duration{20 + 4});
}

TEST(Metrics, CounterHandlesAreStableAndShared) {
  Metrics m;
  Counter& h = m.counter_handle("client.ops");
  h.inc();
  h.inc(2);
  // The handle and the string API hit the same counter.
  EXPECT_EQ(m.counter("client.ops"), 3u);
  m.inc("client.ops");
  EXPECT_EQ(h.value(), 4u);
  // Re-interning returns the same object.
  EXPECT_EQ(&m.counter_handle("client.ops"), &h);
  // Creating other counters must not invalidate the handle (map nodes are
  // stable) — written through the old reference, read through a fresh lookup.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";  // built piecewise: "c" + to_string trips a GCC 12
    name += std::to_string(i);  // -Wrestrict false positive (PR105651)
    m.counter_handle(name);
  }
  h.inc();
  EXPECT_EQ(m.counter("client.ops"), 5u);
}

TEST(RunRecord, SerializesSyntheticMetrics) {
  RunRecord rec;
  rec.label = "case-a";
  rec.add_meta("partitions", "2");
  rec.metrics.inc("client.ops", 12);
  rec.metrics.histogram("lat").record(100);
  rec.metrics.histogram("lat").record(200);
  rec.metrics.series("tput").add(0, 3);
  rec.metrics.trace().enable();
  rec.metrics.trace().record(TraceEvent::kConsult, 1);
  std::ostringstream os;
  write_run_records(os, "unit", {rec});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"dssmr.run_record.v7\""), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"case-a\""), std::string::npos);
  EXPECT_NE(json.find("\"partitions\": \"2\""), std::string::npos);
  EXPECT_NE(json.find("\"client.ops\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"consult\": 1"), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check.
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace dssmr::stats
