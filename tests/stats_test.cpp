#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "stats/histogram.h"
#include "stats/json_writer.h"
#include "stats/metrics.h"
#include "stats/run_record.h"
#include "stats/timeseries.h"
#include "stats/trace.h"

namespace dssmr::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0.0), 0);
  // Small values (< 64) land in exact buckets.
  EXPECT_EQ(h.percentile(1.0), 63);
}

TEST(Histogram, PercentileBoundedRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  const auto p50 = static_cast<double>(h.percentile(0.50));
  const auto p99 = static_cast<double>(h.percentile(0.99));
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.02);
}

TEST(Histogram, MeanAndStddev) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_NEAR(h.stddev(), 8.1649, 0.001);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.record((i * 7919) % 100000);
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, CdfThinningKeepsEnds) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  auto cdf = h.cdf(10);
  EXPECT_LE(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(5, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.5), 5);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.record(1'000'000'000'000LL);
  EXPECT_EQ(h.count(), 1u);
  const double rel = std::abs(static_cast<double>(h.percentile(1.0)) - 1e12) / 1e12;
  EXPECT_LT(rel, 0.02);
}

TEST(Histogram, PercentileExtremesAreExact) {
  // q=0 and q=1 must return the exact recorded extremes, not the midpoint of
  // the log bucket they landed in.
  Histogram h;
  h.record(1000);
  h.record(1500);
  EXPECT_EQ(h.percentile(0.0), 1000);
  EXPECT_EQ(h.percentile(1.0), 1500);
}

TEST(Histogram, PercentileExtremesSingleValue) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.percentile(0.0), 777);
  EXPECT_EQ(h.percentile(1.0), 777);
  EXPECT_EQ(h.percentile(0.5), h.percentile(0.5));  // well-defined in between
}

TEST(Histogram, ThinnedCdfPointsAreUnique) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  auto cdf = h.cdf(10);
  ASSERT_GE(cdf.size(), 2u);
  EXPECT_LE(cdf.size(), 10u);
  // Strictly increasing x — in particular the final point must not be a
  // duplicate of the stride-sampled point before it.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].first, cdf[i].first) << "duplicate/unordered point at " << i;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ThinnedCdfSinglePoint) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i);
  auto cdf = h.cdf(1);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 1.0);  // the kept point is the last one
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts{sec(1)};
  ts.add(usec(500), 1);
  ts.add(msec(999), 1);
  ts.add(sec(1), 5);
  ts.add(sec(2) + 1, 2);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 5);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(3), 0);
  EXPECT_DOUBLE_EQ(ts.total(), 9);
}

TEST(TimeSeries, RateNormalizesPerSecond) {
  TimeSeries ts{msec(500)};
  ts.add(0, 10);
  EXPECT_DOUBLE_EQ(ts.rate(0), 20.0);
}

TEST(TimeSeries, BucketStart) {
  TimeSeries ts{sec(2)};
  EXPECT_EQ(ts.bucket_start(3), sec(6));
}

TEST(Metrics, CountersDefaultZero) {
  Metrics m;
  EXPECT_EQ(m.counter("nope"), 0u);
  m.inc("a");
  m.inc("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
}

TEST(Metrics, HistogramsCreateOnUse) {
  Metrics m;
  EXPECT_EQ(m.find_histogram("lat"), nullptr);
  m.histogram("lat").record(7);
  ASSERT_NE(m.find_histogram("lat"), nullptr);
  EXPECT_EQ(m.find_histogram("lat")->count(), 1u);
}

TEST(Metrics, SeriesUseConfiguredWidth) {
  Metrics m{msec(100)};
  m.series("tput").add(msec(150), 1);
  EXPECT_DOUBLE_EQ(m.series("tput").bucket(1), 1);
}

TEST(Metrics, ResetClearsAll) {
  Metrics m;
  m.inc("a");
  m.histogram("h").record(1);
  m.series("s").add(0, 1);
  m.reset();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_EQ(m.find_histogram("h"), nullptr);
  EXPECT_EQ(m.find_series("s"), nullptr);
}

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.field("name", "run");
  w.field("n", std::uint64_t{3});
  w.key("xs");
  w.begin_array();
  w.value(std::int64_t{1});
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"name\": \"run\",\n  \"n\": 3,\n  \"xs\": [\n    1,\n    2.5,\n"
            "    true,\n    null\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json_escaped("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escaped(std::string_view{"\x01", 1}), "\\u0001");
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.field("k\"ey", "v\nal");
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"k\\\"ey\": \"v\\nal\"\n}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[\n  null,\n  null\n]");
}

TEST(Trace, DisabledRecordsNothing) {
  Trace t;
  t.record(TraceEvent::kConsult, 10);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CountsAndSelect) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kConsult, 10, 1, 100);
  t.record(TraceEvent::kRetry, 20, 1, 100, 1);
  t.record(TraceEvent::kRetry, 30, 1, 100, 2);
  t.record(TraceEvent::kFallback, 40, 1, 100, 2);
  EXPECT_EQ(t.count(TraceEvent::kRetry), 2u);
  EXPECT_EQ(t.count(TraceEvent::kFallback), 1u);
  EXPECT_EQ(t.total(), 4u);
  auto retries = t.select(TraceEvent::kRetry);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].t, 20);
  EXPECT_EQ(retries[1].arg, 2);
}

TEST(Trace, CapacityDropsRecordsButKeepsCounts) {
  Trace t;
  t.enable();
  t.set_capacity(2);
  for (int i = 0; i < 5; ++i) t.record(TraceEvent::kAmcastDeliver, i);
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(t.count(TraceEvent::kAmcastDeliver), 5u);
}

TEST(Trace, ClearKeepsEnabledFlag) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kConsult, 1);
  t.clear();
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.total(), 0u);
  t.record(TraceEvent::kConsult, 2);
  EXPECT_EQ(t.total(), 1u);
}

TEST(Trace, WriteJsonlOneLinePerRecord) {
  Trace t;
  t.enable();
  t.record(TraceEvent::kMoveIssued, 5, 9, 42, 1);
  t.record(TraceEvent::kMoveFailed, 6, 3, 42, 1);
  std::ostringstream os;
  t.write_jsonl(os, "my \"run\"");
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("\"event\":\"move_issued\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"move_failed\""), std::string::npos);
  EXPECT_NE(out.find("\"run\":\"my \\\"run\\\"\""), std::string::npos);
}

TEST(RunRecord, SerializesSyntheticMetrics) {
  RunRecord rec;
  rec.label = "case-a";
  rec.add_meta("partitions", "2");
  rec.metrics.inc("client.ops", 12);
  rec.metrics.histogram("lat").record(100);
  rec.metrics.histogram("lat").record(200);
  rec.metrics.series("tput").add(0, 3);
  rec.metrics.trace().enable();
  rec.metrics.trace().record(TraceEvent::kConsult, 1);
  std::ostringstream os;
  write_run_records(os, "unit", {rec});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"dssmr.run_record.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"case-a\""), std::string::npos);
  EXPECT_NE(json.find("\"partitions\": \"2\""), std::string::npos);
  EXPECT_NE(json.find("\"client.ops\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"consult\": 1"), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check.
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace dssmr::stats
