#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/metrics.h"
#include "stats/timeseries.h"

namespace dssmr::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.percentile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0.0), 0);
  // Small values (< 64) land in exact buckets.
  EXPECT_EQ(h.percentile(1.0), 63);
}

TEST(Histogram, PercentileBoundedRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  const auto p50 = static_cast<double>(h.percentile(0.50));
  const auto p99 = static_cast<double>(h.percentile(0.99));
  EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.02);
}

TEST(Histogram, MeanAndStddev) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_NEAR(h.stddev(), 8.1649, 0.001);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.record((i * 7919) % 100000);
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, CdfThinningKeepsEnds) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(i);
  auto cdf = h.cdf(10);
  EXPECT_LE(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(5, 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.5), 5);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.record(1'000'000'000'000LL);
  EXPECT_EQ(h.count(), 1u);
  const double rel = std::abs(static_cast<double>(h.percentile(1.0)) - 1e12) / 1e12;
  EXPECT_LT(rel, 0.02);
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts{sec(1)};
  ts.add(usec(500), 1);
  ts.add(msec(999), 1);
  ts.add(sec(1), 5);
  ts.add(sec(2) + 1, 2);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 5);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 2);
  EXPECT_DOUBLE_EQ(ts.bucket(3), 0);
  EXPECT_DOUBLE_EQ(ts.total(), 9);
}

TEST(TimeSeries, RateNormalizesPerSecond) {
  TimeSeries ts{msec(500)};
  ts.add(0, 10);
  EXPECT_DOUBLE_EQ(ts.rate(0), 20.0);
}

TEST(TimeSeries, BucketStart) {
  TimeSeries ts{sec(2)};
  EXPECT_EQ(ts.bucket_start(3), sec(6));
}

TEST(Metrics, CountersDefaultZero) {
  Metrics m;
  EXPECT_EQ(m.counter("nope"), 0u);
  m.inc("a");
  m.inc("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
}

TEST(Metrics, HistogramsCreateOnUse) {
  Metrics m;
  EXPECT_EQ(m.find_histogram("lat"), nullptr);
  m.histogram("lat").record(7);
  ASSERT_NE(m.find_histogram("lat"), nullptr);
  EXPECT_EQ(m.find_histogram("lat")->count(), 1u);
}

TEST(Metrics, SeriesUseConfiguredWidth) {
  Metrics m{msec(100)};
  m.series("tput").add(msec(150), 1);
  EXPECT_DOUBLE_EQ(m.series("tput").bucket(1), 1);
}

TEST(Metrics, ResetClearsAll) {
  Metrics m;
  m.inc("a");
  m.histogram("h").record(1);
  m.series("s").add(0, 1);
  m.reset();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_EQ(m.find_histogram("h"), nullptr);
  EXPECT_EQ(m.find_series("s"), nullptr);
}

}  // namespace
}  // namespace dssmr::stats
