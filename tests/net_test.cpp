#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace dssmr::net {
namespace {

struct Probe final : Message {
  int tag;
  std::size_t bytes;
  explicit Probe(int t, std::size_t b = 64) : tag(t), bytes(b) {}
  const char* type_name() const override { return "test.probe"; }
  std::size_t size_bytes() const override { return bytes; }
};

class Sink : public Actor {
 public:
  void on_message(ProcessId from, const MessagePtr& m) override {
    received.emplace_back(from, m);
  }
  std::vector<std::pair<ProcessId, MessagePtr>> received;
};

struct NetFixture : ::testing::Test {
  NetFixture() : network(engine, config(), 1) {}
  static NetworkConfig config() {
    NetworkConfig c;
    c.intra_rack_latency = usec(50);
    c.inter_rack_latency = usec(150);
    c.jitter = 0;
    c.bandwidth_bytes_per_usec = 0;  // pure latency unless a test opts in
    return c;
  }
  sim::Engine engine;
  net::Network network;
};

TEST_F(NetFixture, DeliversWithIntraRackLatency) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.send(pa, pb, make_msg<Probe>(1));
  engine.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, pa);
  EXPECT_EQ(engine.now(), usec(50));
}

TEST_F(NetFixture, InterRackIsSlower) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 1);
  network.send(pa, pb, make_msg<Probe>(1));
  engine.run();
  EXPECT_EQ(engine.now(), usec(150));
}

TEST_F(NetFixture, BandwidthAddsPerByteCost) {
  NetworkConfig cfg = config();
  cfg.bandwidth_bytes_per_usec = 100.0;
  sim::Engine e2;
  Network n2(e2, cfg, 1);
  Sink a, b;
  auto pa = n2.add_process(a, 0);
  auto pb = n2.add_process(b, 0);
  n2.send(pa, pb, make_msg<Probe>(1, 10'000));  // 10k bytes @ 100 B/us = 100us
  e2.run();
  EXPECT_EQ(e2.now(), usec(150));
}

TEST_F(NetFixture, FifoPerPair) {
  NetworkConfig cfg = config();
  cfg.jitter = usec(100);  // with jitter, later sends could otherwise overtake
  sim::Engine e2;
  Network n2(e2, cfg, 123);
  Sink a, b;
  auto pa = n2.add_process(a, 0);
  auto pb = n2.add_process(b, 0);
  for (int i = 0; i < 20; ++i) n2.send(pa, pb, make_msg<Probe>(i));
  e2.run();
  ASSERT_EQ(b.received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(msg_as<Probe>(b.received[static_cast<std::size_t>(i)].second).tag, i);
  }
}

TEST_F(NetFixture, SelfSendLoopsBack) {
  Sink a;
  auto pa = network.add_process(a, 0);
  network.send(pa, pa, make_msg<Probe>(9));
  engine.run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(engine.now(), usec(1));
}

TEST_F(NetFixture, CrashedReceiverGetsNothing) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.crash(pb);
  network.send(pa, pb, make_msg<Probe>(1));
  engine.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.stats().messages_dropped, 1u);
}

TEST_F(NetFixture, CrashedSenderSendsNothing) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.crash(pa);
  network.send(pa, pb, make_msg<Probe>(1));
  engine.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, CrashDropsInFlightMessages) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.send(pa, pb, make_msg<Probe>(1));
  // Crash after the send but before delivery.
  engine.schedule(usec(10), [&] { network.crash(pb); });
  engine.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, RecoverRestoresDelivery) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.crash(pb);
  network.recover(pb);
  network.send(pa, pb, make_msg<Probe>(1));
  engine.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetFixture, DropProbabilityLosesMessages) {
  NetworkConfig cfg = config();
  cfg.drop_probability = 0.5;
  sim::Engine e2;
  Network n2(e2, cfg, 99);
  Sink a, b;
  auto pa = n2.add_process(a, 0);
  auto pb = n2.add_process(b, 0);
  for (int i = 0; i < 1000; ++i) n2.send(pa, pb, make_msg<Probe>(i));
  e2.run();
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
}

TEST_F(NetFixture, DropsAreAttributedByCause) {
  Sink a, b, c, d;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  auto pc = network.add_process(c, 0);
  auto pd = network.add_process(d, 0);

  network.crash(pa);
  network.send(pa, pb, make_msg<Probe>(1));  // sender crashed
  network.recover(pa);

  network.crash(pc);
  network.send(pa, pc, make_msg<Probe>(2));  // receiver still crashed at delivery

  network.set_link(pa, pd, false);
  network.send(pa, pd, make_msg<Probe>(3));  // link down at send time
  network.set_link(pa, pd, true);

  engine.run();
  const NetworkStats& s = network.stats();
  EXPECT_EQ(s.dropped_sender_crashed, 1u);
  EXPECT_EQ(s.dropped_receiver_crashed, 1u);
  EXPECT_EQ(s.dropped_link_down, 1u);
  EXPECT_EQ(s.dropped_random, 0u);
  // messages_dropped stays the total of all causes.
  EXPECT_EQ(s.messages_dropped, 3u);
}

TEST_F(NetFixture, RandomDropsAttributedSeparately) {
  NetworkConfig cfg = config();
  cfg.drop_probability = 0.5;
  sim::Engine e2;
  Network n2(e2, cfg, 99);
  Sink a, b;
  auto pa = n2.add_process(a, 0);
  auto pb = n2.add_process(b, 0);
  for (int i = 0; i < 100; ++i) n2.send(pa, pb, make_msg<Probe>(i));
  e2.run();
  EXPECT_GT(n2.stats().dropped_random, 0u);
  EXPECT_EQ(n2.stats().dropped_random, n2.stats().messages_dropped);
  EXPECT_EQ(n2.stats().dropped_random + n2.stats().messages_delivered, 100u);
}

TEST_F(NetFixture, DropProbabilityIsClamped) {
  // Out-of-range probabilities behave like their clamped value instead of
  // invoking whatever Rng::chance does with garbage.
  NetworkConfig cfg = config();
  cfg.drop_probability = 1.5;  // clamped to 1.0 at construction
  sim::Engine e2;
  Network n2(e2, cfg, 7);
  Sink a, b;
  auto pa = n2.add_process(a, 0);
  auto pb = n2.add_process(b, 0);
  n2.send(pa, pb, make_msg<Probe>(1));
  e2.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_DOUBLE_EQ(n2.config().drop_probability, 1.0);

  n2.set_drop_probability(-0.5);  // clamped to 0.0
  EXPECT_DOUBLE_EQ(n2.config().drop_probability, 0.0);
  n2.send(pa, pb, make_msg<Probe>(2));
  e2.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetFixture, MultisendReachesAll) {
  Sink a, b, c;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  auto pc = network.add_process(c, 1);
  network.multisend(pa, {pb, pc}, make_msg<Probe>(5));
  engine.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(NetFixture, StatsCountTraffic) {
  Sink a, b;
  auto pa = network.add_process(a, 0);
  auto pb = network.add_process(b, 0);
  network.send(pa, pb, make_msg<Probe>(1, 100));
  engine.run();
  EXPECT_EQ(network.stats().messages_sent, 1u);
  EXPECT_EQ(network.stats().messages_delivered, 1u);
  EXPECT_EQ(network.stats().bytes_sent, 100u);
}

}  // namespace
}  // namespace dssmr::net
