// Flight-recorder telemetry tests: Recorder unit behavior, run-record v4
// round-trip, windowed/end-of-run tiling guarantees, and the zero-cost
// promise (telemetry off leaves run records byte-identical and telemetry on
// leaves every counter untouched).
#include "stats/recorder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "stats/run_record.h"
#include "testing/tiny_json.h"

namespace dssmr::stats {
namespace {

// ---- Recorder unit tests ----------------------------------------------------

TEST(Recorder, DisabledEntryPointsAreNoOps) {
  Recorder r;
  EXPECT_FALSE(r.enabled());
  r.record_command(msec(5), 0, false);
  r.record_move(msec(5), 1);
  r.record_latency(msec(5), 123);
  r.mark(msec(5), Recorder::MarkKind::kEvent, "ignored");
  r.tick(msec(5));
  EXPECT_TRUE(r.heat().empty());
  EXPECT_TRUE(r.latency_windows().empty());
  EXPECT_TRUE(r.marks().empty());
  EXPECT_TRUE(r.tick_times().empty());
}

TEST(Recorder, HeatBucketsCommandsByIntervalAndPartition) {
  Recorder r;
  r.enable(msec(100), 2);
  r.record_command(msec(10), 0, false);   // bucket 0, single
  r.record_command(msec(150), 0, true);   // bucket 1, multi
  r.record_command(msec(150), 1, false);  // bucket 1, partition 1
  r.record_command(msec(350), 0, false);  // bucket 3 (bucket 2 stays implicit)
  r.record_move(msec(250), 1);            // bucket 2

  ASSERT_EQ(r.heat().size(), 2u);
  const Recorder::PartitionHeat& p0 = r.heat()[0];
  EXPECT_EQ(p0.total_commands, 3u);
  EXPECT_EQ(p0.total_multi, 1u);
  ASSERT_EQ(p0.commands.size(), 4u);
  EXPECT_EQ(p0.commands[0], 1u);
  EXPECT_EQ(p0.commands[1], 1u);
  EXPECT_EQ(p0.commands[2], 0u);
  EXPECT_EQ(p0.commands[3], 1u);
  ASSERT_EQ(p0.multi.size(), 2u);
  EXPECT_EQ(p0.multi[1], 1u);

  const Recorder::PartitionHeat& p1 = r.heat()[1];
  EXPECT_EQ(p1.total_commands, 1u);
  EXPECT_EQ(p1.total_moves, 1u);
  ASSERT_EQ(p1.moves.size(), 3u);
  EXPECT_EQ(p1.moves[2], 1u);

  // Per-bucket sums tile the totals.
  std::uint64_t sum = 0;
  for (std::uint64_t v : p0.commands) sum += v;
  EXPECT_EQ(sum, p0.total_commands);
}

TEST(Recorder, MergedLatencyWindowsEqualOneBigHistogram) {
  Recorder r;
  r.enable(msec(50), 1);
  Histogram reference;
  // Latencies spread over several windows, spanning histogram buckets.
  for (int i = 1; i <= 200; ++i) {
    const std::int64_t lat = 17 * i;
    r.record_latency(msec(i), lat);
    reference.record(lat);
  }
  EXPECT_GT(r.latency_windows().size(), 1u);
  const Histogram merged = r.merged_latency();
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_EQ(merged.min(), reference.min());
  EXPECT_EQ(merged.max(), reference.max());
  EXPECT_EQ(merged.percentile(0.50), reference.percentile(0.50));
  EXPECT_EQ(merged.percentile(0.99), reference.percentile(0.99));
  EXPECT_DOUBLE_EQ(merged.mean(), reference.mean());
}

TEST(Recorder, GaugesSampleOncePerTick) {
  Recorder r;
  r.enable(msec(100), 1);
  double x = 1.0;
  r.register_gauge("x", [&x] { return x; });
  r.tick(msec(100));
  x = 2.5;
  r.tick(msec(200));
  ASSERT_EQ(r.tick_times().size(), 2u);
  ASSERT_EQ(r.gauges().size(), 1u);
  ASSERT_EQ(r.gauges()[0].values.size(), 2u);
  EXPECT_DOUBLE_EQ(r.gauges()[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(r.gauges()[0].values[1], 2.5);
}

TEST(Recorder, CopyKeepsDataDropsCallbacks) {
  Recorder r;
  r.enable(msec(100), 1);
  r.register_gauge("g", [] { return 7.0; });
  r.tick(msec(100));
  r.record_command(msec(10), 0, false);
  r.mark(msec(20), Recorder::MarkKind::kFaultBegin, "crash");

  const Recorder copy = r;  // what RunRecord snapshotting does
  EXPECT_TRUE(copy.enabled());
  ASSERT_EQ(copy.gauges().size(), 1u);
  EXPECT_FALSE(static_cast<bool>(copy.gauges()[0].fn));
  ASSERT_EQ(copy.gauges()[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(copy.gauges()[0].values[0], 7.0);
  EXPECT_EQ(copy.heat()[0].total_commands, 1u);
  ASSERT_EQ(copy.marks().size(), 1u);
  EXPECT_EQ(copy.marks()[0].label, "crash");
  EXPECT_STREQ(to_string(copy.marks()[0].kind), "fault_begin");
}

TEST(RecorderDeathTest, FarFutureTimeFailsLoudly) {
  Recorder r;
  r.enable(usec(1), 1);
  const Time absurd = static_cast<Time>(Recorder::kMaxBuckets) + sec(10);
  EXPECT_DEATH(r.record_command(absurd, 0, false), "exceeds kMaxBuckets");
}

// ---- End-to-end: run records, tiling, zero-cost off -------------------------

harness::ChirperRunConfig tiny_cfg() {
  harness::ChirperRunConfig cfg;
  cfg.strategy = core::Strategy::kDssmr;
  cfg.partitions = 2;
  cfg.clients_per_partition = 3;
  cfg.graph = {.n = 300, .m = 2, .p_triad = 0.8};
  cfg.workload.mix = workload::mixes::kPostOnly;
  cfg.warmup = msec(600);
  cfg.measure = sec(1);
  cfg.seed = 5;
  return cfg;
}

std::string record_json(const harness::ChirperRunConfig& cfg,
                        const harness::RunResult& r) {
  std::vector<RunRecord> runs;
  runs.push_back(harness::make_run_record(cfg, r, "telemetry_test"));
  std::ostringstream os;
  write_run_records(os, "telemetry_test", runs);
  return os.str();
}

TEST(Telemetry, RunRecordV4RoundTripsWithTelemetrySection) {
  auto cfg = tiny_cfg();
  cfg.telemetry = true;
  cfg.telemetry_interval = msec(100);
  cfg.nemesis = "leader-kill-recover";  // fault marks should land on the timeline
  const auto r = harness::run_chirper(cfg);

  const testing::JsonValue doc = testing::JsonParser::parse(record_json(cfg, r));
  EXPECT_EQ(doc.at("schema").str, "dssmr.run_record.v7");
  const testing::JsonValue& run = doc.at("runs").array.at(0);
  EXPECT_EQ(run.at("meta").at("telemetry").str, "on");
  ASSERT_TRUE(run.has("telemetry"));
  const testing::JsonValue& tel = run.at("telemetry");

  EXPECT_EQ(tel.at("interval_us").as_int(), static_cast<std::int64_t>(msec(100)));

  // Gauges: non-empty, every value array aligned with the tick array.
  const std::size_t ticks = tel.at("ticks").array.size();
  EXPECT_GT(ticks, 5u);
  const auto& gauges = tel.at("gauges").object;
  EXPECT_GE(gauges.size(), 8u);
  for (const auto& [name, values] : gauges) {
    EXPECT_EQ(values.array.size(), ticks) << "gauge " << name;
  }
  EXPECT_TRUE(gauges.contains("queue_depth.p0"));
  EXPECT_TRUE(gauges.contains("net.in_flight"));
  EXPECT_TRUE(gauges.contains("oracle.mapped_vars"));

  // Partition heat: one entry per partition, buckets tile the totals, and the
  // totals tile the end-of-run counters (same leader-gated record sites).
  const auto& partitions = tel.at("partitions").array;
  ASSERT_EQ(partitions.size(), cfg.partitions);
  std::uint64_t all_commands = 0;
  std::uint64_t all_multi = 0;
  for (const testing::JsonValue& p : partitions) {
    std::uint64_t sum = 0;
    for (const testing::JsonValue& v : p.at("commands").array) {
      sum += static_cast<std::uint64_t>(v.as_int());
    }
    EXPECT_EQ(sum, static_cast<std::uint64_t>(p.at("total_commands").as_int()));
    all_commands += sum;
    all_multi += static_cast<std::uint64_t>(p.at("total_multi").as_int());
  }
  EXPECT_EQ(all_commands, r.counter("server.single_partition_commands") +
                              r.counter("server.multi_partition_commands"));
  EXPECT_EQ(all_multi, r.counter("server.multi_partition_commands"));

  // Latency windows answer per-window percentiles.
  const auto& windows = tel.at("latency_windows").array;
  EXPECT_GT(windows.size(), 5u);
  bool any_counted = false;
  for (const testing::JsonValue& wnd : windows) {
    if (wnd.at("count").as_int() > 0) {
      any_counted = true;
      EXPECT_GT(wnd.at("p99").as_int(), 0);
    }
  }
  EXPECT_TRUE(any_counted);

  // The nemesis annotated the timeline with a fault window.
  bool fault_begin = false;
  for (const testing::JsonValue& m : tel.at("marks").array) {
    if (m.at("kind").str == "fault_begin") fault_begin = true;
  }
  EXPECT_TRUE(fault_begin);

  // Locality per bucket stays a fraction in [0, 1] when present.
  for (const testing::JsonValue& l : tel.at("locality").array) {
    if (l.kind == testing::JsonValue::Kind::kNull) continue;
    EXPECT_GE(l.number, 0.0);
    EXPECT_LE(l.number, 1.0);
  }
}

TEST(Telemetry, MergedLatencyWindowsTileEndOfRunHistogram) {
  auto cfg = tiny_cfg();
  cfg.telemetry = true;
  const auto r = harness::run_chirper(cfg);
  const Recorder& rec = r.metrics.recorder();
  ASSERT_TRUE(rec.enabled());
  const Histogram* end_of_run = r.metrics.find_histogram("client.latency_us");
  ASSERT_NE(end_of_run, nullptr);
  const Histogram merged = rec.merged_latency();
  EXPECT_EQ(merged.count(), end_of_run->count());
  EXPECT_EQ(merged.percentile(0.50), end_of_run->percentile(0.50));
  EXPECT_EQ(merged.percentile(0.99), end_of_run->percentile(0.99));
  EXPECT_DOUBLE_EQ(merged.mean(), end_of_run->mean());
}

TEST(Telemetry, OffRunsAreByteIdenticalAcrossRepeats) {
  auto cfg = tiny_cfg();
  ASSERT_FALSE(cfg.telemetry);
  const std::string a = record_json(cfg, harness::run_chirper(cfg));
  const std::string b = record_json(cfg, harness::run_chirper(cfg));
  EXPECT_EQ(a, b);
  // The meta block says `"telemetry": "off"`; the *section* (an object) must
  // be absent.
  EXPECT_EQ(a.find("\"telemetry\": {"), std::string::npos)
      << "telemetry-off records must not carry a telemetry section";
}

TEST(Telemetry, EnablingTelemetryChangesNoCounters) {
  auto off_cfg = tiny_cfg();
  auto on_cfg = tiny_cfg();
  on_cfg.telemetry = true;
  const auto off = harness::run_chirper(off_cfg);
  const auto on = harness::run_chirper(on_cfg);
  EXPECT_EQ(off.ok, on.ok);
  EXPECT_EQ(off.nok, on.nok);
  ASSERT_EQ(off.counters.size(), on.counters.size());
  for (const auto& [name, value] : off.counters) {
    EXPECT_EQ(on.counter(name), value) << "counter " << name;
  }
}

}  // namespace
}  // namespace dssmr::stats
