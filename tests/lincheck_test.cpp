// Linearizability: first validate the checker itself on hand-crafted
// histories, then property-check real DS-SMR executions (concurrent clients,
// moves, retries, fall-backs, crashes) against the sequential KV spec.
#include "lincheck/lincheck.h"

#include <gtest/gtest.h>

#include "harness/deployment.h"
#include "smr/kv.h"
#include "testing/dssmr_fixture.h"
#include "testing/history.h"

namespace dssmr::lincheck {
namespace {

using core::Strategy;
using harness::Deployment;
using smr::ReplyCode;
using namespace dssmr::testing;

Operation op(std::size_t client, Time invoke, Time response, smr::Command cmd,
             ReplyCode code, std::int64_t num = 0, std::string data = "") {
  Operation o;
  o.client = client;
  o.invoke = invoke;
  o.response = response;
  o.cmd = std::move(cmd);
  o.code = code;
  o.reply = net::make_msg<kv::KvReply>(num, std::move(data));
  return o;
}

KvSpec spec_with(std::initializer_list<std::pair<VarId, std::int64_t>> vars) {
  KvSpec s;
  for (auto [v, n] : vars) s.preload(v, n, "");
  return s;
}

// ---- checker unit tests ------------------------------------------------------

TEST(Checker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(is_linearizable({}, spec_with({})));
}

TEST(Checker, SequentialHistoryAccepted) {
  auto s = spec_with({{VarId{1}, 0}});
  std::vector<Operation> h{
      op(0, 0, 10, kv_add(VarId{1}, 5), ReplyCode::kOk, 5),
      op(0, 20, 30, kv_get(VarId{1}), ReplyCode::kOk, 5),
  };
  EXPECT_TRUE(is_linearizable(h, s));
}

TEST(Checker, StaleReadAfterNewReadRejected) {
  // get=5 completes before get=0 starts: no legal order exists.
  auto s = spec_with({{VarId{1}, 0}});
  std::vector<Operation> h{
      op(0, 0, 10, kv_add(VarId{1}, 5), ReplyCode::kOk, 5),
      op(1, 20, 30, kv_get(VarId{1}), ReplyCode::kOk, 5),
      op(2, 40, 50, kv_get(VarId{1}), ReplyCode::kOk, 0),
  };
  EXPECT_FALSE(is_linearizable(h, s));
}

TEST(Checker, ConcurrentReadMayLinearizeBeforeWrite) {
  auto s = spec_with({{VarId{1}, 0}});
  std::vector<Operation> h{
      op(0, 0, 100, kv_add(VarId{1}, 5), ReplyCode::kOk, 5),
      op(1, 10, 20, kv_get(VarId{1}), ReplyCode::kOk, 0),  // overlaps the add
  };
  EXPECT_TRUE(is_linearizable(h, s));
}

TEST(Checker, NonOverlappingWriteThenStaleReadRejected) {
  auto s = spec_with({{VarId{1}, 0}});
  std::vector<Operation> h{
      op(0, 0, 10, kv_add(VarId{1}, 5), ReplyCode::kOk, 5),
      op(1, 20, 30, kv_get(VarId{1}), ReplyCode::kOk, 0),  // must see 5
  };
  EXPECT_FALSE(is_linearizable(h, s));
}

TEST(Checker, WrongReplyValueRejected) {
  auto s = spec_with({{VarId{1}, 7}});
  std::vector<Operation> h{op(0, 0, 10, kv_get(VarId{1}), ReplyCode::kOk, 3)};
  EXPECT_FALSE(is_linearizable(h, s));
}

TEST(Checker, CreateSemantics) {
  auto s = spec_with({});
  std::vector<Operation> h{
      op(0, 0, 10, make_create(VarId{9}), ReplyCode::kOk),
      op(1, 20, 30, make_create(VarId{9}), ReplyCode::kNok),
      op(0, 40, 50, kv_get(VarId{9}), ReplyCode::kOk, 0),
  };
  EXPECT_TRUE(is_linearizable(h, s));
}

TEST(Checker, DeleteMakesAccessNok) {
  auto s = spec_with({{VarId{2}, 4}});
  std::vector<Operation> h{
      op(0, 0, 10, make_delete(VarId{2}), ReplyCode::kOk),
      op(1, 20, 30, kv_get(VarId{2}), ReplyCode::kNok),
  };
  EXPECT_TRUE(is_linearizable(h, s));
}

TEST(Checker, NokOnExistingVarRejected) {
  auto s = spec_with({{VarId{2}, 4}});
  std::vector<Operation> h{op(0, 0, 10, kv_get(VarId{2}), ReplyCode::kNok)};
  EXPECT_FALSE(is_linearizable(h, s));
}

TEST(Checker, MultiVariableSumChecked) {
  auto s = spec_with({{VarId{1}, 3}, {VarId{2}, 4}});
  std::vector<Operation> h{op(0, 0, 10, kv_sum({VarId{1}, VarId{2}}, VarId{2}),
                             ReplyCode::kOk, 7)};
  EXPECT_TRUE(is_linearizable(h, s));
  std::vector<Operation> bad{op(0, 0, 10, kv_sum({VarId{1}, VarId{2}}, VarId{2}),
                               ReplyCode::kOk, 9)};
  EXPECT_FALSE(is_linearizable(bad, s));
}

// ---- property tests over real DS-SMR executions -------------------------------
// (the history recorder lives in testing/history.h, shared with fault_test)

class DssmrLinearizability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DssmrLinearizability, RandomConcurrentHistoriesAreLinearizable) {
  constexpr std::size_t kVars = 5;
  auto cfg = small_config(2, Strategy::kDssmr, /*clients=*/4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();
  auto history = record_history(d, /*ops_per_client=*/8, GetParam(), kVars);
  ASSERT_EQ(history.size(), 32u);
  EXPECT_TRUE(is_linearizable(history, spec)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DssmrLinearizability,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class SsmrLinearizability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsmrLinearizability, StaticStrategyHistoriesAreLinearizable) {
  constexpr std::size_t kVars = 5;
  auto cfg = small_config(2, Strategy::kStaticSsmr, /*clients=*/4);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();
  auto history = record_history(d, 8, GetParam(), kVars);
  EXPECT_TRUE(is_linearizable(history, spec)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsmrLinearizability, ::testing::Values(11, 12, 13, 14, 15));

TEST(DssmrLinearizabilityFaults, HistoryWithFallbacksIsLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = small_config(2, Strategy::kDssmr, 4);
  cfg.client_max_retries = 0;  // every stale access falls back to S-SMR
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();
  auto history = record_history(d, 8, 77, kVars);
  EXPECT_TRUE(is_linearizable(history, spec));
}

TEST(DssmrLinearizabilityFaults, HistoryAcrossPartitionLeaderCrashIsLinearizable) {
  constexpr std::size_t kVars = 4;
  auto cfg = small_config(2, Strategy::kDssmr, 3);
  Deployment d{cfg, kv::kv_app_factory(),
               [] { return std::make_unique<core::DssmrPolicy>(); }};
  KvSpec spec;
  for (std::size_t i = 0; i < kVars; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
    spec.preload(VarId{i}, 0, "");
  }
  d.start();
  d.settle();
  // Crash partition 0's leader shortly into the run.
  d.engine().schedule(msec(3), [&] {
    for (std::size_t r = 0; r < cfg.replicas_per_partition; ++r) {
      if (d.server(0, r).is_leader()) {
        d.network().crash(d.server(0, r).pid());
        d.server(0, r).halt_node();
        return;
      }
    }
  });
  auto history = record_history(d, 8, 99, kVars);
  EXPECT_TRUE(is_linearizable(history, spec));
}

}  // namespace
}  // namespace dssmr::lincheck
