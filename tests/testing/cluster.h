// Shared test fixtures: minimal nodes over the real engine/network stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "consensus/paxos.h"
#include "multicast/atomic.h"
#include "multicast/client.h"
#include "multicast/directory.h"
#include "net/network.h"
#include "sim/engine.h"

namespace dssmr::testing {

/// Payload carrying a plain integer, for protocol-level tests.
struct IntMsg final : net::Message {
  std::int64_t value;
  explicit IntMsg(std::int64_t v) : value(v) {}
  const char* type_name() const override { return "test.int"; }
};

/// A bare Paxos replica actor that records decided entries in order.
class TestPaxosNode : public net::Actor {
 public:
  void init(net::Network& network, GroupId gid, std::vector<ProcessId> members,
            consensus::PaxosConfig cfg, std::uint64_t seed) {
    network_ = &network;
    consensus::PaxosCore::Callbacks cb;
    cb.send = [this](ProcessId to, net::MessagePtr m) {
      network_->send(pid(), to, std::move(m));
    };
    cb.on_decide = [this](consensus::Slot slot, const consensus::Batch& batch) {
      for (const auto& e : batch) {
        decided_slots.push_back(slot);
        decided.push_back(e);
      }
    };
    core = std::make_unique<consensus::PaxosCore>(network.engine(), gid, std::move(members),
                                                  pid(), cfg, std::move(cb), seed);
  }

  void on_message(ProcessId from, const net::MessagePtr& m) override {
    core->handle(from, m);
  }

  std::unique_ptr<consensus::PaxosCore> core;
  std::vector<consensus::Slot> decided_slots;
  std::vector<consensus::LogEntry> decided;
  net::Network* network_ = nullptr;
};

/// GroupNode that records its atomic/reliable deliveries.
class RecordingGroupNode : public multicast::GroupNode {
 public:
  std::vector<multicast::AmcastMessage> amdelivered;
  std::vector<net::MessagePtr> rmdelivered;

 protected:
  void on_amdeliver(const multicast::AmcastMessage& m) override { amdelivered.push_back(m); }
  void on_rmdeliver(ProcessId, const net::MessagePtr& payload) override {
    rmdelivered.push_back(payload);
  }
};

/// Client that records replies.
class RecordingClient : public multicast::ClientNode {
 public:
  std::vector<net::MessagePtr> replies;

 protected:
  void on_reply(ProcessId, const net::MessagePtr& m) override { replies.push_back(m); }
};

/// A full multicast fabric: `groups` groups of `replicas` RecordingGroupNodes
/// plus `clients` RecordingClients, wired and started.
class Fabric {
 public:
  Fabric(std::size_t groups, std::size_t replicas, std::size_t clients,
         net::NetworkConfig net_cfg = {}, multicast::GroupNodeConfig node_cfg = {},
         std::uint64_t seed = 7)
      : network(engine, net_cfg, seed) {
    replicas_per_group = replicas;
    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<ProcessId> members;
      for (std::size_t r = 0; r < replicas; ++r) {
        auto node = std::make_unique<RecordingGroupNode>();
        members.push_back(network.add_process(*node, static_cast<int>(g % 2)));
        nodes.push_back(std::move(node));
      }
      directory.add_group(std::move(members));
    }
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t r = 0; r < replicas; ++r) {
        node(g, r).init_group_node(network, directory, GroupId{static_cast<std::uint32_t>(g)},
                                   node_cfg, seed * 1000 + g * 10 + r);
      }
    }
    for (auto& n : nodes) n->start();
    for (std::size_t c = 0; c < clients; ++c) {
      auto cl = std::make_unique<RecordingClient>();
      network.add_process(*cl, static_cast<int>(c % 2));
      cl->init_client_node(network, directory);
      this->clients.push_back(std::move(cl));
    }
  }

  RecordingGroupNode& node(std::size_t g, std::size_t r) {
    return *nodes[g * replicas_per_group + r];
  }

  sim::Engine engine;
  net::Network network;
  multicast::Directory directory;
  std::vector<std::unique_ptr<RecordingGroupNode>> nodes;
  std::vector<std::unique_ptr<RecordingClient>> clients;
  std::size_t replicas_per_group = 0;
};

}  // namespace dssmr::testing
