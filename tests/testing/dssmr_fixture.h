// End-to-end fixture: a full DS-SMR deployment running the KV app.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/assert.h"
#include "harness/deployment.h"
#include "smr/kv.h"

namespace dssmr::testing {

inline smr::Command kv_get(VarId v) {
  smr::Command c;
  c.op = kv::kGet;
  c.read_set = {v};
  return c;
}

inline smr::Command kv_set(std::vector<VarId> vars, std::string s) {
  smr::Command c;
  c.op = kv::kSet;
  c.write_set = std::move(vars);
  c.arg = std::move(s);
  return c;
}

inline smr::Command kv_add(VarId v, std::int64_t delta) {
  smr::Command c;
  c.op = kv::kAdd;
  c.write_set = {v};
  c.arg = std::to_string(delta);
  return c;
}

inline smr::Command kv_sum(std::vector<VarId> srcs, VarId dst) {
  smr::Command c;
  c.op = kv::kSumTo;
  c.read_set = std::move(srcs);
  c.write_set = {dst};
  return c;
}

inline smr::Command make_create(VarId v) {
  smr::Command c;
  c.type = smr::CommandType::kCreate;
  c.write_set = {v};
  return c;
}

inline smr::Command make_delete(VarId v) {
  smr::Command c;
  c.type = smr::CommandType::kDelete;
  c.write_set = {v};
  return c;
}

/// Issues `cmd` from client `ci` and runs the simulation until completion.
inline smr::ReplyCode run_op(harness::Deployment& d, std::size_t ci, smr::Command cmd,
                             net::MessagePtr* reply_out = nullptr,
                             Duration max_wait = sec(30)) {
  bool done = false;
  smr::ReplyCode rc = smr::ReplyCode::kNok;
  d.client(ci).issue(std::move(cmd), [&](smr::ReplyCode c, const net::MessagePtr& r) {
    done = true;
    rc = c;
    if (reply_out != nullptr) *reply_out = r;
  });
  const Time deadline = d.engine().now() + max_wait;
  while (!done && d.engine().now() < deadline) {
    d.engine().run_until(std::min<Time>(d.engine().now() + msec(5), deadline));
  }
  DSSMR_ASSERT_MSG(done, "operation did not complete in time");
  return rc;
}

inline std::int64_t kv_num(const net::MessagePtr& reply) {
  return net::msg_as<kv::KvReply>(reply).num;
}

inline std::string kv_data(const net::MessagePtr& reply) {
  return net::msg_as<kv::KvReply>(reply).data;
}

/// Standard small deployment: `parts` partitions x 3 replicas, oracle x 3.
inline harness::DeploymentConfig small_config(std::size_t parts, core::Strategy strategy,
                                              std::size_t clients = 4) {
  harness::DeploymentConfig cfg;
  cfg.partitions = parts;
  cfg.clients = clients;
  cfg.strategy = strategy;
  return cfg;
}

}  // namespace dssmr::testing
