// Minimal recursive-descent JSON parser for test assertions only.
//
// The Chrome-trace schema check needs to *parse* the exported file, not just
// grep it, so malformed escaping or unbalanced structure fails the test. The
// repo deliberately has no third-party JSON dependency; this covers the JSON
// subset our writers emit (objects, arrays, strings, integers, doubles,
// bools, null) and is not a general-purpose parser.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dssmr::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.contains(key);
  }
  /// Object member access; throws on missing key or non-object.
  const JsonValue& at(const std::string& key) const {
    if (kind != Kind::kObject) throw std::runtime_error("json: not an object");
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("json: missing key " + key);
    return it->second;
  }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number); }
};

class JsonParser {
 public:
  /// Parses one complete JSON document; throws std::runtime_error with a
  /// byte offset on any syntax error or trailing garbage.
  static JsonValue parse(const std::string& text) {
    JsonParser p{text};
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing content");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return {};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (next() != *c) fail(std::string("bad literal, wanted ") + word);
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Our writers never emit \u escapes; accept and keep them verbatim
            // so a hand-edited fixture still parses.
            out += "\\u";
            for (int i = 0; i < 4; ++i) out += next();
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = string_body();
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace dssmr::testing
