// Concurrent-history recorder for linearizability property tests: drives
// every client of a deployment with random KV operations and captures the
// full invoke/response history for the Wing & Gong checker. Shared by
// lincheck_test (crash-free and hand-rolled-fault histories) and fault_test
// (histories under every shipped nemesis plan).
#pragma once

#include <functional>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "harness/deployment.h"
#include "lincheck/lincheck.h"
#include "testing/dssmr_fixture.h"

namespace dssmr::testing {

/// Runs `ops_per_client` random operations concurrently on every client and
/// records the full history. Waits out faults: a client whose command is
/// stalled by a crash or partition simply responds later (its retry/fallback
/// machinery is part of the recorded behavior). A nonzero `think` paces each
/// client with a random 1..think inter-op delay, stretching the history so a
/// nemesis plan's whole schedule lands while ops are still in flight.
inline std::vector<lincheck::Operation> record_history(harness::Deployment& d,
                                                       std::size_t ops_per_client,
                                                       std::uint64_t seed,
                                                       std::size_t num_vars,
                                                       Duration think = 0) {
  std::vector<lincheck::Operation> history;
  std::vector<std::size_t> remaining(d.client_count(), ops_per_client);
  Rng rng{seed};

  std::function<void(std::size_t)> kick = [&](std::size_t ci) {
    if (remaining[ci] == 0) return;
    remaining[ci]--;

    smr::Command cmd;
    const auto pick = [&] { return VarId{rng.below(num_vars)}; };
    switch (rng.below(4)) {
      case 0:
        cmd = kv_get(pick());
        break;
      case 1:
        cmd = kv_add(pick(), static_cast<std::int64_t>(rng.below(10)));
        break;
      case 2: {
        VarId a = pick(), b = pick();
        cmd = kv_sum(a == b ? std::vector<VarId>{a} : std::vector<VarId>{a, b}, pick());
        break;
      }
      default:
        cmd = kv_set({pick()}, std::to_string(rng.below(100)));
        break;
    }

    const std::size_t idx = history.size();
    history.push_back({});
    history[idx].client = ci;
    history[idx].invoke = d.engine().now();
    history[idx].cmd = cmd;
    d.client(ci).issue(cmd, [&, idx, ci](smr::ReplyCode code, const net::MessagePtr& reply) {
      history[idx].response = d.engine().now();
      history[idx].code = code;
      history[idx].reply = reply;
      // Don't schedule a deferred kick once this client is out of ops: the
      // timer would capture `kick` by reference and could outlive this frame,
      // firing as use-after-scope if the caller runs the engine afterwards.
      if (remaining[ci] == 0) return;
      if (think > 0) {
        const Duration pause =
            1 + static_cast<Duration>(rng.below(static_cast<std::uint64_t>(think)));
        d.engine().schedule(pause, [&kick, ci] { kick(ci); });
      } else {
        kick(ci);
      }
    });
  };

  for (std::size_t ci = 0; ci < d.client_count(); ++ci) {
    d.engine().schedule(usec(static_cast<Duration>(rng.below(400))), [&kick, ci] { kick(ci); });
  }
  const Time deadline = d.engine().now() + sec(60);
  while (d.engine().now() < deadline) {
    d.engine().run_for(msec(20));
    bool all_done = true;
    for (std::size_t ci = 0; ci < d.client_count(); ++ci) {
      all_done = all_done && remaining[ci] == 0 && !d.client(ci).busy();
    }
    if (all_done) break;
  }
  for (auto& o : history) {
    DSSMR_ASSERT_MSG(o.response != 0, "operation still pending at history end");
  }
  return history;
}

}  // namespace dssmr::testing
