// Reference application: a tiny replicated key-value / counter store.
//
// Used by the quickstart example and by the protocol test-suite; it exercises
// every interesting command shape (single-variable reads/writes, multi-
// variable read-modify-write) with trivially checkable semantics.
#pragma once

#include <charconv>
#include <memory>
#include <string>

#include "smr/app.h"
#include "smr/command.h"

namespace dssmr::kv {

enum Op : std::uint32_t {
  kGet = 1,   // read_set = {v}; reply carries v's contents
  kSet = 2,   // write_set = {v}; arg = new string payload
  kAdd = 3,   // write_set = {v}; arg = signed delta applied to the counter
  kSumTo = 4, // read_set = sources, write_set = {dst}: dst.num = sum(sources)
};

struct KvValue final : smr::VarValue {
  std::int64_t num = 0;
  std::string data;

  KvValue() = default;
  KvValue(std::int64_t n, std::string d) : num(n), data(std::move(d)) {}

  std::unique_ptr<smr::VarValue> clone() const override {
    return std::make_unique<KvValue>(num, data);
  }
  std::size_t size_bytes() const override { return 24 + data.size(); }
};

struct KvReply final : net::Message {
  std::int64_t num = 0;
  std::string data;
  KvReply(std::int64_t n, std::string d) : num(n), data(std::move(d)) {}
  const char* type_name() const override { return "kv.reply"; }
  std::size_t size_bytes() const override { return 24 + data.size(); }
};

class KvApp final : public smr::AppStateMachine {
 public:
  struct Costs {
    Duration base = usec(10);
    Duration per_var = usec(1);
  };

  KvApp() : costs_(Costs{}) {}
  explicit KvApp(Costs costs) : costs_(costs) {}

  net::MessagePtr execute(const smr::Command& cmd, smr::ExecutionView& view) override {
    switch (cmd.op) {
      case kGet: {
        const auto* v = view.get_as<KvValue>(cmd.read_set.at(0));
        if (v == nullptr) return net::make_msg<KvReply>(0, "<missing>");
        return net::make_msg<KvReply>(v->num, v->data);
      }
      case kSet: {
        for (VarId id : cmd.write_set) {
          if (auto* v = view.get_as<KvValue>(id); v != nullptr) v->data = cmd.arg;
        }
        return net::make_msg<KvReply>(0, cmd.arg);
      }
      case kAdd: {
        std::int64_t delta = 0;
        std::from_chars(cmd.arg.data(), cmd.arg.data() + cmd.arg.size(), delta);
        std::int64_t result = 0;
        for (VarId id : cmd.write_set) {
          if (auto* v = view.get_as<KvValue>(id); v != nullptr) {
            v->num += delta;
            result = v->num;
          }
        }
        return net::make_msg<KvReply>(result, "");
      }
      case kSumTo: {
        std::int64_t sum = 0;
        for (VarId id : cmd.read_set) {
          if (const auto* v = view.get_as<KvValue>(id); v != nullptr) sum += v->num;
        }
        if (auto* dst = view.get_as<KvValue>(cmd.write_set.at(0)); dst != nullptr) {
          dst->num = sum;
        }
        return net::make_msg<KvReply>(sum, "");
      }
      default:
        return net::make_msg<KvReply>(-1, "<bad-op>");
    }
  }

  std::unique_ptr<smr::VarValue> make_default(VarId v) override {
    (void)v;
    return std::make_unique<KvValue>();
  }

  Duration service_time(const smr::Command& cmd) const override {
    return costs_.base + costs_.per_var * static_cast<Duration>(cmd.vars().size());
  }

 private:
  Costs costs_;
};

inline smr::AppFactory kv_app_factory(KvApp::Costs costs = {}) {
  return [costs] { return std::make_unique<KvApp>(costs); };
}

}  // namespace dssmr::kv
