#include "smr/command.h"

#include <algorithm>

#include "smr/app.h"

namespace dssmr::smr {

const char* to_string(CommandType t) {
  switch (t) {
    case CommandType::kAccess:
      return "access";
    case CommandType::kCreate:
      return "create";
    case CommandType::kDelete:
      return "delete";
    case CommandType::kMove:
      return "move";
    case CommandType::kReconfig:
      return "reconfig";
  }
  return "?";
}

const char* to_string(ReplyCode c) {
  switch (c) {
    case ReplyCode::kOk:
      return "ok";
    case ReplyCode::kRetry:
      return "retry";
    case ReplyCode::kNok:
      return "nok";
    case ReplyCode::kRetired:
      return "retired";
  }
  return "?";
}

std::vector<VarId> Command::vars() const {
  std::vector<VarId> all = read_set;
  all.insert(all.end(), write_set.begin(), write_set.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::size_t Command::size_bytes() const {
  // 48 header bytes + 8 for the trace id (always carried, so the bandwidth
  // model is identical whether span tracing is enabled or not).
  return 56 + (read_set.size() + write_set.size()) * 8 + arg.size() +
         move_sources.size() * 4 + move_epochs.size() * 8 + hint_edges.size() * 16;
}

std::size_t BulkMoveMsg::size_bytes() const {
  std::size_t n = 16;
  for (const Command& c : moves) n += c.size_bytes();
  return n;
}

std::size_t VarShipMsg::size_bytes() const {
  std::size_t n = 32;
  for (const auto& [v, val] : vars) {
    (void)v;
    n += 8 + (val != nullptr ? val->size_bytes() : 0);
  }
  return n;
}

}  // namespace dssmr::smr
