// Application-facing abstractions of the replication library.
//
// Mirrors the Eyrie API surface the paper describes: `VarValue` is the C++
// analogue of PRObject (a partially replicated data item), `VariableStore`
// holds the items a partition currently owns, and `AppStateMachine` is the
// PartitionStateMachine the service designer implements. Application code is
// written against these types only — it never sees partitions, moves, or the
// multicast layer.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/assert.h"
#include "common/types.h"
#include "net/message.h"

namespace dssmr::smr {

struct Command;  // defined in smr/command.h; forward-declared to avoid a cycle

/// A partially replicated data item. Implementations must be deep-copyable
/// (items are cloned when shipped between partitions) and know their
/// serialized size (drives the network bandwidth model for moves).
struct VarValue {
  virtual ~VarValue() = default;
  virtual std::unique_ptr<VarValue> clone() const = 0;
  virtual std::size_t size_bytes() const = 0;
};

/// The variables a partition replica currently stores.
class VariableStore {
 public:
  bool contains(VarId v) const { return vars_.contains(v); }

  VarValue* get(VarId v) {
    auto it = vars_.find(v);
    return it == vars_.end() ? nullptr : it->second.get();
  }
  const VarValue* get(VarId v) const {
    auto it = vars_.find(v);
    return it == vars_.end() ? nullptr : it->second.get();
  }

  void put(VarId v, std::unique_ptr<VarValue> value) {
    DSSMR_ASSERT(value != nullptr);
    vars_[v] = std::move(value);
  }

  /// Removes and returns the value (nullptr when absent).
  std::unique_ptr<VarValue> take(VarId v) {
    auto it = vars_.find(v);
    if (it == vars_.end()) return nullptr;
    auto value = std::move(it->second);
    vars_.erase(it);
    return value;
  }

  void erase(VarId v) { vars_.erase(v); }
  std::size_t size() const { return vars_.size(); }

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& [v, val] : vars_) n += val->size_bytes();
    return n;
  }

 private:
  std::unordered_map<VarId, std::unique_ptr<VarValue>> vars_;
};

/// The view a command executes against: the partition's own store plus any
/// values shipped in from other partitions for this command. Writes to
/// borrowed (remote) values mutate only the local temporary copy — the owning
/// partition applies the same deterministic command to its own copy, which is
/// exactly the S-SMR execution model.
class ExecutionView {
 public:
  explicit ExecutionView(VariableStore& local) : local_(local) {}

  /// Lends a remote value (already cloned by the caller).
  void lend(VarId v, std::unique_ptr<VarValue> value) {
    if (value != nullptr) borrowed_[v] = std::move(value);
  }

  bool contains(VarId v) const { return local_.contains(v) || borrowed_.contains(v); }
  bool is_local(VarId v) const { return local_.contains(v); }

  VarValue* get(VarId v) {
    if (VarValue* p = local_.get(v); p != nullptr) return p;
    auto it = borrowed_.find(v);
    return it == borrowed_.end() ? nullptr : it->second.get();
  }

  template <class T>
  T* get_as(VarId v) {
    return dynamic_cast<T*>(get(v));
  }

  VariableStore& local() { return local_; }

 private:
  VariableStore& local_;
  std::unordered_map<VarId, std::unique_ptr<VarValue>> borrowed_;
};

/// Server-side application logic (the paper's PartitionStateMachine).
/// Implementations must be deterministic: every replica executes the same
/// command sequence against equivalent state.
class AppStateMachine {
 public:
  virtual ~AppStateMachine() = default;

  /// Executes `cmd` against `view`. All variables the command accesses are in
  /// `view` unless they do not exist anywhere (deleted / never created) — the
  /// application must tolerate missing variables and reply accordingly.
  /// Returns the application-level reply (may be nullptr for "ok, no data").
  virtual net::MessagePtr execute(const Command& cmd, ExecutionView& view) = 0;

  /// Initial value for a newly created variable.
  virtual std::unique_ptr<VarValue> make_default(VarId v) = 0;

  /// Simulated CPU cost of executing `cmd` on a replica.
  virtual Duration service_time(const Command& cmd) const = 0;
};

/// Factory so each partition replica gets its own state machine instance.
using AppFactory = std::function<std::unique_ptr<AppStateMachine>()>;

}  // namespace dssmr::smr
