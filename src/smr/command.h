// Commands, prophecies and replies — the vocabulary shared by clients,
// partition servers and the oracle (Section 3 of the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace dssmr::smr {

/// The five DS-SMR command types. Consult is carried separately (it never
/// reaches a partition); the rest are delivered to partitions by atomic
/// multicast.
enum class CommandType : std::uint8_t {
  kAccess,    // application command reading/writing a set of variables
  kCreate,    // create one variable
  kDelete,    // delete one variable
  kMove,      // relocate a set of variables to one partition
  kReconfig,  // partition-membership record (elastic add/retire), oracle-only
};

const char* to_string(CommandType t);

struct Command {
  CommandType type = CommandType::kAccess;
  /// Stable across client retries; servers deduplicate on it.
  MsgId id{};
  /// Causal trace id (stats/span.h): the root client command's id, set by the
  /// issuing client proxy and copied onto derived commands (moves), so every
  /// layer's spans land in the same trace tree. 0 when tracing is off.
  std::uint64_t trace_id = 0;
  /// Process the reply should go to when it differs from the multicast
  /// submitter (oracle-issued moves are answered to the consulting client).
  ProcessId requester = kNoProcess;

  // -- kAccess --------------------------------------------------------------
  /// Application opcode, interpreted by the AppStateMachine.
  std::uint32_t op = 0;
  /// Variables read / written. For create/delete/move these double as the
  /// target variable set.
  std::vector<VarId> read_set;
  std::vector<VarId> write_set;
  /// Opaque application argument (e.g. the text of a post).
  std::string arg;

  // -- kReconfig ------------------------------------------------------------
  // Membership records are multicast to the oracle group only, so they ride
  // the kMove fields: move_dest names the affected partition and `op` is 0
  // for add, 1 for retire (see core/oracle.h kReconfigAdd/kReconfigRetire).

  // -- kMove ----------------------------------------------------------------
  /// Source partitions variables may currently live in.
  std::vector<GroupId> move_sources;
  /// Destination partition.
  GroupId move_dest = kNoGroup;
  /// Mapping epoch each moved variable reaches once installed (parallel to
  /// vars(), which is sorted): the issuer's known epoch + 1. Only filled when
  /// piggybacked cache repair is on — empty keeps the wire size identical to
  /// the pre-locality code.
  std::vector<std::uint64_t> move_epochs;

  /// Workload-graph edges this command implies (filled by the application for
  /// structural operations); the client proxy forwards them to DynaStar-style
  /// oracles after a successful execution.
  std::vector<std::pair<VarId, VarId>> hint_edges;

  /// read_set ∪ write_set, deduplicated.
  std::vector<VarId> vars() const;

  /// Approximate wire size (drives the bandwidth model).
  std::size_t size_bytes() const;
};

/// Envelope for a command travelling through atomic multicast.
struct CommandMsg final : net::Message {
  Command cmd;
  explicit CommandMsg(Command c) : cmd(std::move(c)) {}
  const char* type_name() const override { return "smr.command"; }
  std::size_t size_bytes() const override { return cmd.size_bytes(); }
  std::uint64_t trace_id() const override { return cmd.trace_id; }
};

/// Several coalesced kMove commands shipped as one atomic multicast (the
/// locality fast path's move coalescing): one Skeen exchange over the union
/// of the sub-moves' destination sets instead of one per move. Receivers
/// apply each sub-move independently and skip the ones they are not a source
/// or destination of; replies still go per sub-move to each requester.
struct BulkMoveMsg final : net::Message {
  std::vector<Command> moves;
  explicit BulkMoveMsg(std::vector<Command> m) : moves(std::move(m)) {}
  const char* type_name() const override { return "smr.bulkmove"; }
  std::size_t size_bytes() const override;
  std::uint64_t trace_id() const override {
    return moves.empty() ? 0 : moves.front().trace_id;
  }
};

enum class ReplyCode : std::uint8_t {
  kOk,
  kRetry,    // partition did not hold all variables — re-consult the oracle
  kNok,      // command cannot execute (missing/duplicate variable)
  kRetired,  // partition has drained and left the deployment — re-consult
};

const char* to_string(ReplyCode c);

/// One piggybacked cache-repair fact: "variable `var` lives on `loc` as of
/// mapping epoch `epoch`". Clients install it only when `epoch` is strictly
/// newer than what they hold, so a delayed repair can never roll a cache
/// back (see the locality fast path in DESIGN.md).
struct RepairEntry {
  VarId var;
  GroupId loc = kNoGroup;
  std::uint64_t epoch = 0;
};

/// Server-side timestamps piggybacked on replies (Dapper-style annotations):
/// when the executing group delivered the command, and when execution started
/// and finished on its simulated CPU. The client proxy uses them to decompose
/// its post-send wait into amcast / queue / execute / reply span phases.
/// All-zero when the server predates tracing or answered without executing.
struct ReplyTiming {
  Time delivered_at = 0;
  Time exec_start = 0;
  Time exec_end = 0;
};

/// Server -> client reply.
struct ReplyMsg final : net::Message {
  MsgId cmd_id;
  ReplyCode code;
  GroupId from_group;
  net::MessagePtr app_reply;  // application-level result (may be null)
  ReplyTiming timing;
  /// Piggybacked cache repair for the command's variables (empty unless the
  /// server runs with cache repair on): current ⟨var, partition, epoch⟩ as
  /// the replying partition knows them, including forwarding pointers for
  /// variables it moved away. Lets a kRetry re-route directly instead of
  /// restarting at the oracle.
  std::vector<RepairEntry> repair;
  ReplyMsg(MsgId id, ReplyCode c, GroupId g, net::MessagePtr r = nullptr,
           ReplyTiming t = {}, std::vector<RepairEntry> rep = {})
      : cmd_id(id), code(c), from_group(g), app_reply(std::move(r)), timing(t),
        repair(std::move(rep)) {}
  const char* type_name() const override { return "smr.reply"; }
  std::size_t size_bytes() const override {
    return 32 + 24 + repair.size() * 20 +
           (app_reply != nullptr ? app_reply->size_bytes() : 0);
  }
};

/// Move destination -> client: which of the move's variables are actually
/// installed (held before the move or shipped by a source). Carried as the
/// move reply's app payload. Variables missing from `installed` hit a stale
/// mapping — no source shipped them and the destination gave their claim up —
/// so the client must not cache them at the destination.
struct MoveResultMsg final : net::Message {
  std::vector<VarId> installed;
  explicit MoveResultMsg(std::vector<VarId> v) : installed(std::move(v)) {}
  const char* type_name() const override { return "smr.move_result"; }
  std::size_t size_bytes() const override { return 16 + installed.size() * 8; }
};

// ---- oracle interaction -----------------------------------------------------

/// Client -> oracle: which partitions does `cmd` touch?
struct ConsultMsg final : net::Message {
  MsgId consult_id;  // distinct from cmd.id (one command may re-consult)
  Command cmd;
  ConsultMsg(MsgId id, Command c) : consult_id(id), cmd(std::move(c)) {}
  const char* type_name() const override { return "oracle.consult"; }
  std::size_t size_bytes() const override { return 16 + cmd.size_bytes(); }
  std::uint64_t trace_id() const override { return cmd.trace_id; }
};

/// The oracle's answer (the paper's "prophecy").
struct ProphecyMsg final : net::Message {
  MsgId consult_id;
  ReplyCode code;  // kNok when the command cannot execute
  /// Per-variable location, <v, P>.
  std::vector<std::pair<VarId, GroupId>> locations;
  /// Destination the oracle recommends for collocation (kNoGroup if the
  /// command is already single-partition).
  GroupId dest = kNoGroup;
  /// True when the oracle itself issued the move (DynaStar mode) and the
  /// client must wait for the destination partition before multicasting.
  bool oracle_moved = false;
  /// Mapping epochs parallel to `locations` (locality fast path; filled only
  /// when cache repair is on, else empty and free on the wire).
  std::vector<std::uint64_t> epochs;
  /// Prophecy prefetch: up to --prefetch-k variables recently co-accessed
  /// with the command's, with their current locations, so the client warms
  /// its cache and skips future consults. Empty when prefetch is off.
  std::vector<RepairEntry> prefetch;

  ProphecyMsg(MsgId id, ReplyCode c) : consult_id(id), code(c) {}
  const char* type_name() const override { return "oracle.prophecy"; }
  std::size_t size_bytes() const override {
    return 32 + locations.size() * 12 + epochs.size() * 8 + prefetch.size() * 20;
  }
};

/// Workload hint: edges of the workload graph (DynaStar-style oracles).
struct HintMsg final : net::Message {
  std::vector<std::pair<VarId, VarId>> edges;
  explicit HintMsg(std::vector<std::pair<VarId, VarId>> e) : edges(std::move(e)) {}
  const char* type_name() const override { return "oracle.hint"; }
  std::size_t size_bytes() const override { return 16 + edges.size() * 16; }
};

// ---- inter-partition coordination -------------------------------------------

struct VarValue;  // smr/app.h

/// Variables (possibly none) shipped from one partition to another for a
/// command: S-SMR variable exchange when `is_move` is false, ownership
/// transfer when true. An empty `vars` still counts as the sender's signal.
struct VarShipMsg final : net::Message {
  MsgId cmd_id;
  GroupId from_group;
  bool is_move;
  /// Cloned snapshots; receivers clone again before mutating.
  std::vector<std::pair<VarId, std::shared_ptr<const VarValue>>> vars;

  VarShipMsg(MsgId id, GroupId g, bool mv,
             std::vector<std::pair<VarId, std::shared_ptr<const VarValue>>> v)
      : cmd_id(id), from_group(g), is_move(mv), vars(std::move(v)) {}
  const char* type_name() const override { return "smr.varship"; }
  std::size_t size_bytes() const override;
};

/// Execution-atomicity signal (create/delete coordination with the oracle).
struct SignalMsg final : net::Message {
  MsgId cmd_id;
  GroupId from_group;
  SignalMsg(MsgId id, GroupId g) : cmd_id(id), from_group(g) {}
  const char* type_name() const override { return "smr.signal"; }
  std::size_t size_bytes() const override { return 24; }
};

}  // namespace dssmr::smr
