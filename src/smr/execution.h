// In-order command execution engine with input waits.
//
// A partition replica executes delivered commands strictly in delivery
// order, one at a time, each occupying the (simulated) CPU for its service
// time. A multi-partition command at the head of the queue may additionally
// wait for inputs from other partitions (variables and signals); everything
// behind it blocks — this serialization is precisely why multi-partition
// commands cap S-SMR's scalability, so the model must capture it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/types.h"
#include "sim/engine.h"

namespace dssmr::smr {

class ExecutionEngine {
 public:
  struct Task {
    MsgId id;
    /// Called once, when the task first reaches the head of the queue
    /// (e.g. to ship local variables and signals to peer partitions).
    std::function<void()> on_head;
    /// Inputs available? Re-checked after every notify().
    std::function<bool()> ready;
    /// CPU time the execution occupies once ready.
    Duration service = 0;
    /// Executes the command (mutates state, sends the reply).
    std::function<void()> run;
  };

  explicit ExecutionEngine(sim::Engine& engine) : engine_(engine) {}

  void enqueue(Task t) {
    queue_.push_back(std::move(t));
    pump();
  }

  /// Call when new inputs arrived (shipped variables, signals).
  void notify() { pump(); }

  std::size_t queue_depth() const { return queue_.size(); }
  bool idle() const { return queue_.empty() && !executing_; }
  std::uint64_t executed_count() const { return executed_; }

  /// Total simulated CPU-busy time, for utilization metrics.
  Duration busy_time() const { return busy_time_; }

 private:
  void pump() {
    if (executing_ || queue_.empty()) return;
    Task& head = queue_.front();
    if (head.on_head) {
      auto fn = std::move(head.on_head);
      head.on_head = nullptr;
      fn();
      // on_head may have re-entered pump() via notify(); restart cleanly.
      if (executing_ || queue_.empty()) return;
    }
    if (head.ready && !head.ready()) return;  // wait; notify() re-pumps
    executing_ = true;
    busy_time_ += queue_.front().service;
    engine_.schedule(queue_.front().service, [this] {
      Task done = std::move(queue_.front());
      queue_.pop_front();
      ++executed_;
      done.run();
      executing_ = false;
      pump();
    });
  }

  sim::Engine& engine_;
  std::deque<Task> queue_;
  bool executing_ = false;
  std::uint64_t executed_ = 0;
  Duration busy_time_ = 0;
};

}  // namespace dssmr::smr
