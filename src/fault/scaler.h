// Scaler: executes a ScalePlan against a live Deployment.
//
// The scaler is an actor on the simulation engine like the nemesis: it
// schedules one callback per plan event at arm()+event.at, and each callback
// drives elasticity through the same public surfaces tests use.
//
// Scale-out (`add-partition`):
//   1. Deployment::add_partition() boots a fresh replica group (processes,
//      multicast registration, telemetry wiring) and starts it.
//   2. The scaler hands the new GroupId to the current oracle leader's
//      submit_reconfig(), which atomically multicasts a kReconfig membership
//      record to the oracle group — every oracle replica admits the partition
//      at the same point in the delivered command order, and the leader plans
//      chunked rebalance moves to fill it toward the per-partition quota.
//
// Scale-in (`remove-partition:<i>`):
//   1. submit_reconfig(retire): every oracle replica marks the partition
//      draining (no new placements land there) and the leader plans moves
//      shipping every still-mapped variable to the remaining live partitions.
//   2. The scaler polls the drain barrier (Deployment::partition_drained: no
//      replica owns a variable, queues and pending multicasts empty, oracle
//      load zero) and, once it holds, calls finish_retire() — replicas answer
//      kRetired from then on and the group leaves the clients' fallback
//      universe. No command is lost or duplicated: everything delivered
//      before the barrier executed normally, everything after gets kRetired
//      and the client re-routes.
//   3. A post-retire watchdog keeps checking for stragglers: a move issued
//      against a pre-drain prophecy can land variables on the retired
//      partition after the barrier (rejecting it would lose the shipped
//      values, so retired replicas accept it). The watchdog re-submits the
//      idempotent retire record, which re-sweeps whatever reappeared.
//
// Like the nemesis, the scaler draws no randomness of its own, so a (plan,
// deployment config, seed) triple replays the exact same scale history and
// run records stay byte-identical.
//
// Measurements ride the `elastic.` metric prefix (the run record's v7
// `elasticity` section; the oracle contributes partitions_added/retired and
// the rebalance move/variable counts): the scaler adds `elastic.plan_events`
// plus the `elastic.drain_time_us` histogram (retire record submitted ->
// drain barrier passed) and annotates the telemetry timeline with marks so
// dashboards can shade the rebalance window.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "fault/scale_plan.h"
#include "harness/deployment.h"

namespace dssmr::fault {

class Scaler {
 public:
  /// Validates the plan against the deployment's shape (throws
  /// std::invalid_argument on e.g. `remove-partition:5` in a 2-partition
  /// deployment, removing the same partition twice, or draining the last
  /// live partition).
  Scaler(harness::Deployment& deployment, ScalePlan plan);

  Scaler(const Scaler&) = delete;
  Scaler& operator=(const Scaler&) = delete;

  /// Schedules every plan event relative to engine().now(). Call once, after
  /// Deployment::settle() and before driving load.
  void arm();

  const ScalePlan& plan() const { return plan_; }
  std::uint64_t events_fired() const { return events_fired_; }
  /// Every remove event has passed its drain barrier and retired (vacuously
  /// true for add-only plans). Tests run the engine until this holds before
  /// auditing consistency.
  bool quiesced() const { return events_fired_ == plan_.events.size() && pending_removes_ == 0; }

 private:
  void validate() const;
  void fire(const ScaleEvent& e);
  void do_add();
  void do_remove(std::size_t partition);
  /// Submits a kReconfig on whichever oracle replica currently leads,
  /// retrying on a poll cadence while the group is between leaders.
  void submit_on_leader(GroupId target, std::uint32_t op, int polls_left);
  /// Drain-barrier poll: fires finish_retire() once the partition is empty.
  void await_drain(std::size_t partition, Time submitted_at, int polls_left);
  /// Post-retire straggler sweep (see file comment).
  void watchdog(std::size_t partition, int polls_left);

  void mark(std::string label);
  void trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg);

  harness::Deployment& d_;
  ScalePlan plan_;
  bool armed_ = false;
  std::uint64_t events_fired_ = 0;
  std::size_t pending_removes_ = 0;
};

}  // namespace dssmr::fault
