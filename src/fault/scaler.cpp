#include "fault/scaler.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/assert.h"
#include "core/oracle.h"

namespace dssmr::fault {
namespace {

/// Leader-watch / drain-barrier poll cadence. Same rationale as the nemesis
/// leader watch: fine enough that drain_time_us is accurate to half a
/// heartbeat, coarse enough not to inflate the event count.
constexpr Duration kPoll = usec(500);
/// Give up after this many polls (an oracle group with no quorum never
/// elects, a partition wedged behind a dead peer never drains; the run's
/// audit then reports the stuck partition instead of spinning forever).
constexpr int kPollLimit = 10000;
/// Post-retire straggler watchdog: slower cadence, bounded horizon.
constexpr Duration kWatchdogPoll = msec(5);
constexpr int kWatchdogPolls = 400;

}  // namespace

Scaler::Scaler(harness::Deployment& deployment, ScalePlan plan)
    : d_(deployment), plan_(std::move(plan)) {
  validate();
}

void Scaler::validate() const {
  // Replay the (time-sorted) plan against the deployment's shape: indexes are
  // dense over every partition ever created, so an add raises the valid range
  // by one and a remove must stay inside it, hit each partition at most once,
  // and never drain the last live one.
  std::size_t total = d_.config().partitions;
  std::size_t live = total;
  std::vector<bool> removed(total, false);
  for (const ScaleEvent& e : plan_.events) {
    if (e.action == ScaleAction::kAddPartition) {
      ++total;
      ++live;
      removed.push_back(false);
      continue;
    }
    if (e.partition >= total) {
      throw std::invalid_argument(
          "scale plan \"" + plan_.name + "\" removes partition " +
          std::to_string(e.partition) + " but only " + std::to_string(total) +
          " partitions exist at that point in the plan");
    }
    if (removed[e.partition]) {
      throw std::invalid_argument("scale plan \"" + plan_.name + "\" removes partition " +
                                  std::to_string(e.partition) + " twice");
    }
    if (live <= 1) {
      throw std::invalid_argument("scale plan \"" + plan_.name +
                                  "\" would drain the last live partition");
    }
    removed[e.partition] = true;
    --live;
  }
}

void Scaler::arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;
  for (const ScaleEvent& e : plan_.events) {
    d_.engine().schedule(e.at, [this, &e] { fire(e); });
  }
}

void Scaler::fire(const ScaleEvent& e) {
  ++events_fired_;
  d_.metrics().inc("elastic.plan_events");
  switch (e.action) {
    case ScaleAction::kAddPartition:
      do_add();
      break;
    case ScaleAction::kRemovePartition:
      do_remove(e.partition);
      break;
  }
}

void Scaler::do_add() {
  const std::size_t index = d_.partition_count();
  const GroupId gid = d_.add_partition();
  mark("scale-out: partition " + std::to_string(index) + " booted");
  submit_on_leader(gid, core::kReconfigAdd, kPollLimit);
}

void Scaler::do_remove(std::size_t partition) {
  DSSMR_ASSERT_MSG(partition < d_.partition_count(),
                   "scale plan removes a partition that was never created");
  DSSMR_ASSERT_MSG(!d_.partition_retired(partition), "partition retired twice");
  const GroupId gid = d_.partition_gid(partition);
  ++pending_removes_;
  mark("scale-in: partition " + std::to_string(partition) + " draining");
  submit_on_leader(gid, core::kReconfigRetire, kPollLimit);
  await_drain(partition, d_.engine().now(), kPollLimit);
}

void Scaler::submit_on_leader(GroupId target, std::uint32_t op, int polls_left) {
  for (std::size_t r = 0; r < d_.config().oracle_replicas; ++r) {
    core::OracleNode& o = d_.oracle(r);
    if (!o.halted() && o.is_leader()) {
      o.submit_reconfig(target, op);
      return;
    }
  }
  if (polls_left <= 0) return;  // no quorum; the audit will say so
  d_.engine().schedule(kPoll, [this, target, op, polls_left] {
    submit_on_leader(target, op, polls_left - 1);
  });
}

void Scaler::await_drain(std::size_t partition, Time submitted_at, int polls_left) {
  if (d_.partition_drained(partition)) {
    d_.metrics().histogram("elastic.drain_time_us")
        .record(d_.engine().now() - submitted_at);
    d_.finish_retire(partition);
    trace(stats::TraceEvent::kPartitionRetired, 0,
          static_cast<std::int64_t>(d_.partition_gid(partition).value));
    mark("scale-in: partition " + std::to_string(partition) + " retired");
    DSSMR_ASSERT(pending_removes_ > 0);
    --pending_removes_;
    watchdog(partition, kWatchdogPolls);
    return;
  }
  if (polls_left <= 0) return;
  d_.engine().schedule(kPoll, [this, partition, submitted_at, polls_left] {
    await_drain(partition, submitted_at, polls_left - 1);
  });
}

void Scaler::watchdog(std::size_t partition, int polls_left) {
  if (polls_left <= 0) return;
  d_.engine().schedule(kWatchdogPoll, [this, partition, polls_left] {
    if (!d_.partition_drained(partition)) {
      // A straggler move (issued against a pre-drain prophecy) landed
      // variables on the retired partition. The retire record is idempotent:
      // re-delivering it re-sweeps whatever is mapped there now.
      d_.metrics().inc("elastic.straggler_sweeps");
      mark("scale-in: straggler re-sweep of partition " + std::to_string(partition));
      submit_on_leader(d_.partition_gid(partition), core::kReconfigRetire, kPollLimit);
    }
    watchdog(partition, polls_left - 1);
  });
}

void Scaler::mark(std::string label) {
  d_.metrics().recorder().mark(d_.engine().now(), stats::Recorder::MarkKind::kEvent,
                               std::move(label));
}

void Scaler::trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg) {
  d_.metrics().trace().record(e, d_.engine().now(), 0, id, arg);
}

}  // namespace dssmr::fault
