#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dssmr::fault {
namespace {

[[noreturn]] void bad(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad fault plan \"" + std::string(spec) + "\": " + why);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(s);
      return out;
    }
    out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// `120ms`, `50us`, `2s` -> microseconds.
Duration parse_time(std::string_view spec, std::string_view s) {
  s = trim(s);
  std::size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) bad(spec, "expected a time like 120ms, got \"" + std::string(s) + "\"");
  std::uint32_t n = 0;
  if (!parse_u32(s.substr(0, digits), n)) bad(spec, "time out of range: " + std::string(s));
  const std::string_view unit = s.substr(digits);
  if (unit == "us") return usec(n);
  if (unit == "ms") return msec(n);
  if (unit == "s") return sec(n);
  bad(spec, "unknown time unit \"" + std::string(unit) + "\" (want us/ms/s)");
}

double parse_prob(std::string_view spec, std::string_view s) {
  const std::string str(trim(s));
  char* end = nullptr;
  const double v = std::strtod(str.c_str(), &end);
  if (end != str.c_str() + str.size() || str.empty()) {
    bad(spec, "expected a probability, got \"" + str + "\"");
  }
  return v;  // Network::set_drop_probability clamps to [0,1]
}

/// p0r1 / oracle2 / p0 / oracle / last.
FaultTarget parse_target(std::string_view spec, std::string_view s) {
  s = trim(s);
  FaultTarget t;
  if (s == "last") {
    t.kind = FaultTarget::Kind::kLastVictim;
    return t;
  }
  if (s.starts_with("oracle")) {
    const std::string_view rest = s.substr(6);
    if (rest.empty()) {
      t.kind = FaultTarget::Kind::kOracle;
      return t;
    }
    if (!parse_u32(rest, t.replica)) bad(spec, "bad oracle replica: " + std::string(s));
    t.kind = FaultTarget::Kind::kOracleReplica;
    return t;
  }
  if (s.starts_with("p")) {
    const std::size_t r = s.find('r', 1);
    if (r == std::string_view::npos) {
      if (!parse_u32(s.substr(1), t.partition)) bad(spec, "bad partition: " + std::string(s));
      t.kind = FaultTarget::Kind::kPartition;
      return t;
    }
    if (!parse_u32(s.substr(1, r - 1), t.partition) ||
        !parse_u32(s.substr(r + 1), t.replica)) {
      bad(spec, "bad replica: " + std::string(s));
    }
    t.kind = FaultTarget::Kind::kReplica;
    return t;
  }
  bad(spec, "unknown target \"" + std::string(s) + "\" (want p<i>r<j>, p<i>, oracle<r>, oracle, last)");
}

std::vector<FaultTarget> parse_set(std::string_view spec, std::string_view s) {
  std::vector<FaultTarget> out;
  for (std::string_view part : split(s, '+')) {
    FaultTarget t = parse_target(spec, part);
    if (t.kind == FaultTarget::Kind::kLastVictim) bad(spec, "`last` is not valid in a cut set");
    out.push_back(t);
  }
  return out;
}

bool is_process(const FaultTarget& t) {
  return t.kind == FaultTarget::Kind::kReplica ||
         t.kind == FaultTarget::Kind::kOracleReplica ||
         t.kind == FaultTarget::Kind::kLastVictim;
}

FaultEvent parse_event(std::string_view spec, std::string_view s) {
  const std::size_t at_pos = s.rfind('@');
  if (at_pos == std::string_view::npos) {
    bad(spec, "event \"" + std::string(s) + "\" is missing @time");
  }
  FaultEvent e;
  std::string_view time_part = trim(s.substr(at_pos + 1));
  std::string_view head = trim(s.substr(0, at_pos));

  std::string_view action = head;
  std::string_view args;
  if (const std::size_t colon = head.find(':'); colon != std::string_view::npos) {
    action = head.substr(0, colon);
    args = trim(head.substr(colon + 1));
  }

  if (action == "crash" || action == "recover") {
    e.action = action == "crash" ? FaultAction::kCrash : FaultAction::kRecover;
    e.target = parse_target(spec, args);
    if (!is_process(e.target)) {
      bad(spec, std::string(action) + " needs a process (p<i>r<j> or oracle<r>), got \"" +
                    std::string(args) + "\"");
    }
    if (e.action == FaultAction::kCrash && e.target.kind == FaultTarget::Kind::kLastVictim) {
      bad(spec, "crash:last is meaningless (it is already down)");
    }
  } else if (action == "kill-leader") {
    e.action = FaultAction::kKillLeader;
    e.target = parse_target(spec, args);
    if (e.target.kind != FaultTarget::Kind::kPartition &&
        e.target.kind != FaultTarget::Kind::kOracle) {
      bad(spec, "kill-leader needs a group (p<i> or oracle), got \"" + std::string(args) + "\"");
    }
  } else if (action == "cut" || action == "partition") {
    e.action = FaultAction::kCut;
    std::size_t sep = args.find('>');
    e.directed = sep != std::string_view::npos;
    if (!e.directed) sep = args.find('|');
    if (sep == std::string_view::npos) {
      bad(spec, "cut needs two sides: cut:A|B (or A>B), got \"" + std::string(args) + "\"");
    }
    e.side_a = parse_set(spec, args.substr(0, sep));
    e.side_b = parse_set(spec, args.substr(sep + 1));
  } else if (action == "heal") {
    e.action = FaultAction::kHeal;
    if (!args.empty()) bad(spec, "heal takes no argument");
  } else if (action == "drop") {
    e.action = FaultAction::kDropBurst;
    const std::size_t plus = time_part.rfind('+');
    if (plus == std::string_view::npos) {
      bad(spec,
          "drop needs a duration: drop:<p>@<time>+<dur>, got \"" + std::string(s) + "\"");
    }
    e.drop_probability = parse_prob(spec, args);
    e.duration = parse_time(spec, time_part.substr(plus + 1));
    time_part = trim(time_part.substr(0, plus));
    if (e.duration <= 0) bad(spec, "drop burst duration must be positive");
  } else {
    bad(spec, "unknown action \"" + std::string(action) + "\"");
  }
  e.at = parse_time(spec, time_part);
  return e;
}

}  // namespace

FaultPlan parse_plan(std::string_view spec) {
  FaultPlan plan;
  plan.name = "custom";
  plan.spec = std::string(trim(spec));
  if (plan.spec.empty()) bad(spec, "empty plan");
  for (std::string_view ev : split(plan.spec, ';')) {
    ev = trim(ev);
    if (ev.empty()) continue;
    plan.events.push_back(parse_event(spec, ev));
  }
  if (plan.events.empty()) bad(spec, "plan has no events");
  // Stable execution order: by trigger time, ties in written order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

const std::vector<ShippedPlan>& shipped_plans() {
  static const std::vector<ShippedPlan> kPlans = {
      {"leader-kill-recover", "kill-leader:p0@120ms;recover:last@700ms",
       "crash partition 0's current leader, restart it after the group re-elects"},
      {"oracle-member-crash", "crash:oracle1@120ms;recover:oracle1@700ms",
       "crash a non-leader oracle replica, then bring it back"},
      {"oracle-leader-kill", "kill-leader:oracle@120ms;recover:last@700ms",
       "crash the oracle leader (consults stall until re-election), restart it"},
      {"partition-heal", "cut:p0|p1@150ms;heal@500ms",
       "full network partition between partition 0 and partition 1, then heal"},
      {"asym-partition", "cut:p0r0>p0@150ms;heal@500ms",
       "asymmetric fault: p0r0 hears its peers but they never hear it"},
      {"drop-burst", "drop:0.05@100ms+300ms",
       "5% random message loss for 300ms, then restore"},
  };
  return kPlans;
}

FaultPlan resolve_plan(std::string_view name_or_spec) {
  for (const ShippedPlan& p : shipped_plans()) {
    if (name_or_spec == p.name) {
      FaultPlan plan = parse_plan(p.spec);
      plan.name = std::string(p.name);
      return plan;
    }
  }
  return parse_plan(name_or_spec);
}

}  // namespace dssmr::fault
