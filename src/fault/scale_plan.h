// Declarative scale plans for deterministic elastic-repartitioning runs.
//
// A ScalePlan is a list of virtual-time-triggered membership events — boot a
// fresh partition mid-run, or drain and retire an existing one. Like fault
// plans (fault_plan.h, whose DSL this mirrors), plans are data: the same plan
// against the same deployment and seed replays the same scale history, so
// elastic runs stay byte-for-byte reproducible.
//
// Plans are written in a compact one-line DSL so benches can take them on the
// command line (--scale-plan) and CI can enumerate them:
//
//   event ::= action '@' time        (times relative to Scaler::arm())
//   plan  ::= event (';' event)*
//
//   add-partition             boot one fresh replica group; the oracle admits
//                             it via an atomically multicast membership record
//                             and rebalances variables onto it
//   remove-partition:<i>      drain partition <i> (all its variables move to
//                             the remaining live partitions), wait for the
//                             drain barrier, then retire it
//
// Partition indexes are dense over every partition ever created: in a
// k-partition deployment the initial partitions are 0..k-1 and the first
// added one is k. Times take us/ms/s suffixes: `add-partition@30s`.
//
// resolve_scale_plan() also accepts the names of the shipped plans (the ones
// CI smoke-tests and lincheck covers); shipped_scale_plans() enumerates them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dssmr::fault {

enum class ScaleAction : std::uint8_t {
  kAddPartition,
  kRemovePartition,
};

struct ScaleEvent {
  Duration at = 0;  // relative to Scaler::arm()
  ScaleAction action = ScaleAction::kAddPartition;
  std::uint32_t partition = 0;  // remove-partition only
};

struct ScalePlan {
  std::string name;  // shipped-plan name, or "custom"
  std::string spec;  // the DSL text the plan was parsed from
  std::vector<ScaleEvent> events;

  bool empty() const { return events.empty(); }
};

/// Parses the DSL above. Throws std::invalid_argument with a pointed message
/// on malformed input (unknown action, bad index, missing '@time', ...).
ScalePlan parse_scale_plan(std::string_view spec);

/// Named plan shipped with the repo (and exercised by CI + lincheck).
struct ShippedScalePlan {
  std::string_view name;
  std::string_view spec;
  std::string_view what;  // one-line description for --help / docs
};
const std::vector<ShippedScalePlan>& shipped_scale_plans();

/// Looks `name_or_spec` up in shipped_scale_plans() first; otherwise parses
/// it as DSL. This is what --scale-plan feeds.
ScalePlan resolve_scale_plan(std::string_view name_or_spec);

}  // namespace dssmr::fault
