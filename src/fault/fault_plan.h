// Declarative fault plans for deterministic nemesis runs.
//
// A FaultPlan is a list of virtual-time-triggered fault events — crash or
// recover a replica, kill whatever process currently leads a group, cut or
// heal links, or raise the network drop probability for a while. Plans are
// data: the same plan against the same deployment and seed replays the same
// event sequence, so fault runs stay byte-for-byte reproducible (the
// acceptance bar every shipped plan is tested against).
//
// Plans are written in a compact one-line DSL so benches can take them on the
// command line (--nemesis) and CI can enumerate them:
//
//   event ::= action '@' time        (times relative to Nemesis::arm())
//   plan  ::= event (';' event)*
//
//   crash:<proc>          crash one process      (p0r1, oracle2)
//   recover:<proc>        undo a crash           (also `recover:last` — the
//                         most recent crash/kill victim)
//   kill-leader:<group>   crash the CURRENT leader of p<i> or oracle,
//                         resolved at fire time, not at parse time
//   cut:A|B               cut every link between process sets A and B
//   cut:A>B               directional: A can no longer reach B, but B
//                         still reaches A (asymmetric partition)
//   heal                  restore every link cut so far
//   drop:<p>@<t>+<dur>    at <t>, set drop probability to <p> for <dur>, then
//                         restore the previous value
//
// Process sets are '+'-joined elements; an element is a process (p0r1,
// oracle2) or a whole group (p0 = all replicas of partition 0, oracle = all
// oracle replicas). Times take us/ms/s suffixes: `kill-leader:p0@120ms`.
//
// resolve_plan() also accepts the names of the shipped plans (the ones CI
// smoke-tests and lincheck covers); shipped_plans() enumerates them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dssmr::fault {

enum class FaultAction : std::uint8_t {
  kCrash,
  kRecover,
  kKillLeader,
  kCut,
  kHeal,
  kDropBurst,
};

/// A process or process set, resolved against a Deployment at fire time (the
/// plan itself is deployment-agnostic: `p2r1` is valid in any deployment with
/// at least 3 partitions of 2 replicas).
struct FaultTarget {
  enum class Kind : std::uint8_t {
    kReplica,        // p<i>r<j>
    kOracleReplica,  // oracle<r>
    kPartition,      // p<i> (whole group; kill-leader / cut sets)
    kOracle,         // oracle (whole group)
    kLastVictim,     // `last`: most recent crash / kill-leader victim
  };
  Kind kind = Kind::kReplica;
  std::uint32_t partition = 0;
  std::uint32_t replica = 0;

  bool operator==(const FaultTarget&) const = default;
};

struct FaultEvent {
  Duration at = 0;  // relative to Nemesis::arm()
  FaultAction action = FaultAction::kHeal;
  FaultTarget target{};               // crash / recover / kill-leader
  std::vector<FaultTarget> side_a;    // cut
  std::vector<FaultTarget> side_b;    // cut
  bool directed = false;              // cut: only a -> b
  double drop_probability = 0.0;      // drop burst
  Duration duration = 0;              // drop burst
};

struct FaultPlan {
  std::string name;  // shipped-plan name, or "custom"
  std::string spec;  // the DSL text the plan was parsed from
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

/// Parses the DSL above. Throws std::invalid_argument with a pointed message
/// on malformed input (unknown action, bad target, missing '@time', ...).
FaultPlan parse_plan(std::string_view spec);

/// Named plan shipped with the repo (and exercised by CI + lincheck).
struct ShippedPlan {
  std::string_view name;
  std::string_view spec;
  std::string_view what;  // one-line description for --help / docs
};
const std::vector<ShippedPlan>& shipped_plans();

/// Looks `name_or_spec` up in shipped_plans() first; otherwise parses it as
/// DSL. This is what --nemesis feeds.
FaultPlan resolve_plan(std::string_view name_or_spec);

}  // namespace dssmr::fault
