#include "fault/nemesis.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dssmr::fault {
namespace {

/// Leader-watch cadence after a kill-leader: fine enough that
/// time_to_new_leader is accurate to half a heartbeat, coarse enough not to
/// inflate the event count.
constexpr Duration kLeaderPoll = usec(500);
/// Give up watching after this many polls (a group with no quorum left never
/// elects; the histogram simply records nothing).
constexpr int kLeaderPollLimit = 10000;

}  // namespace

Nemesis::Nemesis(harness::Deployment& deployment, FaultPlan plan)
    : d_(deployment), plan_(std::move(plan)) {
  validate();
}

void Nemesis::validate() const {
  const auto& cfg = d_.config();
  auto check = [&](const FaultTarget& t) {
    switch (t.kind) {
      case FaultTarget::Kind::kReplica:
        if (t.partition >= cfg.partitions || t.replica >= cfg.replicas_per_partition) {
          throw std::invalid_argument(
              "fault plan \"" + plan_.name + "\" targets p" + std::to_string(t.partition) +
              "r" + std::to_string(t.replica) + " but the deployment has " +
              std::to_string(cfg.partitions) + " partitions x " +
              std::to_string(cfg.replicas_per_partition) + " replicas");
        }
        break;
      case FaultTarget::Kind::kOracleReplica:
        if (t.replica >= cfg.oracle_replicas) {
          throw std::invalid_argument("fault plan \"" + plan_.name + "\" targets oracle" +
                                      std::to_string(t.replica) + " but the oracle has " +
                                      std::to_string(cfg.oracle_replicas) + " replicas");
        }
        break;
      case FaultTarget::Kind::kPartition:
        if (t.partition >= cfg.partitions) {
          throw std::invalid_argument("fault plan \"" + plan_.name + "\" targets p" +
                                      std::to_string(t.partition) +
                                      " but the deployment has " +
                                      std::to_string(cfg.partitions) + " partitions");
        }
        break;
      case FaultTarget::Kind::kOracle:
      case FaultTarget::Kind::kLastVictim:
        break;
    }
  };
  for (const FaultEvent& e : plan_.events) {
    check(e.target);
    for (const FaultTarget& t : e.side_a) check(t);
    for (const FaultTarget& t : e.side_b) check(t);
  }
}

void Nemesis::arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;
  for (const FaultEvent& e : plan_.events) {
    d_.engine().schedule(e.at, [this, &e] { fire(e); });
  }
}

Nemesis::Node* Nemesis::process_node(const FaultTarget& t) {
  switch (t.kind) {
    case FaultTarget::Kind::kReplica:
      return &d_.server(t.partition, t.replica);
    case FaultTarget::Kind::kOracleReplica:
      return &d_.oracle(t.replica);
    case FaultTarget::Kind::kLastVictim:
      return last_victim_;
    default:
      return nullptr;
  }
}

std::vector<Nemesis::Node*> Nemesis::group_members(const FaultTarget& t) {
  std::vector<Node*> out;
  if (t.kind == FaultTarget::Kind::kPartition) {
    for (std::size_t r = 0; r < d_.config().replicas_per_partition; ++r) {
      out.push_back(&d_.server(t.partition, r));
    }
  } else if (t.kind == FaultTarget::Kind::kOracle) {
    for (std::size_t r = 0; r < d_.config().oracle_replicas; ++r) {
      out.push_back(&d_.oracle(r));
    }
  }
  return out;
}

std::vector<ProcessId> Nemesis::expand_set(const std::vector<FaultTarget>& set) {
  std::vector<ProcessId> out;
  for (const FaultTarget& t : set) {
    if (Node* n = process_node(t); n != nullptr) {
      out.push_back(n->pid());
    } else {
      for (Node* m : group_members(t)) out.push_back(m->pid());
    }
  }
  return out;
}

void Nemesis::fire(const FaultEvent& e) {
  ++events_fired_;
  d_.metrics().inc("faults.events_injected");
  switch (e.action) {
    case FaultAction::kCrash:
      if (Node* n = process_node(e.target); n != nullptr) do_crash(*n);
      break;
    case FaultAction::kRecover:
      if (Node* n = process_node(e.target); n != nullptr) do_recover(*n);
      break;
    case FaultAction::kKillLeader:
      do_kill_leader(e);
      break;
    case FaultAction::kCut:
      do_cut(e);
      break;
    case FaultAction::kHeal:
      do_heal();
      break;
    case FaultAction::kDropBurst:
      do_drop_burst(e);
      break;
  }
}

void Nemesis::do_crash(Node& n) {
  if (n.halted()) return;  // crashing a corpse is a no-op, not a new window
  d_.network().crash(n.pid());
  n.halt_node();
  last_victim_ = &n;
  d_.metrics().inc("faults.crashes");
  trace(stats::TraceEvent::kFaultInject, n.pid().value);
  mark(stats::Recorder::MarkKind::kFaultBegin, "crash pid=" + std::to_string(n.pid().value));
  window_open();
}

void Nemesis::do_recover(Node& n) {
  if (!n.halted()) return;
  d_.network().recover(n.pid());
  n.restart_node();
  d_.metrics().inc("faults.recoveries");
  trace(stats::TraceEvent::kFaultRecover, n.pid().value);
  mark(stats::Recorder::MarkKind::kFaultEnd, "recover pid=" + std::to_string(n.pid().value));
  window_close();
}

void Nemesis::do_kill_leader(const FaultEvent& e) {
  std::vector<Node*> members = group_members(e.target);
  Node* leader = nullptr;
  for (Node* m : members) {
    if (!m->halted() && m->is_leader()) {
      leader = m;
      break;
    }
  }
  if (leader == nullptr) return;  // no live leader to kill right now
  const Time killed_at = d_.engine().now();
  do_crash(*leader);
  d_.metrics().inc("faults.leader_kills");
  watch_for_leader(std::move(members), killed_at, kLeaderPollLimit);
}

void Nemesis::watch_for_leader(std::vector<Node*> members, Time killed_at,
                               int polls_left) {
  for (Node* m : members) {
    if (!m->halted() && m->is_leader()) {
      d_.metrics().histogram("faults.time_to_new_leader_us")
          .record(d_.engine().now() - killed_at);
      return;
    }
  }
  if (polls_left <= 0) return;
  d_.engine().schedule(kLeaderPoll, [this, members = std::move(members), killed_at,
                                     polls_left]() mutable {
    watch_for_leader(std::move(members), killed_at, polls_left - 1);
  });
}

void Nemesis::cut_one(ProcessId from, ProcessId to) {
  if (from == to) return;
  if (!d_.network().link_up(from, to)) return;  // already down (ours or not)
  d_.network().set_link_directed(from, to, false);
  cut_links_.emplace_back(from, to);
  d_.metrics().inc("faults.links_cut");
}

void Nemesis::do_cut(const FaultEvent& e) {
  const std::vector<ProcessId> a = expand_set(e.side_a);
  const std::vector<ProcessId> b = expand_set(e.side_b);
  const std::size_t before = cut_links_.size();
  for (ProcessId pa : a) {
    for (ProcessId pb : b) {
      cut_one(pa, pb);
      if (!e.directed) cut_one(pb, pa);
    }
  }
  trace(stats::TraceEvent::kFaultInject, 0,
        static_cast<std::int64_t>(cut_links_.size() - before));
  mark(stats::Recorder::MarkKind::kFaultBegin,
       "cut " + std::to_string(cut_links_.size() - before) + " links");
  ++open_cut_events_;
  window_open();
}

void Nemesis::do_heal() {
  for (const auto& [from, to] : cut_links_) {
    d_.network().set_link_directed(from, to, true);
  }
  trace(stats::TraceEvent::kFaultRecover, 0,
        static_cast<std::int64_t>(cut_links_.size()));
  mark(stats::Recorder::MarkKind::kFaultEnd,
       "heal " + std::to_string(cut_links_.size()) + " links");
  cut_links_.clear();
  d_.metrics().inc("faults.heals");
  while (open_cut_events_ > 0) {
    --open_cut_events_;
    window_close();
  }
}

void Nemesis::do_drop_burst(const FaultEvent& e) {
  // Bursts are not meant to nest; an overlapping burst restores the previous
  // burst's elevated value. Plans shipped here keep bursts disjoint.
  const double prev = d_.network().config().drop_probability;
  d_.network().set_drop_probability(e.drop_probability);
  d_.metrics().inc("faults.drop_bursts");
  trace(stats::TraceEvent::kFaultInject, 0,
        static_cast<std::int64_t>(e.drop_probability * 1e6));
  mark(stats::Recorder::MarkKind::kFaultBegin,
       "drop burst p=" + std::to_string(e.drop_probability));
  window_open();
  d_.engine().schedule(e.duration, [this, prev] {
    d_.network().set_drop_probability(prev);
    trace(stats::TraceEvent::kFaultRecover, 0);
    mark(stats::Recorder::MarkKind::kFaultEnd, "drop burst over");
    window_close();
  });
}

void Nemesis::window_open() {
  if (open_disruptions_++ == 0) {
    retries_at_open_ = d_.metrics().counter("client.retries");
    fallbacks_at_open_ = d_.metrics().counter("client.fallbacks");
  }
}

void Nemesis::window_close() {
  if (open_disruptions_ == 0) return;
  if (--open_disruptions_ == 0) {
    d_.metrics().inc("faults.retries_in_window",
                     d_.metrics().counter("client.retries") - retries_at_open_);
    d_.metrics().inc("faults.fallbacks_in_window",
                     d_.metrics().counter("client.fallbacks") - fallbacks_at_open_);
  }
}

void Nemesis::trace(stats::TraceEvent e, std::uint32_t node, std::int64_t arg) {
  d_.metrics().trace().record(e, d_.engine().now(), node, 0, arg);
}

void Nemesis::mark(stats::Recorder::MarkKind kind, std::string label) {
  d_.metrics().recorder().mark(d_.engine().now(), kind, std::move(label));
}

}  // namespace dssmr::fault
