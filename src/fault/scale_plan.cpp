#include "fault/scale_plan.h"

#include <algorithm>
#include <stdexcept>

namespace dssmr::fault {
namespace {

[[noreturn]] void bad(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad scale plan \"" + std::string(spec) + "\": " + why);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(s);
      return out;
    }
    out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// `120ms`, `50us`, `2s` -> microseconds.
Duration parse_time(std::string_view spec, std::string_view s) {
  s = trim(s);
  std::size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) bad(spec, "expected a time like 120ms, got \"" + std::string(s) + "\"");
  std::uint32_t n = 0;
  if (!parse_u32(s.substr(0, digits), n)) bad(spec, "time out of range: " + std::string(s));
  const std::string_view unit = s.substr(digits);
  if (unit == "us") return usec(n);
  if (unit == "ms") return msec(n);
  if (unit == "s") return sec(n);
  bad(spec, "unknown time unit \"" + std::string(unit) + "\" (want us/ms/s)");
}

ScaleEvent parse_event(std::string_view spec, std::string_view s) {
  const std::size_t at_pos = s.rfind('@');
  if (at_pos == std::string_view::npos) {
    bad(spec, "event \"" + std::string(s) + "\" is missing @time");
  }
  ScaleEvent e;
  const std::string_view time_part = trim(s.substr(at_pos + 1));
  const std::string_view head = trim(s.substr(0, at_pos));

  std::string_view action = head;
  std::string_view args;
  if (const std::size_t colon = head.find(':'); colon != std::string_view::npos) {
    action = head.substr(0, colon);
    args = trim(head.substr(colon + 1));
  }

  if (action == "add-partition") {
    e.action = ScaleAction::kAddPartition;
    if (!args.empty()) bad(spec, "add-partition takes no argument");
  } else if (action == "remove-partition") {
    e.action = ScaleAction::kRemovePartition;
    if (!parse_u32(args, e.partition)) {
      bad(spec, "remove-partition needs a partition index, got \"" + std::string(args) + "\"");
    }
  } else {
    bad(spec, "unknown action \"" + std::string(action) + "\"");
  }
  e.at = parse_time(spec, time_part);
  return e;
}

}  // namespace

ScalePlan parse_scale_plan(std::string_view spec) {
  ScalePlan plan;
  plan.name = "custom";
  plan.spec = std::string(trim(spec));
  if (plan.spec.empty()) bad(spec, "empty plan");
  for (std::string_view ev : split(plan.spec, ';')) {
    ev = trim(ev);
    if (ev.empty()) continue;
    plan.events.push_back(parse_event(spec, ev));
  }
  if (plan.events.empty()) bad(spec, "plan has no events");
  // Stable execution order: by trigger time, ties in written order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ScaleEvent& a, const ScaleEvent& b) { return a.at < b.at; });
  return plan;
}

const std::vector<ShippedScalePlan>& shipped_scale_plans() {
  static const std::vector<ShippedScalePlan> kPlans = {
      {"scale-out", "add-partition@150ms",
       "boot one fresh partition mid-run; the oracle rebalances onto it"},
      {"scale-in", "remove-partition:1@150ms",
       "drain partition 1 onto the rest, wait for the barrier, retire it"},
      {"scale-bounce", "add-partition@100ms;remove-partition:2@400ms",
       "add a partition, then drain and retire it again (2-partition deployments: "
       "the added one is index 2)"},
  };
  return kPlans;
}

ScalePlan resolve_scale_plan(std::string_view name_or_spec) {
  for (const ShippedScalePlan& p : shipped_scale_plans()) {
    if (name_or_spec == p.name) {
      ScalePlan plan = parse_scale_plan(p.spec);
      plan.name = std::string(p.name);
      return plan;
    }
  }
  return parse_scale_plan(name_or_spec);
}

}  // namespace dssmr::fault
