// Nemesis: executes a FaultPlan against a live Deployment.
//
// The nemesis is an actor on the simulation engine like everything else: it
// schedules one callback per plan event at arm()+event.at, and each callback
// manipulates the deployment through the same public crash/recover surfaces
// tests use (Network::crash/recover + GroupNode::halt_node/restart_node,
// Network::set_link_directed, Network::set_drop_probability). It draws no
// randomness of its own, so a (plan, deployment config, seed) triple replays
// the exact same fault history — run records stay byte-identical.
//
// Besides injecting faults it measures them, under the `faults.` metric
// prefix (surfaced as the run record's v3 `faults` section):
//   faults.events_injected / crashes / recoveries / leader_kills /
//   faults.links_cut / heals / drop_bursts      — what the plan did;
//   faults.time_to_new_leader_us (histogram)    — kill-leader to the group
//                                                 having a live leader again;
//   faults.retries_in_window / fallbacks_in_window — client retries and
//     S-SMR fallbacks that happened while at least one disruption was open
//     (crash not yet recovered, cut not yet healed, drop burst running).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "fault/fault_plan.h"
#include "harness/deployment.h"
#include "multicast/atomic.h"

namespace dssmr::fault {

class Nemesis {
 public:
  /// Validates every plan target against the deployment's shape (throws
  /// std::invalid_argument on e.g. `p5` in a 2-partition deployment).
  Nemesis(harness::Deployment& deployment, FaultPlan plan);

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Schedules every plan event relative to engine().now(). Call once, after
  /// Deployment::settle() and before driving load.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t events_fired() const { return events_fired_; }

 private:
  using Node = multicast::GroupNode;

  void validate() const;
  Node* process_node(const FaultTarget& t);
  std::vector<Node*> group_members(const FaultTarget& t);
  std::vector<ProcessId> expand_set(const std::vector<FaultTarget>& set);

  void fire(const FaultEvent& e);
  void do_crash(Node& n);
  void do_recover(Node& n);
  void do_kill_leader(const FaultEvent& e);
  void do_cut(const FaultEvent& e);
  void do_heal();
  void do_drop_burst(const FaultEvent& e);
  void cut_one(ProcessId from, ProcessId to);
  void watch_for_leader(std::vector<Node*> members, Time killed_at, int polls_left);

  void window_open();
  void window_close();
  void trace(stats::TraceEvent e, std::uint32_t node, std::int64_t arg = 0);
  /// Telemetry timeline annotation (stats::Recorder); no-op when telemetry
  /// is off. Begin/end marks let dashboards shade disrupted intervals.
  void mark(stats::Recorder::MarkKind kind, std::string label);

  harness::Deployment& d_;
  FaultPlan plan_;
  bool armed_ = false;
  std::uint64_t events_fired_ = 0;
  Node* last_victim_ = nullptr;
  /// Directed links currently cut by this nemesis; heal restores exactly
  /// these (a deployment-made cut from a test is left alone).
  std::vector<std::pair<ProcessId, ProcessId>> cut_links_;
  std::size_t open_cut_events_ = 0;
  /// Fault-window bookkeeping: client counter snapshots while >= 1
  /// disruption is open.
  std::size_t open_disruptions_ = 0;
  std::uint64_t retries_at_open_ = 0;
  std::uint64_t fallbacks_at_open_ = 0;
};

}  // namespace dssmr::fault
