// Deterministic discrete-event simulation engine.
//
// The whole distributed system runs inside one Engine: processes, network
// links, timers and CPU service times are all events on a single virtual
// clock. Determinism is guaranteed by ordering events by (time, insertion
// sequence), so two runs with the same seeds replay the same history.
//
// Every simulated event in the repository passes through here, so the hot
// path is engineered for wall-clock speed:
//  * callbacks are small-buffer-optimized (sim::Callback): scheduling a
//    lambda whose captures fit Callback::kInlineSize never allocates;
//  * the ready queue is an implicit 4-ary min-heap of 24-byte POD nodes —
//    sift operations move PODs, never callbacks (those sit in stable slots);
//  * TimerIds carry a per-slot generation tag, making cancel() O(1) with no
//    auxiliary hash set, and making cancellation of an already-fired, stale
//    or unknown id a safe no-op (pending() can never under- or over-count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dssmr::sim {

/// Handle returned by schedule(); can be used to cancel a pending event.
/// Encodes (slot << 32) | generation; 0 is never a valid id.
using TimerId = std::uint64_t;

/// Move-only `void()` callable with small-buffer optimization. Callables up
/// to kInlineSize bytes live inside the object; larger ones fall back to one
/// heap allocation (like std::function, but with a buffer sized for the
/// simulator's capture lists instead of libstdc++'s 16 bytes).
class Callback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Callback() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` in place —
  /// lets the engine build callbacks directly inside their slot with no
  /// intermediate move.
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* dst, void* src) {
        switch (op) {
          case Op::kMove:
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
            break;
          case Op::kDestroy:
            static_cast<Fn*>(dst)->~Fn();
            break;
        }
      };
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      manage_ = [](Op op, void* dst, void* src) {
        switch (op) {
          case Op::kMove:
            ::new (dst) Fn*(*static_cast<Fn**>(src));
            break;
          case Op::kDestroy:
            delete *static_cast<Fn**>(dst);
            break;
        }
      };
    }
  }

  /// Moving an already-built Callback in keeps the drop-in-for-std::function
  /// property of schedule()'s forwarding overloads.
  void emplace(Callback&& other) noexcept { *this = std::move(other); }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op : std::uint8_t { kMove, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* dst, void* src);

  void move_from(Callback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMove, buf_, other.buf_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

class Engine {
 public:
  using Callback = sim::Callback;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` microseconds from now (delay >= 0).
  /// Accepts any `void()` callable; it is constructed directly inside the
  /// engine's callback slot (no intermediate Callback move).
  template <class F>
  TimerId schedule(Duration delay, F&& cb) {
    DSSMR_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Schedules `cb` at absolute time `when` (>= now()).
  template <class F>
  TimerId schedule_at(Time when, F&& cb) {
    DSSMR_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    const std::uint32_t s = acquire_slot();
    Slot& slot = slots_[s];
    slot.cb.emplace(std::forward<F>(cb));
    heap_push(Node{when, next_seq_++, s, slot.gen});
    ++live_;
    return (static_cast<TimerId>(s) << 32) | slot.gen;
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a no-op (the generation tag detects all three).
  void cancel(TimerId id);

  /// Runs a single event. Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs every event with time <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of not-yet-fired, not-cancelled events. Exact at all times.
  std::size_t pending() const { return live_; }

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

 private:
  /// Heap node: ordering key plus a generation-tagged slot reference. Cancel
  /// leaves the node in the heap as a tombstone (generation mismatch); it is
  /// discarded when it reaches the top.
  struct Node {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    Callback cb;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Lexicographic (when, seq) as one 128-bit compare: `when` is a
  /// non-negative microsecond count, so its uint64 cast preserves order, and
  /// the compiler turns the wide compare into two branch-free instructions —
  /// this runs ~24 times per heap pop, so it matters.
  static bool before(const Node& a, const Node& b) {
    using Wide = unsigned __int128;
    const Wide ka = (static_cast<Wide>(static_cast<std::uint64_t>(a.when)) << 64) | a.seq;
    const Wide kb = (static_cast<Wide>(static_cast<std::uint64_t>(b.when)) << 64) | b.seq;
    return ka < kb;
  }
  bool is_live(const Node& n) const { return slots_[n.slot].gen == n.gen; }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next_free;
      return s;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void heap_push(Node n) {
    std::size_t i = heap_.size();
    heap_.push_back(n);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(n, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = n;
  }

  void release_slot(std::uint32_t s);
  Node heap_pop();  // precondition: heap non-empty
  void drop_dead_top();
  void fire(const Node& n);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace dssmr::sim
