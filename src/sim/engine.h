// Deterministic discrete-event simulation engine.
//
// The whole distributed system runs inside one Engine: processes, network
// links, timers and CPU service times are all events on a single virtual
// clock. Determinism is guaranteed by ordering events by (time, insertion
// sequence), so two runs with the same seeds replay the same history.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace dssmr::sim {

/// Handle returned by schedule(); can be used to cancel a pending event.
using TimerId = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` microseconds from now (delay >= 0).
  TimerId schedule(Duration delay, Callback cb);

  /// Schedules `cb` at absolute time `when` (>= now()).
  TimerId schedule_at(Time when, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void cancel(TimerId id);

  /// Runs a single event. Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs every event with time <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of not-yet-fired, not-cancelled events.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time when;
    TimerId seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the front event; precondition: queue non-empty.
  void fire_front();

  Time now_ = 0;
  TimerId next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace dssmr::sim
