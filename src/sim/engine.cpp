#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace dssmr::sim {

void Engine::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.cb.reset();
  ++slot.gen;
  if (slot.gen == 0) ++slot.gen;  // generation 0 means "invalid id", never issue it
  slot.next_free = free_head_;
  free_head_ = s;
}

void Engine::cancel(TimerId id) {
  const auto s = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  // Already fired, already cancelled, or never issued: the slot's current
  // generation no longer matches, so this is a guaranteed no-op.
  if (gen == 0 || s >= slots_.size() || slots_[s].gen != gen) return;
  release_slot(s);  // the heap node stays behind as a tombstone
  --live_;
}

Engine::Node Engine::heap_pop() {
  const Node top = heap_.front();
  const Node last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Engine::drop_dead_top() {
  while (!heap_.empty() && !is_live(heap_.front())) heap_pop();
}

void Engine::fire(const Node& n) {
  DSSMR_ASSERT(n.when >= now_);
  now_ = n.when;
  // Move the callback out and free the slot first, so the callback can
  // schedule/cancel freely (including reusing this very slot).
  Callback cb = std::move(slots_[n.slot].cb);
  release_slot(n.slot);
  --live_;
  ++executed_;
  cb();
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Node n = heap_pop();
    if (!is_live(n)) continue;  // cancelled tombstone
    fire(n);
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    const Node n = heap_pop();
    if (is_live(n)) fire(n);
  }
}

void Engine::run_until(Time t) {
  DSSMR_ASSERT(t >= now_);
  stopped_ = false;
  for (;;) {
    drop_dead_top();  // the time peek below must see a live event
    if (stopped_ || heap_.empty() || heap_.front().when > t) break;
    fire(heap_pop());
  }
  if (!stopped_) now_ = t;
}

}  // namespace dssmr::sim
