#include "sim/engine.h"

#include <utility>

#include "common/assert.h"

namespace dssmr::sim {

TimerId Engine::schedule(Duration delay, Callback cb) {
  DSSMR_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(cb));
}

TimerId Engine::schedule_at(Time when, Callback cb) {
  DSSMR_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  const TimerId id = next_seq_++;
  queue_.push(Event{when, id, std::move(cb)});
  return id;
}

void Engine::cancel(TimerId id) {
  if (id == 0 || id >= next_seq_) return;
  cancelled_.insert(id);
}

void Engine::fire_front() {
  // The queue owns const references; copy out then pop so the callback can
  // schedule/cancel freely.
  Event ev = queue_.top();
  queue_.pop();
  if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  DSSMR_ASSERT(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  ev.cb();
}

bool Engine::step() {
  while (!queue_.empty()) {
    const std::size_t before = executed_;
    fire_front();
    if (executed_ != before) return true;  // skipped events were cancelled
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) fire_front();
}

void Engine::run_until(Time t) {
  DSSMR_ASSERT(t >= now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= t) fire_front();
  if (!stopped_) now_ = t;
}

}  // namespace dssmr::sim
