#include "multicast/batcher.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/assert.h"

namespace dssmr::multicast {
namespace {

/// Same salt as the amcast layer's stamp entries (atomic.cpp, client.cpp):
/// a batched and an unbatched submission of the same multicast must derive
/// identical entry ids so the leaders' dedup collapses them.
constexpr std::uint64_t kStampSalt = 0x57a3;

}  // namespace

void SubmitBatcher::init(net::Network& network, const Directory& directory, ProcessId self,
                         BatchConfig config) {
  DSSMR_ASSERT_MSG(self != kNoProcess, "register the batcher's endpoint first");
  DSSMR_ASSERT_MSG(config.enabled(), "constructing a batcher with batching off");
  network_ = &network;
  directory_ = &directory;
  self_ = self;
  cfg_ = config;
}

void SubmitBatcher::set_metrics(stats::Metrics* metrics) {
  if (metrics == nullptr) return;
  flushes_ctr_ = &metrics->counter_handle("batch.flushes");
  entries_ctr_ = &metrics->counter_handle("batch.entries");
  full_flush_ctr_ = &metrics->counter_handle("batch.flush_full");
  timer_flush_ctr_ = &metrics->counter_handle("batch.flush_timer");
  size_hist_ = &metrics->histogram("batch.size_entries");
}

void SubmitBatcher::amcast(const AmcastMessage& msg, FlushFn on_flush) {
  DSSMR_ASSERT_MSG(network_ != nullptr, "init() not called");
  if (halted_) return;
  auto stamp = net::make_msg<StampEntry>(msg);
  for (GroupId g : msg.dests) {
    pending_[g].push_back(consensus::LogEntry{derive_entry_id(msg.id, g, kStampSalt), stamp});
  }
  if (on_flush) flush_cbs_.push_back(std::move(on_flush));
  ++queued_items_;
  if (queued_items_ >= cfg_.batch_size) {
    if (full_flush_ctr_ != nullptr) full_flush_ctr_->inc();
    flush();
  } else {
    arm_timer();
  }
}

void SubmitBatcher::submit(GroupId g, consensus::LogEntry entry) {
  DSSMR_ASSERT_MSG(network_ != nullptr, "init() not called");
  if (halted_) return;
  pending_[g].push_back(std::move(entry));
  ++queued_items_;
  if (queued_items_ >= cfg_.batch_size) {
    if (full_flush_ctr_ != nullptr) full_flush_ctr_->inc();
    flush();
  } else {
    arm_timer();
  }
}

void SubmitBatcher::flush() {
  if (pending_.empty()) return;
  network_->engine().cancel(timer_);
  timer_ = 0;
  std::size_t total = 0;
  for (auto& [g, entries] : pending_) {
    total += entries.size();
    auto batch = net::make_msg<BatchSubmitMsg>(g, std::move(entries));
    const std::span<const ProcessId> members = directory_->members(g);
    if (std::find(members.begin(), members.end(), self_) == members.end()) {
      network_->multisend(self_, members, batch);
    } else {
      // A group node batching for its own group while following: peers only.
      for (ProcessId p : members) {
        if (p != self_) network_->send(self_, p, batch);
      }
    }
  }
  if (flushes_ctr_ != nullptr) {
    flushes_ctr_->inc();
    entries_ctr_->inc(total);
    size_hist_->record(static_cast<std::int64_t>(total));
  }
  pending_.clear();
  queued_items_ = 0;
  const Time now = network_->engine().now();
  // Reset before firing: a callback may enqueue the next command.
  std::vector<FlushFn> cbs = std::exchange(flush_cbs_, {});
  for (FlushFn& cb : cbs) cb(now);
}

std::size_t SubmitBatcher::pending_entries() const {
  std::size_t n = 0;
  for (const auto& [g, entries] : pending_) n += entries.size();
  return n;
}

void SubmitBatcher::arm_timer() {
  if (halted_ || timer_ != 0) return;
  timer_ = network_->engine().schedule(cfg_.batch_delay, [this] {
    timer_ = 0;
    if (halted_) return;
    if (timer_flush_ctr_ != nullptr && !pending_.empty()) timer_flush_ctr_->inc();
    flush();
  });
}

void SubmitBatcher::halt() {
  halted_ = true;
  if (network_ != nullptr) network_->engine().cancel(timer_);
  timer_ = 0;
  pending_.clear();
  flush_cbs_.clear();
  queued_items_ = 0;
}

void SubmitBatcher::restart() { halted_ = false; }

}  // namespace dssmr::multicast
