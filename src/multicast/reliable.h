// Reliable multicast (Section 2.3 of the paper).
//
// Properties: validity (a correct sender's message reaches all correct
// destination-group members), agreement (if any correct process delivers,
// all correct destination members deliver) and integrity (at-most-once, only
// if sent). Implementation is the classic flooding scheme: the sender sends
// to every member of every destination group; on first receipt each member
// relays once to the other members, which masks a sender that crashes midway
// through its sends.
//
// Relaying costs O(n^2) messages per multicast. Experiments that do not
// inject crashes can disable it (`relay = false`); with per-pair reliable
// FIFO channels and no crashes, the direct sends alone already implement
// reliable multicast.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "multicast/directory.h"
#include "multicast/messages.h"
#include "net/network.h"

namespace dssmr::multicast {

class RmcastEngine {
 public:
  /// `deliver` is invoked exactly once per multicast this process is a
  /// destination of, with the original sender and payload.
  using DeliverFn = std::function<void(ProcessId origin, const net::MessagePtr& payload)>;

  RmcastEngine(net::Network& network, const Directory& directory, bool relay,
               DeliverFn deliver);

  /// Multicasts `payload` from `self` to all members of `dests`.
  /// If `self` is itself a member of a destination group, it self-delivers.
  void rmcast(ProcessId self, std::vector<GroupId> dests, net::MessagePtr payload);

  /// Routes an incoming message. Returns false when `m` is not an RmMsg.
  bool handle(ProcessId self, const net::MessagePtr& m);

  std::uint64_t delivered_count() const { return delivered_count_; }

 private:
  void deliver_if_new(ProcessId self, const RmMsg& m);

  net::Network& network_;
  const Directory& directory_;
  bool relay_;
  DeliverFn deliver_;
  std::unordered_set<MsgId> seen_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t next_local_ = 0;
};

}  // namespace dssmr::multicast
