// Wire and log-entry types of the multicast layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "consensus/paxos.h"
#include "net/message.h"

namespace dssmr::multicast {

/// An atomically multicast application message. `dests` is sorted and
/// duplicate-free; `sender` lets the executing servers address their reply.
struct AmcastMessage {
  MsgId id;
  ProcessId sender = kNoProcess;
  std::vector<GroupId> dests;
  net::MessagePtr payload;

  bool single_group() const { return dests.size() == 1; }
  std::size_t size_bytes() const {
    return 48 + dests.size() * 4 + (payload != nullptr ? payload->size_bytes() : 0);
  }
};

inline void normalize_dests(std::vector<GroupId>& dests) {
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
}

/// Log entry: "message m was addressed to this group" — processing it
/// assigns the group's local timestamp (Skeen step 1).
struct StampEntry final : net::Message {
  AmcastMessage msg;
  explicit StampEntry(AmcastMessage m) : msg(std::move(m)) {}
  const char* type_name() const override { return "amcast.stamp"; }
  std::size_t size_bytes() const override { return msg.size_bytes(); }
};

/// Log entry: "group `from` assigned timestamp `ts` to message `mid`"
/// (Skeen step 2, routed through the receiving group's log so that every
/// replica of the group observes timestamps in the same order).
struct TsEntry final : net::Message {
  MsgId mid;
  GroupId from;
  std::uint64_t ts;
  TsEntry(MsgId m, GroupId f, std::uint64_t t) : mid(m), from(f), ts(t) {}
  const char* type_name() const override { return "amcast.ts"; }
  std::size_t size_bytes() const override { return 32; }
};

/// Request that a group sequence `entry` into its log. Sent to every group
/// member; only the current Paxos leader acts on it, so duplicated
/// submissions collapse via the leader's entry-id dedup.
struct SubmitToLog final : net::Message {
  GroupId gid;
  consensus::LogEntry entry;
  SubmitToLog(GroupId g, consensus::LogEntry e) : gid(g), entry(std::move(e)) {}
  const char* type_name() const override { return "amcast.submit"; }
  std::size_t size_bytes() const override {
    return 32 + (entry.payload != nullptr ? entry.payload->size_bytes() : 0);
  }
};

/// A batch of log-entry submissions for one group, accumulated by a
/// SubmitBatcher (see multicast/batcher.h) and shipped as a single message.
/// Like SubmitToLog, it is sent to every group member and only the current
/// Paxos leader sequences the entries; the leader's entry-id dedup absorbs
/// duplicated batches from retries.
struct BatchSubmitMsg final : net::Message {
  GroupId gid;
  std::vector<consensus::LogEntry> entries;
  BatchSubmitMsg(GroupId g, std::vector<consensus::LogEntry> e)
      : gid(g), entries(std::move(e)) {}
  const char* type_name() const override { return "amcast.batchsubmit"; }
  std::size_t size_bytes() const override {
    std::size_t n = 24;
    for (const auto& e : entries) {
      n += 16 + (e.payload != nullptr ? e.payload->size_bytes() : 0);
    }
    return n;
  }
};

/// Reliable-multicast envelope.
struct RmMsg final : net::Message {
  MsgId id;
  ProcessId origin;
  std::vector<GroupId> dests;
  net::MessagePtr payload;
  bool relayed;  // true once forwarded by a receiver (stops re-relaying)
  RmMsg(MsgId i, ProcessId o, std::vector<GroupId> d, net::MessagePtr p, bool r)
      : id(i), origin(o), dests(std::move(d)), payload(std::move(p)), relayed(r) {}
  const char* type_name() const override { return "rmcast.msg"; }
  std::size_t size_bytes() const override {
    return 48 + dests.size() * 4 + (payload != nullptr ? payload->size_bytes() : 0);
  }
};

/// Clusters destination sets by transitive overlap: returns one cluster id
/// per input set, with ids dense from 0 in first-appearance order. Two sets
/// sharing any group land in the same cluster (union-find over at most a few
/// dozen pending moves — the move coalescer merges every cluster into one
/// bulk multicast over the union of its members' destinations).
inline std::vector<std::size_t> cluster_by_dest_overlap(
    const std::vector<std::vector<GroupId>>& dest_sets) {
  std::vector<std::size_t> parent(dest_sets.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i < dest_sets.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const auto& a = dest_sets[i];
      const auto& b = dest_sets[j];
      const bool overlap = std::any_of(a.begin(), a.end(), [&](GroupId g) {
        return std::find(b.begin(), b.end(), g) != b.end();
      });
      if (overlap) parent[find(i)] = find(j);
    }
  }
  std::vector<std::size_t> cluster(dest_sets.size());
  std::vector<std::size_t> dense(dest_sets.size(), SIZE_MAX);
  std::size_t next = 0;
  for (std::size_t i = 0; i < dest_sets.size(); ++i) {
    const std::size_t root = find(i);
    if (dense[root] == SIZE_MAX) dense[root] = next++;
    cluster[i] = dense[root];
  }
  return cluster;
}

/// Mixes a message id and a group into a deterministic log-entry id, so that
/// retried submissions of the same logical entry deduplicate at the leader.
inline MsgId derive_entry_id(MsgId base, GroupId g, std::uint64_t salt) {
  std::uint64_t x = base.value ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(g.value) + 1)) ^
                    (salt * 0xbf58476d1ce4e5b9ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return MsgId{x ^ (x >> 31)};
}

}  // namespace dssmr::multicast
