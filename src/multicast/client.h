// Client-side multicast endpoint.
//
// Clients are not members of any group: they submit StampEntries to the
// destination groups' members (only the current leader sequences them) and
// receive replies as direct messages. Re-invoking amcast_with_id with the
// same MsgId is safe — duplicate stamps deduplicate at the leaders and at
// the amcast apply layer — which is exactly what the DS-SMR client proxy's
// retry loop relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "consensus/paxos.h"
#include "multicast/batcher.h"
#include "multicast/directory.h"
#include "multicast/messages.h"
#include "net/network.h"

namespace dssmr::multicast {

class ClientNode : public net::Actor {
 public:
  ClientNode() = default;
  ~ClientNode() override = default;

  /// Two-phase init (after network registration).
  void init_client_node(net::Network& network, const Directory& directory);

  /// Routes this client's submissions through a shared batcher (the rack's
  /// BatchRelay) instead of fanning SubmitToLog out per member. nullptr
  /// (default) keeps the direct path.
  void set_batcher(SubmitBatcher* batcher) { batcher_ = batcher; }
  bool batched() const { return batcher_ != nullptr; }

  void on_message(ProcessId from, const net::MessagePtr& m) final;

  /// Allocates a fresh message id for a logical operation.
  MsgId fresh_id();

  /// Atomically multicasts `payload` to `dests` under the given id. When a
  /// batcher is wired, `on_flush` fires once the batch carrying this
  /// multicast leaves the relay (never invoked on the direct path, where the
  /// submission leaves immediately).
  void amcast_with_id(MsgId id, std::vector<GroupId> dests, net::MessagePtr payload,
                      SubmitBatcher::FlushFn on_flush = nullptr);

  /// Convenience: fresh id + amcast; returns the id.
  MsgId amcast(std::vector<GroupId> dests, net::MessagePtr payload);

  net::Network& network() { return *network_; }
  const Directory& directory() const { return *directory_; }

 protected:
  /// Replies and any other direct traffic land here.
  virtual void on_reply(ProcessId from, const net::MessagePtr& m) = 0;

 private:
  net::Network* network_ = nullptr;
  const Directory* directory_ = nullptr;
  SubmitBatcher* batcher_ = nullptr;
  std::uint64_t next_msg_seq_ = 0;
};

}  // namespace dssmr::multicast
