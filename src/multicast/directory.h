// Static deployment directory: which processes form which multicast group.
//
// Groups are the unit of atomic multicast addressing: one group per state
// partition plus one group for the partitioning oracle. The directory is
// immutable after deployment construction and shared (by reference) across
// every node and client. Membership is stored as one dense ProcessId array
// with per-group offsets — members() is on the fan-out path of every send,
// and a flat span beats a vector-of-vectors' double indirection there.
#pragma once

#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dssmr::multicast {

class Directory {
 public:
  /// Appends a group; returns its id. Ids are dense, starting at 0.
  GroupId add_group(std::vector<ProcessId> members) {
    DSSMR_ASSERT_MSG(!members.empty(), "empty multicast group");
    const GroupId gid{static_cast<std::uint32_t>(offsets_.size() - 1)};
    members_.insert(members_.end(), members.begin(), members.end());
    offsets_.push_back(static_cast<std::uint32_t>(members_.size()));
    return gid;
  }

  std::span<const ProcessId> members(GroupId g) const {
    DSSMR_ASSERT(g.value + 1 < offsets_.size());
    return {members_.data() + offsets_[g.value],
            offsets_[g.value + 1] - offsets_[g.value]};
  }

  std::size_t group_count() const { return offsets_.size() - 1; }

  /// All group ids, in id order (handy for "multicast to all partitions").
  std::vector<GroupId> all_groups() const {
    std::vector<GroupId> ids;
    ids.reserve(group_count());
    for (std::uint32_t i = 0; i < group_count(); ++i) ids.push_back(GroupId{i});
    return ids;
  }

 private:
  std::vector<ProcessId> members_;       // all groups' members, concatenated
  std::vector<std::uint32_t> offsets_{0};  // group g: [offsets_[g], offsets_[g+1])
};

}  // namespace dssmr::multicast
