// Static deployment directory: which processes form which multicast group.
//
// Groups are the unit of atomic multicast addressing: one group per state
// partition plus one group for the partitioning oracle. The directory is
// immutable after deployment construction and shared (by reference) across
// every node and client.
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dssmr::multicast {

class Directory {
 public:
  /// Appends a group; returns its id. Ids are dense, starting at 0.
  GroupId add_group(std::vector<ProcessId> members) {
    const GroupId gid{static_cast<std::uint32_t>(groups_.size())};
    DSSMR_ASSERT_MSG(!members.empty(), "empty multicast group");
    groups_.push_back(std::move(members));
    return gid;
  }

  const std::vector<ProcessId>& members(GroupId g) const {
    DSSMR_ASSERT(g.value < groups_.size());
    return groups_[g.value];
  }

  std::size_t group_count() const { return groups_.size(); }

  /// All group ids, in id order (handy for "multicast to all partitions").
  std::vector<GroupId> all_groups() const {
    std::vector<GroupId> ids;
    ids.reserve(groups_.size());
    for (std::uint32_t i = 0; i < groups_.size(); ++i) ids.push_back(GroupId{i});
    return ids;
  }

 private:
  std::vector<std::vector<ProcessId>> groups_;
};

}  // namespace dssmr::multicast
