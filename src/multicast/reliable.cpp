#include "multicast/reliable.h"

#include <utility>

#include "common/assert.h"

namespace dssmr::multicast {

RmcastEngine::RmcastEngine(net::Network& network, const Directory& directory, bool relay,
                           DeliverFn deliver)
    : network_(network), directory_(directory), relay_(relay), deliver_(std::move(deliver)) {
  DSSMR_ASSERT(deliver_ != nullptr);
}

void RmcastEngine::rmcast(ProcessId self, std::vector<GroupId> dests,
                          net::MessagePtr payload) {
  normalize_dests(dests);
  const MsgId id{(static_cast<std::uint64_t>(self.value) << 32) |
                 (0x8000'0000ull + next_local_++)};
  auto msg = std::make_shared<const RmMsg>(id, self, dests, std::move(payload),
                                           /*relayed=*/false);
  bool self_is_dest = false;
  for (GroupId g : msg->dests) {
    for (ProcessId p : directory_.members(g)) {
      if (p == self) {
        self_is_dest = true;
        continue;
      }
      network_.send(self, p, msg);
    }
  }
  if (self_is_dest) deliver_if_new(self, *msg);
}

bool RmcastEngine::handle(ProcessId self, const net::MessagePtr& m) {
  const auto* rm = net::msg_cast<RmMsg>(m);
  if (rm == nullptr) return false;
  const bool fresh = !seen_.contains(rm->id);
  deliver_if_new(self, *rm);
  if (fresh && relay_ && !rm->relayed) {
    auto relayed = std::make_shared<const RmMsg>(rm->id, rm->origin, rm->dests, rm->payload,
                                                 /*relayed=*/true);
    for (GroupId g : rm->dests) {
      for (ProcessId p : directory_.members(g)) {
        if (p == self || p == rm->origin) continue;
        network_.send(self, p, relayed);
      }
    }
  }
  return true;
}

void RmcastEngine::deliver_if_new(ProcessId self, const RmMsg& m) {
  (void)self;
  if (!seen_.insert(m.id).second) return;
  ++delivered_count_;
  deliver_(m.origin, m.payload);
}

}  // namespace dssmr::multicast
