// Command batching for the atomic-multicast submission path.
//
// The per-command cost of the ordered path is dominated by submission fan-out:
// every amcast ships one SubmitToLog to every member of every destination
// group. A SubmitBatcher amortizes that across commands — submissions queue
// until the batch fills (`batch_size`) or a virtual-time bound expires
// (`batch_delay`), then every destination group receives one BatchSubmitMsg
// carrying all of its entries, with a single destination-set union per batch.
//
// Two tiers use it:
//  * Client tier: a BatchRelay process per rack (the paper's client-proxy
//    tier) collects the multicasts of that rack's clients. Clients hand
//    submissions over in-process — the relay models the proxy co-located
//    with the clients — and the relay ships from its own network endpoint.
//  * Server tier: each GroupNode routes its remote submissions (timestamp
//    pushes, stamp re-disseminations) through an embedded batcher.
//
// Batching is off (batch_size == 0) by default, and an unbatched deployment
// constructs no batcher at all, keeping the message schedule byte-identical
// to the pre-batching code.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "consensus/paxos.h"
#include "multicast/directory.h"
#include "multicast/messages.h"
#include "net/network.h"
#include "sim/engine.h"
#include "stats/metrics.h"

namespace dssmr::multicast {

struct BatchConfig {
  /// Logical submissions per flush; 0 disables batching entirely.
  std::size_t batch_size = 0;
  /// Max virtual-time wait from the first queued submission.
  Duration batch_delay = usec(100);

  bool enabled() const { return batch_size > 0; }
};

/// Accumulates log-entry submissions and flushes them as one BatchSubmitMsg
/// per destination group (sent to every member; the leader sequences).
class SubmitBatcher {
 public:
  using FlushFn = std::function<void(Time flushed_at)>;

  SubmitBatcher() = default;

  /// Two-phase init: `self` must already be registered with the network.
  void init(net::Network& network, const Directory& directory, ProcessId self,
            BatchConfig config);

  /// Interns the batch.* counters and the flush-size histogram (call once,
  /// right after init; nullptr keeps the batcher metrics-free).
  void set_metrics(stats::Metrics* metrics);

  /// Queues the StampEntries of one atomic multicast — one entry per
  /// destination group, derived once from the shared stamp payload.
  /// `on_flush` fires exactly once, when the batch leaves this process.
  void amcast(const AmcastMessage& msg, FlushFn on_flush = nullptr);

  /// Queues a single log entry for group `g` (timestamp pushes and stamp
  /// re-disseminations from the server tier).
  void submit(GroupId g, consensus::LogEntry entry);

  /// Ships everything queued now (size/timer triggers call this internally).
  void flush();

  /// Entries queued but not yet flushed (telemetry gauge).
  std::size_t pending_entries() const;

  /// Crash support: a halted batcher drops its queue — the in-flight
  /// submissions are lost exactly like messages of a crashed process, and
  /// client timeouts re-drive them.
  void halt();
  void restart();

 private:
  void arm_timer();

  net::Network* network_ = nullptr;
  const Directory* directory_ = nullptr;
  ProcessId self_ = kNoProcess;
  BatchConfig cfg_;
  bool halted_ = false;

  /// Per-group queues (std::map: flush order must be deterministic).
  std::map<GroupId, std::vector<consensus::LogEntry>> pending_;
  std::vector<FlushFn> flush_cbs_;
  std::size_t queued_items_ = 0;  // logical submissions since the last flush
  sim::TimerId timer_ = 0;

  stats::Counter* flushes_ctr_ = nullptr;
  stats::Counter* entries_ctr_ = nullptr;
  stats::Counter* full_flush_ctr_ = nullptr;
  stats::Counter* timer_flush_ctr_ = nullptr;
  stats::Histogram* size_hist_ = nullptr;
};

/// A client-tier proxy process owning one SubmitBatcher: the clients of one
/// rack enqueue in-process, the relay ships from its own endpoint. Send-only
/// (replies go directly from the partition leaders to the clients).
class BatchRelay final : public net::Actor {
 public:
  /// Two-phase init, after network registration.
  void init_relay(net::Network& network, const Directory& directory, BatchConfig config) {
    batcher_.init(network, directory, pid(), config);
  }

  void on_message(ProcessId from, const net::MessagePtr& m) override {
    (void)from;
    (void)m;
  }

  SubmitBatcher& batcher() { return batcher_; }
  const SubmitBatcher& batcher() const { return batcher_; }

 private:
  SubmitBatcher batcher_;
};

}  // namespace dssmr::multicast
