// Genuine atomic multicast across groups (Section 2.4 of the paper),
// implemented Skeen-style over the per-group Paxos logs.
//
// Protocol, per destination group g of message m:
//   1. The submitter gets a StampEntry(m) sequenced in g's log. Processing it
//      advances g's logical clock and assigns m's local timestamp ts_g(m).
//      All replicas of g derive the same clock because they consume the same
//      log. If m addresses only g, ts_g(m) is final immediately.
//   2. For multi-group messages, g's current leader submits TsEntry(m, g,
//      ts_g(m)) into every other destination group's log (retried across
//      leader changes; receivers deduplicate). A pull path (TsQuery) covers
//      the corner where a group delivered m and stopped pushing while a peer
//      group still lacks its timestamp.
//   3. When g has processed timestamps from all of m.dests, the final
//      timestamp is their maximum, and m is delivered once no other pending
//      message can precede it: every other stamped-but-undelivered message's
//      timestamp lower bound must exceed (final_ts(m), m.id). Messages not
//      yet stamped cannot overtake, because stamping always exceeds the
//      clock, which is >= final_ts(m) by the time m finalizes.
//
// This yields integrity, uniform agreement (from Paxos), acyclic delivery
// order and prefix order — exactly the primitive S-SMR/DS-SMR assume.
//
// GroupNode bundles one Paxos replica + the amcast state machine + a
// reliable-multicast engine into a single simulated process; the SMR server
// proxy and the oracle replica derive from it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/bounded.h"
#include "common/types.h"
#include "consensus/paxos.h"
#include "multicast/batcher.h"
#include "multicast/directory.h"
#include "multicast/messages.h"
#include "multicast/reliable.h"
#include "net/network.h"
#include "sim/engine.h"
#include "stats/metrics.h"
#include "stats/span.h"
#include "stats/trace.h"

namespace dssmr::multicast {

/// Pull request for a missing timestamp (see step 2 above).
struct TsQuery final : net::Message {
  MsgId mid;
  GroupId requester;
  TsQuery(MsgId m, GroupId r) : mid(m), requester(r) {}
  const char* type_name() const override { return "amcast.tsquery"; }
  std::size_t size_bytes() const override { return 24; }
};

class AmcastCore {
 public:
  struct Callbacks {
    /// Atomic delivery, in the group's total order. `stamped_at` is when this
    /// group stamped the message (step 1) — the delivery latency m spent in
    /// the multicast here is now - stamped_at.
    std::function<void(const AmcastMessage&, Time stamped_at)> deliver;
    /// Submit `entry` for sequencing in group `g` (leader duty).
    std::function<void(GroupId g, consensus::LogEntry entry)> submit_remote;
    /// Ask the members of group `g` for their timestamp of `mid`.
    std::function<void(GroupId g, MsgId mid)> query_ts;
    /// Whether this replica currently leads its group.
    std::function<bool()> is_leader;
  };

  AmcastCore(sim::Engine& engine, GroupId self_group, Callbacks callbacks,
             Duration ts_retry_interval);

  /// Consumes one decided log entry (in log order). Returns false if the
  /// entry's payload is not an amcast entry type.
  bool on_log_entry(const consensus::LogEntry& entry);

  /// Re-issues timestamp propagation for unfinished messages; call when this
  /// replica gains leadership.
  void on_gained_leadership();

  /// This group's timestamp for `mid`, if it stamped the message recently
  /// (pending now, or delivered within the retention window).
  std::optional<std::uint64_t> lookup_ts(MsgId mid) const;

  void halt();
  /// Undoes halt(): re-arms the timestamp-retry timer. Pending state is kept
  /// — the replica re-learns any missed log entries through Paxos and the
  /// dedup here absorbs the replay.
  void restart();

  std::uint64_t delivered_count() const { return delivered_count_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t clock() const { return clock_; }

 private:
  struct Pending {
    std::optional<AmcastMessage> msg;       // known once stamped here
    std::optional<std::uint64_t> local_ts;  // our group's timestamp
    std::map<GroupId, std::uint64_t> ts;    // per-group timestamps seen
    std::optional<std::uint64_t> final_ts;
    Time stamped_at = 0;
    /// Lower bound on the final timestamp given current knowledge.
    std::uint64_t bound() const;
  };

  void process_stamp(const StampEntry& e);
  void process_ts(const TsEntry& e);
  void maybe_finalize(Pending& p);
  void push_ts(MsgId mid, const Pending& p, bool pull_missing);
  void try_deliver();
  void arm_retry_timer();

  sim::Engine& engine_;
  GroupId self_group_;
  Callbacks cb_;
  Duration ts_retry_interval_;
  bool halted_ = false;

  std::uint64_t clock_ = 0;
  std::map<MsgId, Pending> pending_;
  BoundedSet<MsgId> delivered_;
  BoundedMap<MsgId, std::uint64_t> delivered_ts_;
  std::uint64_t delivered_count_ = 0;
  sim::TimerId retry_timer_ = 0;
};

// ---------------------------------------------------------------------------

struct GroupNodeConfig {
  consensus::PaxosConfig paxos;
  Duration ts_retry_interval = msec(50);
  /// Reliable-multicast flooding (turn off in crash-free perf runs).
  bool rmcast_relay = true;
  /// Server-tier submission batching: remote submissions (timestamp pushes,
  /// stamp re-disseminations) queue in an embedded SubmitBatcher instead of
  /// fanning out per entry. Off by default — the node then constructs no
  /// batcher and the message schedule matches the pre-batching code exactly.
  BatchConfig batching;
};

/// A replica process belonging to exactly one multicast group.
class GroupNode : public net::Actor {
 public:
  GroupNode() = default;
  ~GroupNode() override = default;

  /// Two-phase init: the node must already be registered with the network
  /// (so pid() is valid) and `directory` must already contain the group.
  void init_group_node(net::Network& network, const Directory& directory, GroupId gid,
                       GroupNodeConfig config, std::uint64_t seed);

  /// Arms Paxos timers; call on every node after the whole deployment is wired.
  virtual void start();

  /// Stops timers and silences the node (simulated crash, usually together
  /// with Network::crash). A halted node processes no messages at all: even
  /// if the network still delivers to it, it answers nothing.
  void halt_node();

  /// Rejoins after halt_node(): the node comes back as a follower and
  /// re-learns the log it missed via Paxos catch-up. Pair with
  /// Network::recover when the crash also cut the network.
  void restart_node();

  bool halted() const { return halted_; }

  void on_message(ProcessId from, const net::MessagePtr& m) final;

  GroupId group() const { return gid_; }
  bool is_leader() const { return paxos_ != nullptr && paxos_->is_leader(); }
  const Directory& directory() const { return *directory_; }
  net::Network& network() { return *network_; }
  sim::Engine& engine() { return network_->engine(); }

  /// Atomically multicasts `payload` to `dests` (this node acts as submitter;
  /// used by servers that originate commands, e.g. an oracle issuing moves).
  MsgId amcast(std::vector<GroupId> dests, net::MessagePtr payload);

  /// Reliably multicasts to the members of `dests`.
  void rmcast(std::vector<GroupId> dests, net::MessagePtr payload);

  /// Point-to-point message (replies to clients).
  void send_direct(ProcessId to, net::MessagePtr payload);

  std::uint64_t amcast_delivered() const { return amcast_->delivered_count(); }
  /// Stamped-but-undelivered multicasts at this replica (telemetry gauge).
  std::size_t amcast_pending() const { return amcast_->pending_count(); }
  /// Undecided Paxos proposals in flight here (telemetry gauge; nonzero only
  /// while leading).
  std::size_t paxos_inflight() const { return paxos_->inflight_proposals(); }
  /// Entries queued in the embedded server-tier batcher (0 when batching is
  /// off or nothing is queued).
  std::size_t batch_pending() const {
    return batcher_ != nullptr ? batcher_->pending_entries() : 0;
  }

  /// Wires the deployment-wide event trace (leader-gated kAmcastDeliver here,
  /// kLeaderChange in the Paxos core). Call after init_group_node().
  void set_trace(stats::Trace* trace);

  /// Wires the deployment-wide span store: each traced payload delivered here
  /// gets a leader-gated kAmcast span covering stamp -> delivery. Call after
  /// init_group_node().
  void set_spans(stats::SpanStore* spans) { spans_ = spans; }

  /// Wires the deployment-wide metrics registry: interns a leader-gated
  /// `amcast.delivered` counter bumped once per group delivery (the interned
  /// handle keeps the per-delivery hot path free of by-name map lookups).
  /// Call after init_group_node().
  void set_metrics(stats::Metrics* metrics);

 protected:
  /// Atomic delivery hook — same sequence on every group member.
  virtual void on_amdeliver(const AmcastMessage& m) = 0;
  /// Reliable delivery hook.
  virtual void on_rmdeliver(ProcessId origin, const net::MessagePtr& payload) = 0;
  /// Everything that is not consensus/multicast traffic.
  virtual void on_direct(ProcessId from, const net::MessagePtr& m) {
    (void)from;
    (void)m;
  }

  MsgId next_msg_id();

 private:
  void submit_local_or_remote(GroupId g, consensus::LogEntry entry);

  net::Network* network_ = nullptr;
  const Directory* directory_ = nullptr;
  GroupId gid_ = kNoGroup;
  GroupNodeConfig config_;
  bool halted_ = false;
  std::unique_ptr<consensus::PaxosCore> paxos_;
  std::unique_ptr<AmcastCore> amcast_;
  std::unique_ptr<RmcastEngine> rmcast_;
  /// Server-tier submission batcher; null unless config_.batching enables it.
  std::unique_ptr<SubmitBatcher> batcher_;
  stats::Trace* trace_ = nullptr;
  stats::SpanStore* spans_ = nullptr;
  /// Interned by set_metrics(); nullptr when no metrics sink is wired.
  stats::Counter* delivered_ctr_ = nullptr;
  std::uint64_t next_msg_seq_ = 0;
};

}  // namespace dssmr::multicast
