#include "multicast/client.h"

#include <utility>

#include "common/assert.h"

namespace dssmr::multicast {

void ClientNode::init_client_node(net::Network& network, const Directory& directory) {
  DSSMR_ASSERT_MSG(pid() != kNoProcess, "register the client with the network first");
  network_ = &network;
  directory_ = &directory;
}

void ClientNode::on_message(ProcessId from, const net::MessagePtr& m) {
  on_reply(from, m);
}

MsgId ClientNode::fresh_id() {
  return MsgId{(static_cast<std::uint64_t>(pid().value) << 32) | next_msg_seq_++};
}

void ClientNode::amcast_with_id(MsgId id, std::vector<GroupId> dests, net::MessagePtr payload,
                                SubmitBatcher::FlushFn on_flush) {
  normalize_dests(dests);
  AmcastMessage msg{id, pid(), dests, std::move(payload)};
  if (batcher_ != nullptr) {
    batcher_->amcast(msg, std::move(on_flush));
    return;
  }
  auto stamp = net::make_msg<StampEntry>(std::move(msg));
  for (GroupId g : dests) {
    auto wrapped = net::make_msg<SubmitToLog>(
        g, consensus::LogEntry{derive_entry_id(id, g, 0x57a3), stamp});
    for (ProcessId p : directory_->members(g)) network_->send(pid(), p, wrapped);
  }
}

MsgId ClientNode::amcast(std::vector<GroupId> dests, net::MessagePtr payload) {
  const MsgId id = fresh_id();
  amcast_with_id(id, std::move(dests), std::move(payload));
  return id;
}

}  // namespace dssmr::multicast
