#include "multicast/atomic.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/assert.h"

namespace dssmr::multicast {
namespace {

constexpr std::uint64_t kStampSalt = 0x57a3;
constexpr std::uint64_t kTsSalt = 0x75e0;

}  // namespace

// ---- AmcastCore ------------------------------------------------------------

AmcastCore::AmcastCore(sim::Engine& engine, GroupId self_group, Callbacks callbacks,
                       Duration ts_retry_interval)
    : engine_(engine),
      self_group_(self_group),
      cb_(std::move(callbacks)),
      ts_retry_interval_(ts_retry_interval) {
  DSSMR_ASSERT(cb_.deliver != nullptr && cb_.submit_remote != nullptr &&
               cb_.query_ts != nullptr && cb_.is_leader != nullptr);
  arm_retry_timer();
}

void AmcastCore::halt() {
  halted_ = true;
  engine_.cancel(retry_timer_);
  retry_timer_ = 0;
}

void AmcastCore::restart() {
  if (!halted_) return;
  halted_ = false;
  arm_retry_timer();
}

std::uint64_t AmcastCore::Pending::bound() const {
  if (final_ts) return *final_ts;
  std::uint64_t b = local_ts.value_or(0);
  for (const auto& [g, t] : ts) b = std::max(b, t);
  return b;
}

bool AmcastCore::on_log_entry(const consensus::LogEntry& entry) {
  if (const auto* stamp = net::msg_cast<StampEntry>(entry.payload)) {
    process_stamp(*stamp);
    return true;
  }
  if (const auto* ts = net::msg_cast<TsEntry>(entry.payload)) {
    process_ts(*ts);
    return true;
  }
  return false;
}

void AmcastCore::process_stamp(const StampEntry& e) {
  const MsgId mid = e.msg.id;
  if (delivered_.contains(mid)) return;  // duplicate of an already-delivered message
  Pending& p = pending_[mid];
  if (p.local_ts) return;  // duplicate stamp
  p.msg = e.msg;
  p.local_ts = ++clock_;
  p.ts[self_group_] = *p.local_ts;
  p.stamped_at = engine_.now();
  maybe_finalize(p);
  if (!p.final_ts) push_ts(mid, p, /*pull_missing=*/false);
  try_deliver();
}

void AmcastCore::process_ts(const TsEntry& e) {
  if (e.from == self_group_) return;  // should not happen; ignore defensively
  if (delivered_.contains(e.mid)) return;
  Pending& p = pending_[e.mid];
  auto [it, inserted] = p.ts.try_emplace(e.from, e.ts);
  (void)it;
  if (!inserted) return;  // duplicate timestamp
  clock_ = std::max(clock_, e.ts);
  maybe_finalize(p);
  try_deliver();
}

void AmcastCore::maybe_finalize(Pending& p) {
  if (p.final_ts || !p.msg || !p.local_ts) return;
  if (p.ts.size() != p.msg->dests.size()) return;
  std::uint64_t final = 0;
  for (const auto& [g, t] : p.ts) final = std::max(final, t);
  p.final_ts = final;
  clock_ = std::max(clock_, final);
}

void AmcastCore::push_ts(MsgId mid, const Pending& p, bool pull_missing) {
  if (halted_ || !cb_.is_leader() || !p.msg || !p.local_ts) return;
  for (GroupId g : p.msg->dests) {
    if (g == self_group_) continue;
    consensus::LogEntry entry{derive_entry_id(mid, g, kTsSalt + self_group_.value),
                              net::make_msg<TsEntry>(mid, self_group_, *p.local_ts)};
    cb_.submit_remote(g, std::move(entry));
    if (pull_missing && !p.ts.contains(g)) {
      // The peer group may never have received the stamp at all (the
      // submitter's messages were lost). Re-disseminate the stamp — we hold
      // the full message — and also ask for the timestamp in case the group
      // stamped it long ago and only the TsEntry got lost.
      cb_.submit_remote(g, consensus::LogEntry{derive_entry_id(mid, g, kStampSalt),
                                               net::make_msg<StampEntry>(*p.msg)});
      cb_.query_ts(g, mid);
    }
  }
}

std::optional<std::uint64_t> AmcastCore::lookup_ts(MsgId mid) const {
  if (auto it = pending_.find(mid); it != pending_.end() && it->second.local_ts) {
    return it->second.local_ts;
  }
  if (const std::uint64_t* ts = delivered_ts_.find(mid); ts != nullptr) return *ts;
  return std::nullopt;
}

void AmcastCore::on_gained_leadership() {
  for (const auto& [mid, p] : pending_) {
    if (p.local_ts && !p.final_ts) push_ts(mid, p, /*pull_missing=*/false);
  }
}

void AmcastCore::arm_retry_timer() {
  if (halted_) return;
  retry_timer_ = engine_.schedule(ts_retry_interval_, [this] {
    retry_timer_ = 0;
    if (halted_) return;
    if (cb_.is_leader()) {
      const Time now = engine_.now();
      for (const auto& [mid, p] : pending_) {
        if (!p.local_ts || p.final_ts) continue;
        const bool stale = now - p.stamped_at > 2 * ts_retry_interval_;
        push_ts(mid, p, /*pull_missing=*/stale);
      }
    }
    arm_retry_timer();
  });
}

void AmcastCore::try_deliver() {
  for (;;) {
    // Find the stamped message with the smallest (bound, id); deliverable only
    // if its timestamp is final — anything else could still order before it.
    const Pending* best = nullptr;
    MsgId best_id{};
    for (const auto& [mid, p] : pending_) {
      if (!p.local_ts) continue;  // timestamp arrived before the stamp; not ours yet
      if (best == nullptr ||
          std::pair(p.bound(), mid.value) < std::pair(best->bound(), best_id.value)) {
        best = &p;
        best_id = mid;
      }
    }
    if (best == nullptr || !best->final_ts) return;

    AmcastMessage msg = *best->msg;
    const Time stamped_at = best->stamped_at;
    delivered_.insert(best_id);
    if (!msg.single_group()) delivered_ts_.put(best_id, *best->local_ts);
    pending_.erase(best_id);
    ++delivered_count_;
    cb_.deliver(msg, stamped_at);
  }
}

// ---- GroupNode -------------------------------------------------------------

void GroupNode::init_group_node(net::Network& network, const Directory& directory,
                                GroupId gid, GroupNodeConfig config, std::uint64_t seed) {
  DSSMR_ASSERT_MSG(pid() != kNoProcess, "register the node with the network first");
  network_ = &network;
  directory_ = &directory;
  gid_ = gid;
  config_ = config;

  consensus::PaxosCore::Callbacks pcb;
  pcb.send = [this](ProcessId to, net::MessagePtr m) {
    network_->send(pid(), to, std::move(m));
  };
  pcb.on_decide = [this](consensus::Slot, const consensus::Batch& batch) {
    for (const auto& entry : batch) {
      const bool consumed = amcast_->on_log_entry(entry);
      DSSMR_ASSERT_MSG(consumed, "unknown log entry payload");
    }
  };
  pcb.on_leadership = [this](bool leading) {
    if (leading) amcast_->on_gained_leadership();
  };
  const std::span<const ProcessId> members = directory.members(gid);
  paxos_ = std::make_unique<consensus::PaxosCore>(
      network.engine(), gid, std::vector<ProcessId>(members.begin(), members.end()), pid(),
      config.paxos, std::move(pcb), seed);

  AmcastCore::Callbacks acb;
  acb.deliver = [this](const AmcastMessage& m, Time stamped_at) {
    // Leader-gated so one trace record is emitted per group delivery, not one
    // per replica (matching the leader-gated metrics counters).
    const bool leading = paxos_->is_leader();
    if (delivered_ctr_ != nullptr && leading) delivered_ctr_->inc();
    if (trace_ != nullptr && leading) {
      trace_->record(stats::TraceEvent::kAmcastDeliver, network_->engine().now(), pid().value,
                     m.id.value, static_cast<std::int64_t>(m.dests.size()));
    }
    if (spans_ != nullptr && spans_->enabled() && leading) {
      // This group's view of the multicast: stamp -> atomic delivery. The
      // client folds its own end-to-end amcast phase; these server-side spans
      // stay unfolded (one per destination group, they would double-count).
      if (const std::uint64_t tid = m.payload->trace_id(); tid != 0) {
        spans_->record({.trace_id = tid,
                        .phase = stats::SpanPhase::kAmcast,
                        .start = stamped_at,
                        .end = network_->engine().now(),
                        .node = pid().value,
                        .group = gid_,
                        .arg = static_cast<std::int64_t>(m.dests.size())},
                       /*fold=*/false);
      }
    }
    on_amdeliver(m);
  };
  acb.submit_remote = [this](GroupId g, consensus::LogEntry entry) {
    submit_local_or_remote(g, std::move(entry));
  };
  acb.query_ts = [this](GroupId g, MsgId mid) {
    auto q = net::make_msg<TsQuery>(mid, gid_);
    for (ProcessId p : directory_->members(g)) network_->send(pid(), p, q);
  };
  acb.is_leader = [this] { return paxos_->is_leader(); };
  amcast_ = std::make_unique<AmcastCore>(network.engine(), gid, std::move(acb),
                                         config.ts_retry_interval);

  rmcast_ = std::make_unique<RmcastEngine>(
      network, directory, config.rmcast_relay,
      [this](ProcessId origin, const net::MessagePtr& payload) {
        on_rmdeliver(origin, payload);
      });

  if (config_.batching.enabled()) {
    batcher_ = std::make_unique<SubmitBatcher>();
    batcher_->init(network, directory, pid(), config_.batching);
  }
}

void GroupNode::start() {
  DSSMR_ASSERT_MSG(paxos_ != nullptr, "init_group_node() not called");
  paxos_->start();
}

void GroupNode::set_trace(stats::Trace* trace) {
  DSSMR_ASSERT_MSG(paxos_ != nullptr, "init_group_node() not called");
  trace_ = trace;
  paxos_->set_trace(trace);
}

void GroupNode::set_metrics(stats::Metrics* metrics) {
  DSSMR_ASSERT_MSG(paxos_ != nullptr, "init_group_node() not called");
  delivered_ctr_ = metrics != nullptr ? &metrics->counter_handle("amcast.delivered") : nullptr;
  if (batcher_ != nullptr) batcher_->set_metrics(metrics);
}

void GroupNode::halt_node() {
  halted_ = true;
  if (paxos_ != nullptr) paxos_->halt();
  if (amcast_ != nullptr) amcast_->halt();
  if (batcher_ != nullptr) batcher_->halt();
}

void GroupNode::restart_node() {
  if (!halted_) return;
  halted_ = false;
  if (paxos_ != nullptr) paxos_->restart();
  if (amcast_ != nullptr) amcast_->restart();
  if (batcher_ != nullptr) batcher_->restart();
}

void GroupNode::on_message(ProcessId from, const net::MessagePtr& m) {
  // A crashed replica is dead by itself: without this guard only the Paxos
  // core ignored traffic, while timestamp queries, reliable-multicast relays
  // and direct messages were still served — a "crashed" node that answers.
  if (halted_) return;
  if (paxos_->handle(from, m)) return;
  if (const auto* sub = net::msg_cast<SubmitToLog>(m)) {
    if (sub->gid == gid_ && paxos_->is_leader()) paxos_->submit(sub->entry);
    return;
  }
  if (const auto* batch = net::msg_cast<BatchSubmitMsg>(m)) {
    if (batch->gid == gid_ && paxos_->is_leader()) {
      for (const consensus::LogEntry& e : batch->entries) paxos_->submit(e);
    }
    return;
  }
  if (const auto* q = net::msg_cast<TsQuery>(m)) {
    if (auto ts = amcast_->lookup_ts(q->mid)) {
      consensus::LogEntry entry{derive_entry_id(q->mid, q->requester, kTsSalt + gid_.value),
                                net::make_msg<TsEntry>(q->mid, gid_, *ts)};
      submit_local_or_remote(q->requester, std::move(entry));
    }
    return;
  }
  if (rmcast_->handle(pid(), m)) return;
  on_direct(from, m);
}

MsgId GroupNode::next_msg_id() {
  return MsgId{(static_cast<std::uint64_t>(pid().value) << 32) | next_msg_seq_++};
}

MsgId GroupNode::amcast(std::vector<GroupId> dests, net::MessagePtr payload) {
  normalize_dests(dests);
  AmcastMessage msg{next_msg_id(), pid(), dests, std::move(payload)};
  const MsgId id = msg.id;
  auto stamp = net::make_msg<StampEntry>(msg);
  for (GroupId g : dests) {
    submit_local_or_remote(g, consensus::LogEntry{derive_entry_id(id, g, kStampSalt), stamp});
  }
  return id;
}

void GroupNode::rmcast(std::vector<GroupId> dests, net::MessagePtr payload) {
  rmcast_->rmcast(pid(), std::move(dests), std::move(payload));
}

void GroupNode::send_direct(ProcessId to, net::MessagePtr payload) {
  network_->send(pid(), to, std::move(payload));
}

void GroupNode::submit_local_or_remote(GroupId g, consensus::LogEntry entry) {
  if (g == gid_ && paxos_->is_leader()) {
    paxos_->submit(std::move(entry));
    return;
  }
  if (batcher_ != nullptr) {
    // Server-tier batching: the entry rides the next BatchSubmitMsg to g's
    // members instead of fanning out immediately.
    batcher_->submit(g, std::move(entry));
    return;
  }
  auto wrapped = net::make_msg<SubmitToLog>(g, std::move(entry));
  for (ProcessId p : directory_->members(g)) {
    if (p == pid()) continue;
    network_->send(pid(), p, wrapped);
  }
}

}  // namespace dssmr::multicast
