#include "stats/timeseries.h"

#include "common/assert.h"

namespace dssmr::stats {

TimeSeries::TimeSeries(Duration bucket_width) : bucket_width_(bucket_width) {
  DSSMR_ASSERT(bucket_width > 0);
}

void TimeSeries::add(Time t, double amount) {
  DSSMR_ASSERT(t >= 0);
  const auto idx = static_cast<std::size_t>(t / bucket_width_);
  DSSMR_ASSERT_MSG(idx < kMaxBuckets,
                   "TimeSeries::add: t is implausibly far in the future (bucket index "
                   "exceeds kMaxBuckets); check the caller's clock arithmetic");
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += amount;
  total_ += amount;
}

double TimeSeries::bucket(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0.0;
}

double TimeSeries::rate(std::size_t i) const {
  return bucket(i) / to_seconds(bucket_width_);
}

}  // namespace dssmr::stats
