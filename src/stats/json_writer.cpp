#include "stats/json_writer.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/assert.h"

namespace dssmr::stats {

std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // top-level value
  DSSMR_ASSERT_MSG(stack_.back() == Scope::kArray, "object member without key()");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  DSSMR_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  DSSMR_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  DSSMR_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                   "key() outside an object");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << json_escaped(k) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escaped(v) << '"';
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

}  // namespace dssmr::stats
