#include "stats/run_record.h"

#include <ostream>

#include "stats/json_writer.h"

namespace dssmr::stats {
namespace {

void write_histogram(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("min", h.min());
  w.field("max", h.max());
  w.field("mean", h.mean());
  w.field("stddev", h.stddev());
  w.field("p50", h.percentile(0.50));
  w.field("p95", h.percentile(0.95));
  w.field("p99", h.percentile(0.99));
  w.key("cdf");
  w.begin_array();
  for (const auto& [value, fraction] : h.cdf(64)) {
    w.begin_array();
    w.value(value);
    w.value(fraction);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_series(JsonWriter& w, const TimeSeries& s) {
  w.begin_object();
  w.field("bucket_width_us", static_cast<std::int64_t>(s.bucket_width()));
  w.field("total", s.total());
  w.key("values");
  w.begin_array();
  for (std::size_t i = 0; i < s.bucket_count(); ++i) w.value(s.bucket(i));
  w.end_array();
  w.end_object();
}

void write_spans_summary(JsonWriter& w, const SpanStore& s) {
  w.begin_object();
  w.field("enabled", s.enabled());
  w.field("recorded", s.spans().size());
  w.field("dropped", s.dropped());
  w.end_object();
}

void write_trace_summary(JsonWriter& w, const Trace& t) {
  w.begin_object();
  w.field("enabled", t.enabled());
  w.field("recorded", t.records().size());
  w.field("dropped", t.dropped());
  w.key("events");
  w.begin_object();
  for (std::size_t i = 0; i < kTraceEventTypes; ++i) {
    const auto e = static_cast<TraceEvent>(i);
    if (t.count(e) > 0) w.field(to_string(e), t.count(e));
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_run_records(std::ostream& os, std::string_view experiment,
                       const std::vector<RunRecord>& runs) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", kRunRecordSchema);
  w.field("experiment", experiment);
  w.key("runs");
  w.begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.field("label", run.label);
    w.key("meta");
    w.begin_object();
    for (const auto& [k, v] : run.meta) w.field(k, v);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : run.metrics.counters()) w.field(name, c.value());
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : run.metrics.histograms()) {
      w.key(name);
      write_histogram(w, h);
    }
    w.end_object();
    w.key("series");
    w.begin_object();
    for (const auto& [name, s] : run.metrics.all_series()) {
      w.key(name);
      write_series(w, s);
    }
    w.end_object();
    // v2: per-phase latency histograms from the span store. The client
    // attributes every microsecond of a command to exactly one phase, so the
    // per-phase totals (mean * count) sum to the kCommand ("command") total.
    const SpanStore& spans = run.metrics.spans();
    if (spans.has_phase_data()) {
      w.key("phases");
      w.begin_object();
      for (std::size_t i = 0; i < kSpanPhases; ++i) {
        const auto p = static_cast<SpanPhase>(i);
        const Histogram& h = spans.phase_histogram(p);
        if (h.count() == 0) continue;
        w.key(to_string(p));
        write_histogram(w, h);
      }
      w.end_object();
    }
    // v3: fault-injection summary, present only for runs that carried
    // `faults.*` metrics (a nemesis ran). Counters are re-emitted here with
    // the prefix stripped so fault tooling has one stable place to look.
    bool any_faults = false;
    for (const auto& [name, c] : run.metrics.counters()) {
      if (name.starts_with("faults.")) {
        any_faults = true;
        break;
      }
    }
    if (any_faults) {
      w.key("faults");
      w.begin_object();
      for (const auto& [name, c] : run.metrics.counters()) {
        if (name.starts_with("faults.")) w.field(name.substr(7), c.value());
      }
      if (const Histogram* h = run.metrics.find_histogram("faults.time_to_new_leader_us");
          h != nullptr && h->count() > 0) {
        w.key("time_to_new_leader_us");
        write_histogram(w, *h);
      }
      w.end_object();
    }
    w.key("spans");
    write_spans_summary(w, spans);
    w.key("trace");
    write_trace_summary(w, run.metrics.trace());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace dssmr::stats
