#include "stats/run_record.h"

#include <algorithm>
#include <ostream>

#include "stats/json_writer.h"

namespace dssmr::stats {
namespace {

void write_histogram(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("min", h.min());
  w.field("max", h.max());
  w.field("mean", h.mean());
  w.field("stddev", h.stddev());
  w.field("p50", h.percentile(0.50));
  w.field("p95", h.percentile(0.95));
  w.field("p99", h.percentile(0.99));
  w.key("cdf");
  w.begin_array();
  for (const auto& [value, fraction] : h.cdf(64)) {
    w.begin_array();
    w.value(value);
    w.value(fraction);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_series(JsonWriter& w, const TimeSeries& s) {
  w.begin_object();
  w.field("bucket_width_us", static_cast<std::int64_t>(s.bucket_width()));
  w.field("total", s.total());
  w.key("values");
  w.begin_array();
  for (std::size_t i = 0; i < s.bucket_count(); ++i) w.value(s.bucket(i));
  w.end_array();
  w.end_object();
}

// v4: flight-recorder telemetry. Gauge samples are arrays aligned with
// `ticks`; heat buckets and latency windows are `interval_us` wide (bucket i
// covers [i*interval, (i+1)*interval)); trailing zero buckets are implicit.
// Per-partition `commands`/`multi` sum exactly to the end-of-run
// `server.single_partition_commands` + `server.multi_partition_commands`
// counters because both record at the same leader-gated sites.
void write_telemetry(JsonWriter& w, const Recorder& r) {
  w.begin_object();
  w.field("interval_us", static_cast<std::int64_t>(r.interval()));
  w.key("ticks");
  w.begin_array();
  for (Time t : r.tick_times()) w.value(static_cast<std::int64_t>(t));
  w.end_array();
  w.key("gauges");
  w.begin_object();
  for (const Recorder::Gauge& g : r.gauges()) {
    w.key(g.name);
    w.begin_array();
    for (double v : g.values) w.value(v);
    w.end_array();
  }
  w.end_object();
  w.key("partitions");
  w.begin_array();
  for (const Recorder::PartitionHeat& h : r.heat()) {
    w.begin_object();
    w.field("total_commands", h.total_commands);
    w.field("total_multi", h.total_multi);
    w.field("total_moves", h.total_moves);
    const auto write_buckets = [&w](const char* name,
                                    const std::vector<std::uint64_t>& buckets) {
      w.key(name);
      w.begin_array();
      for (std::uint64_t v : buckets) w.value(v);
      w.end_array();
    };
    write_buckets("commands", h.commands);
    write_buckets("multi", h.multi);
    write_buckets("moves", h.moves);
    w.end_object();
  }
  w.end_array();
  // Deployment-wide locality per bucket: single-partition fraction of all
  // commands (1.0 = perfectly local; null when the bucket saw no commands).
  std::size_t heat_buckets = 0;
  for (const Recorder::PartitionHeat& h : r.heat()) {
    heat_buckets = std::max(heat_buckets, h.commands.size());
  }
  w.key("locality");
  w.begin_array();
  for (std::size_t i = 0; i < heat_buckets; ++i) {
    std::uint64_t commands = 0;
    std::uint64_t multi = 0;
    for (const Recorder::PartitionHeat& h : r.heat()) {
      commands += i < h.commands.size() ? h.commands[i] : 0;
      multi += i < h.multi.size() ? h.multi[i] : 0;
    }
    if (commands == 0) {
      w.null();
    } else {
      w.value(1.0 - static_cast<double>(multi) / static_cast<double>(commands));
    }
  }
  w.end_array();
  w.key("latency_windows");
  w.begin_array();
  for (const Histogram& h : r.latency_windows()) {
    w.begin_object();
    w.field("count", h.count());
    w.field("mean", h.mean());
    w.field("p50", h.percentile(0.50));
    w.field("p99", h.percentile(0.99));
    w.end_object();
  }
  w.end_array();
  w.key("marks");
  w.begin_array();
  for (const Recorder::Mark& m : r.marks()) {
    w.begin_object();
    w.field("t_us", static_cast<std::int64_t>(m.at));
    w.field("kind", to_string(m.kind));
    w.field("label", m.label);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_spans_summary(JsonWriter& w, const SpanStore& s) {
  w.begin_object();
  w.field("enabled", s.enabled());
  w.field("recorded", s.spans().size());
  w.field("dropped", s.dropped());
  w.end_object();
}

void write_trace_summary(JsonWriter& w, const Trace& t) {
  w.begin_object();
  w.field("enabled", t.enabled());
  w.field("recorded", t.records().size());
  w.field("dropped", t.dropped());
  w.key("events");
  w.begin_object();
  for (std::size_t i = 0; i < kTraceEventTypes; ++i) {
    const auto e = static_cast<TraceEvent>(i);
    if (t.count(e) > 0) w.field(to_string(e), t.count(e));
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_run_records(std::ostream& os, std::string_view experiment,
                       const std::vector<RunRecord>& runs) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", kRunRecordSchema);
  w.field("experiment", experiment);
  w.key("runs");
  w.begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.field("label", run.label);
    w.key("meta");
    w.begin_object();
    for (const auto& [k, v] : run.meta) w.field(k, v);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : run.metrics.counters()) w.field(name, c.value());
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : run.metrics.histograms()) {
      w.key(name);
      write_histogram(w, h);
    }
    w.end_object();
    w.key("series");
    w.begin_object();
    for (const auto& [name, s] : run.metrics.all_series()) {
      w.key(name);
      write_series(w, s);
    }
    w.end_object();
    // v2: per-phase latency histograms from the span store. The client
    // attributes every microsecond of a command to exactly one phase, so the
    // per-phase totals (mean * count) sum to the kCommand ("command") total.
    const SpanStore& spans = run.metrics.spans();
    if (spans.has_phase_data()) {
      w.key("phases");
      w.begin_object();
      for (std::size_t i = 0; i < kSpanPhases; ++i) {
        const auto p = static_cast<SpanPhase>(i);
        const Histogram& h = spans.phase_histogram(p);
        if (h.count() == 0) continue;
        w.key(to_string(p));
        write_histogram(w, h);
      }
      w.end_object();
    }
    // v3: fault-injection summary, present only for runs that carried
    // `faults.*` metrics (a nemesis ran). Counters are re-emitted here with
    // the prefix stripped so fault tooling has one stable place to look.
    bool any_faults = false;
    for (const auto& [name, c] : run.metrics.counters()) {
      if (name.starts_with("faults.")) {
        any_faults = true;
        break;
      }
    }
    if (any_faults) {
      w.key("faults");
      w.begin_object();
      for (const auto& [name, c] : run.metrics.counters()) {
        if (name.starts_with("faults.")) w.field(name.substr(7), c.value());
      }
      if (const Histogram* h = run.metrics.find_histogram("faults.time_to_new_leader_us");
          h != nullptr && h->count() > 0) {
        w.key("time_to_new_leader_us");
        write_histogram(w, *h);
      }
      w.end_object();
    }
    // v4: flight-recorder telemetry, present only when the run enabled the
    // Recorder (--telemetry in the benches). Absent otherwise, keeping
    // telemetry-off records identical to pre-telemetry output.
    if (run.metrics.recorder().enabled()) {
      w.key("telemetry");
      write_telemetry(w, run.metrics.recorder());
    }
    // v5: submission-batching summary, present only for runs that carried
    // `batch.*` metrics (batching was on somewhere). Counters are re-emitted
    // with the prefix stripped, plus the flush-size histogram, so batching
    // tooling has one stable place to look.
    bool any_batching = false;
    for (const auto& [name, c] : run.metrics.counters()) {
      if (name.starts_with("batch.")) {
        any_batching = true;
        break;
      }
    }
    if (any_batching) {
      w.key("batching");
      w.begin_object();
      for (const auto& [name, c] : run.metrics.counters()) {
        if (name.starts_with("batch.")) w.field(name.substr(6), c.value());
      }
      if (const Histogram* h = run.metrics.find_histogram("batch.size_entries");
          h != nullptr && h->count() > 0) {
        w.key("size_entries");
        write_histogram(w, *h);
      }
      w.end_object();
    }
    // v6: locality-fast-path summary, present only for runs that carried
    // `locality.*` metrics (prefetch, cache repair or move coalescing was
    // on). Counters are re-emitted with the prefix stripped, plus the
    // bulk-move size histogram — one stable place for cache-effectiveness
    // tooling, mirroring the `batching` section.
    bool any_locality = false;
    for (const auto& [name, c] : run.metrics.counters()) {
      if (name.starts_with("locality.")) {
        any_locality = true;
        break;
      }
    }
    if (any_locality) {
      w.key("locality");
      w.begin_object();
      for (const auto& [name, c] : run.metrics.counters()) {
        if (name.starts_with("locality.")) w.field(name.substr(9), c.value());
      }
      if (const Histogram* h = run.metrics.find_histogram("locality.bulk_entries");
          h != nullptr && h->count() > 0) {
        w.key("bulk_entries");
        write_histogram(w, *h);
      }
      w.end_object();
    }
    // v7: elasticity summary, present only for runs that carried `elastic.*`
    // metrics (a ScalePlan was armed). Counters are re-emitted with the
    // prefix stripped, plus the rebalance chunk-size histogram — one stable
    // place for scale-out tooling, mirroring the sections above.
    bool any_elastic = false;
    for (const auto& [name, c] : run.metrics.counters()) {
      if (name.starts_with("elastic.")) {
        any_elastic = true;
        break;
      }
    }
    if (any_elastic) {
      w.key("elasticity");
      w.begin_object();
      for (const auto& [name, c] : run.metrics.counters()) {
        if (name.starts_with("elastic.")) w.field(name.substr(8), c.value());
      }
      if (const Histogram* h = run.metrics.find_histogram("elastic.drain_time_us");
          h != nullptr && h->count() > 0) {
        w.key("drain_time_us");
        write_histogram(w, *h);
      }
      if (const Histogram* h = run.metrics.find_histogram("elastic.rebalance_entries");
          h != nullptr && h->count() > 0) {
        w.key("rebalance_entries");
        write_histogram(w, *h);
      }
      w.end_object();
    }
    w.key("spans");
    write_spans_summary(w, spans);
    w.key("trace");
    write_trace_summary(w, run.metrics.trace());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace dssmr::stats
