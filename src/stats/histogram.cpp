#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"

namespace dssmr::stats {
namespace {

// 64 linear sub-buckets per power of two: relative error <= 1/64.
constexpr std::uint32_t kSubBucketBits = 6;
constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;

}  // namespace

Histogram::Histogram() : buckets_(kSubBuckets * 64, 0) {}

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int exponent = 63 - std::countl_zero(v);  // floor(log2(v)), >= kSubBucketBits
  const int shift = exponent - static_cast<int>(kSubBucketBits);
  const auto sub = static_cast<std::uint32_t>((v >> shift) - kSubBuckets);
  const auto idx =
      (static_cast<std::size_t>(exponent - kSubBucketBits + 1)) * kSubBuckets + sub;
  return idx;
}

std::int64_t Histogram::bucket_midpoint(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t tier = index / kSubBuckets;     // >= 1
  const std::size_t sub = index % kSubBuckets;      // [0, kSubBuckets)
  const int shift = static_cast<int>(tier) - 1;
  const std::uint64_t base = (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift;
  const std::uint64_t width = 1ull << shift;
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (value < 0) value = 0;  // latencies cannot be negative; clamp defensively
  const std::size_t idx = bucket_index(value);
  DSSMR_ASSERT(idx < buckets_.size());
  buckets_[idx] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) * static_cast<double>(n);
}

std::int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ == 0) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // q=0 must be the recorded minimum, not whatever midpoint the first
  // non-empty bucket happens to clamp to.
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<std::int64_t, double>> Histogram::cdf(std::size_t max_points) const {
  std::vector<std::pair<std::int64_t, double>> points;
  if (count_ == 0) return points;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.emplace_back(std::clamp(bucket_midpoint(i), min_, max_),
                        static_cast<double>(seen) / static_cast<double>(count_));
  }
  if (points.size() > max_points && max_points > 0) {
    // Evenly spaced source indices with the last point pinned to the true
    // maximum. Indices are deduplicated so no point is ever emitted twice.
    std::vector<std::pair<std::int64_t, double>> thinned;
    thinned.reserve(max_points);
    if (max_points > 1) {
      const double stride = static_cast<double>(points.size() - 1) /
                            static_cast<double>(max_points - 1);
      std::size_t prev = points.size();  // sentinel: no index selected yet
      for (std::size_t i = 0; i + 1 < max_points; ++i) {
        const auto idx = static_cast<std::size_t>(static_cast<double>(i) * stride);
        if (idx != prev && idx + 1 < points.size()) {
          thinned.push_back(points[idx]);
          prev = idx;
        }
      }
    }
    thinned.push_back(points.back());
    points = std::move(thinned);
  }
  return points;
}

void Histogram::merge(const Histogram& other) {
  DSSMR_ASSERT(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = sum_sq_ = 0;
}

}  // namespace dssmr::stats
