#include "stats/span_export.h"

#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "common/assert.h"

namespace dssmr::stats {
namespace {

/// Pid block reserved per run so several runs coexist in one file: pid 0 of
/// the block is the synthetic clients process, groups follow at 1 + gid.
constexpr std::uint64_t kPidsPerRun = 100000;

std::uint64_t span_pid(const Span& s, std::uint64_t base) {
  return s.group == kNoGroup ? base : base + 1 + s.group.value;
}

}  // namespace

ChromeTraceExport::ChromeTraceExport(std::ostream& os) : w_(os) {
  w_.begin_object();
  w_.key("traceEvents");
  w_.begin_array();
}

void ChromeTraceExport::add_run(const SpanStore& spans, std::string_view run_label) {
  DSSMR_ASSERT_MSG(!finished_, "add_run after finish");
  const std::uint64_t base = static_cast<std::uint64_t>(runs_++) * kPidsPerRun;
  const std::string prefix = run_label.empty() ? std::string{} : std::string(run_label) + "/";

  // Metadata first: name every process and thread that will appear.
  std::map<std::uint64_t, std::string> process_names;
  std::set<std::pair<std::uint64_t, std::uint64_t>> threads;
  for (const Span& s : spans.spans()) {
    const std::uint64_t pid = span_pid(s, base);
    if (!process_names.contains(pid)) {
      std::string name;
      if (s.group == kNoGroup) {
        name = "clients";
      } else if (auto it = spans.group_names().find(s.group.value);
                 it != spans.group_names().end()) {
        name = it->second;
      } else {
        name = "group " + std::to_string(s.group.value);
      }
      process_names.emplace(pid, prefix + name);
    }
    threads.emplace(pid, s.node);
  }
  for (const auto& [pid, name] : process_names) {
    w_.begin_object();
    w_.field("name", "process_name");
    w_.field("ph", "M");
    w_.field("pid", pid);
    w_.key("args");
    w_.begin_object();
    w_.field("name", name);
    w_.end_object();
    w_.end_object();
  }
  for (const auto& [pid, tid] : threads) {
    w_.begin_object();
    w_.field("name", "thread_name");
    w_.field("ph", "M");
    w_.field("pid", pid);
    w_.field("tid", tid);
    w_.key("args");
    w_.begin_object();
    w_.field("name", "node " + std::to_string(tid));
    w_.end_object();
    w_.end_object();
  }

  for (const Span& s : spans.spans()) {
    w_.begin_object();
    w_.field("name", to_string(s.phase));
    w_.field("cat", s.group == kNoGroup ? "client" : "server");
    w_.field("ph", "X");
    w_.field("ts", static_cast<std::int64_t>(s.start));
    w_.field("dur", static_cast<std::int64_t>(s.duration()));
    w_.field("pid", span_pid(s, base));
    w_.field("tid", static_cast<std::uint64_t>(s.node));
    w_.key("args");
    w_.begin_object();
    w_.field("trace_id", s.trace_id);
    w_.field("span_id", s.id);
    w_.field("parent", s.parent);
    w_.field("arg", s.arg);
    w_.field("folded", s.folded);
    if (!run_label.empty()) w_.field("run", run_label);
    w_.end_object();
    w_.end_object();
  }
}

void ChromeTraceExport::finish() {
  DSSMR_ASSERT_MSG(!finished_, "finish called twice");
  finished_ = true;
  w_.end_array();
  w_.field("displayTimeUnit", "ms");
  w_.end_object();
}

void write_chrome_trace(std::ostream& os, const SpanStore& spans,
                        std::string_view run_label) {
  ChromeTraceExport exp(os);
  exp.add_run(spans, run_label);
  exp.finish();
  os << '\n';
}

}  // namespace dssmr::stats
