// Chrome trace_event export of a SpanStore.
//
// Emits the JSON object format ({"traceEvents":[...]}) understood by
// chrome://tracing and Perfetto (ui.perfetto.dev). Mapping:
//   * process (pid)  = multicast group — one "process" per partition plus the
//     oracle; client-side spans share a synthetic "clients" process;
//   * thread (tid)   = the recording replica/client (its ProcessId);
//   * complete event ("ph":"X") = one finished span, ts/dur in microseconds
//     of virtual time, with trace/span/parent ids under "args".
// Process/thread name metadata events label everything, so a multi-partition
// command reads as a causal tree across partition tracks.
//
// ChromeTraceExport writes several runs (one per RunRecord) into a single
// file by giving each run its own pid block; write_chrome_trace is the
// one-store convenience.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "stats/json_writer.h"
#include "stats/span.h"

namespace dssmr::stats {

class ChromeTraceExport {
 public:
  explicit ChromeTraceExport(std::ostream& os);

  /// Appends every span of `spans` as complete events; `run_label` (when
  /// non-empty) prefixes the process names and is attached to each event.
  void add_run(const SpanStore& spans, std::string_view run_label = {});

  /// Closes the traceEvents array and the top-level object. The export is
  /// valid JSON only after finish(); call exactly once.
  void finish();

 private:
  JsonWriter w_;
  bool finished_ = false;
  int runs_ = 0;
};

/// Single-store convenience: one run, finished file.
void write_chrome_trace(std::ostream& os, const SpanStore& spans,
                        std::string_view run_label = {});

}  // namespace dssmr::stats
