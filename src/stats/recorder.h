// Flight-recorder telemetry: windowed, time-resolved views of a run.
//
// End-of-run aggregates (counters, histograms) hide *when* things happened —
// convergence after a repartitioning, imbalance while a partition is hot,
// degradation inside a fault window. The Recorder fills that gap with three
// windowed facilities, all bucketed on one configurable virtual-time
// interval:
//
//  * gauges — callbacks registered at deployment build time (queue depths,
//    in-flight messages, cache occupancy, ...) sampled on every tick of the
//    harness's telemetry timer chain;
//  * per-partition heat — per-bucket command counts, cross-partition command
//    counts and move churn, recorded at the same leader-gated sites as the
//    end-of-run `server.*_partition_commands` counters so the per-bucket
//    sums tile those totals exactly;
//  * windowed latency — one compact log-bucketed Histogram per bucket,
//    recorded at the same site as `client.latency_us`, so merged windows
//    reproduce the end-of-run histogram and each window answers p50/p99.
//
// Marks annotate the timeline with point events: fault-window begin/end from
// the nemesis and oracle repartitionings, so dashboards can shade disrupted
// intervals.
//
// Disabled mode is zero-cost by construction: every record_* entry point
// checks one bool and returns, nothing is ever allocated, and the harness
// never schedules the tick chain — a telemetry-off run's virtual-time
// schedule and run record are byte-identical to a build without telemetry.
//
// Copying a Recorder (run records snapshot the whole Metrics registry)
// keeps all sampled data but drops the gauge callbacks: they close over
// deployment objects that die long before the RunRecord does in sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "stats/histogram.h"

namespace dssmr::stats {

class Recorder {
 public:
  using GaugeFn = std::function<double()>;

  /// Hard cap on windowed-bucket growth, same rationale as
  /// TimeSeries::kMaxBuckets: fail loudly on implausible times instead of
  /// letting a clock bug resize vectors to oblivion.
  static constexpr std::size_t kMaxBuckets = 1u << 20;

  enum class MarkKind : std::uint8_t { kFaultBegin, kFaultEnd, kEvent };

  struct Mark {
    Time at = 0;
    MarkKind kind = MarkKind::kEvent;
    std::string label;
  };

  /// One sampled gauge: name, the callback (empty after copying), and one
  /// sampled value per tick.
  struct Gauge {
    std::string name;
    GaugeFn fn;  // dropped by copy
    std::vector<double> values;
  };

  /// Windowed heat for one partition. Buckets are interval()-wide; index i
  /// covers [i*interval, (i+1)*interval). Vectors grow lazily and may have
  /// different lengths (trailing zeros are implicit).
  struct PartitionHeat {
    std::vector<std::uint64_t> commands;  // all delivered commands
    std::vector<std::uint64_t> multi;     // cross-partition subset
    std::vector<std::uint64_t> moves;     // move churn (source+dest events)
    std::uint64_t total_commands = 0;
    std::uint64_t total_multi = 0;
    std::uint64_t total_moves = 0;
  };

  Recorder() = default;

  Recorder(const Recorder& other) { copy_from(other); }
  Recorder& operator=(const Recorder& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  Recorder(Recorder&&) = default;
  Recorder& operator=(Recorder&&) = default;

  /// Arms the recorder: `interval` is the bucket width for heat/latency
  /// windows and the cadence the harness ticks gauges at; `partitions` sizes
  /// the heat table. Until enable() is called every entry point is a
  /// one-branch no-op.
  void enable(Duration interval, std::size_t partitions);

  bool enabled() const { return enabled_; }
  Duration interval() const { return interval_; }

  /// Registers a gauge sampled on every tick. Call before the first tick so
  /// all gauges have one value per tick.
  void register_gauge(std::string name, GaugeFn fn);

  /// Samples every registered gauge at virtual time `t`. Driven by the
  /// harness's telemetry timer chain.
  void tick(Time t);

  /// A command delivered on `partition` at time `t`; `multi` marks
  /// cross-partition commands. Call from the same leader-gated site as the
  /// `server.*_partition_commands` counters so windowed sums tile them.
  void record_command(Time t, std::size_t partition, bool multi);

  /// Move churn touching `partition` (as source or destination) at `t`.
  void record_move(Time t, std::size_t partition);

  /// A completed command's end-to-end latency at completion time `t`. Call
  /// from the same site as `client.latency_us` so merged windows reproduce
  /// the end-of-run histogram.
  void record_latency(Time t, std::int64_t latency_us);

  /// Timeline annotation (fault window edges, repartitionings).
  void mark(Time t, MarkKind kind, std::string label);

  // -- read side (serialization, dashboards, tests) --------------------------

  const std::vector<Time>& tick_times() const { return ticks_; }
  const std::vector<Gauge>& gauges() const { return gauges_; }
  const std::vector<PartitionHeat>& heat() const { return heat_; }
  const std::vector<Histogram>& latency_windows() const { return latency_windows_; }
  const std::vector<Mark>& marks() const { return marks_; }

  /// All latency windows merged into one histogram (equals the end-of-run
  /// latency histogram when both record at the same site).
  Histogram merged_latency() const;

  void reset();

 private:
  void copy_from(const Recorder& other);
  std::size_t bucket_of(Time t) const;

  bool enabled_ = false;
  Duration interval_ = 0;
  std::vector<Time> ticks_;
  std::vector<Gauge> gauges_;
  std::vector<PartitionHeat> heat_;
  std::vector<Histogram> latency_windows_;
  std::vector<Mark> marks_;
};

const char* to_string(Recorder::MarkKind k);

}  // namespace dssmr::stats
