#include "stats/trace.h"

#include <ostream>

#include "stats/json_writer.h"

namespace dssmr::stats {

std::string_view to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kConsult: return "consult";
    case TraceEvent::kProphecy: return "prophecy";
    case TraceEvent::kMoveIssued: return "move_issued";
    case TraceEvent::kMoveApplied: return "move_applied";
    case TraceEvent::kMoveFailed: return "move_failed";
    case TraceEvent::kRetry: return "retry";
    case TraceEvent::kFallback: return "fallback";
    case TraceEvent::kLeaderChange: return "leader_change";
    case TraceEvent::kAmcastDeliver: return "amcast_deliver";
    case TraceEvent::kFaultInject: return "fault_inject";
    case TraceEvent::kFaultRecover: return "fault_recover";
    case TraceEvent::kCacheRepair: return "cache_repair";
    case TraceEvent::kRepairReroute: return "repair_reroute";
    case TraceEvent::kPartitionAdded: return "partition_added";
    case TraceEvent::kPartitionDraining: return "partition_draining";
    case TraceEvent::kPartitionRetired: return "partition_retired";
    case TraceEvent::kRebalanceMove: return "rebalance_move";
    case TraceEvent::kEventCount_: break;  // not a real event
  }
  return "unknown";
}

std::uint64_t Trace::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts_) sum += c;
  return sum;
}

std::vector<Trace::Record> Trace::select(TraceEvent type) const {
  std::vector<Record> out;
  for (const Record& r : records_) {
    if (r.type == type) out.push_back(r);
  }
  return out;
}

void Trace::clear() {
  records_.clear();
  counts_.fill(0);
  dropped_ = 0;
}

void Trace::write_jsonl(std::ostream& os, std::string_view run) const {
  const std::string prefix =
      run.empty() ? std::string{} : "\"run\":\"" + json_escaped(run) + "\",";
  for (const Record& r : records_) {
    os << "{" << prefix << "\"t\":" << r.t << ",\"event\":\"" << to_string(r.type)
       << "\",\"node\":" << r.node << ",\"id\":" << r.id << ",\"arg\":" << r.arg << "}\n";
  }
}

}  // namespace dssmr::stats
