// Named-metric registry shared by one deployment.
//
// Protocol layers bump counters ("moves", "retries", "oracle.consults", ...)
// and record into histograms/series through this registry; the experiment
// harness reads them out at the end of a run. Lookup is by string name so
// new metrics need no central enum, and all accessors create-on-first-use.
//
// Hot paths should resolve a Counter& once (counter_handle) and inc()
// through it, instead of paying a map lookup per event.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.h"
#include "stats/recorder.h"
#include "stats/span.h"
#include "stats/timeseries.h"
#include "stats/trace.h"

namespace dssmr::stats {

/// One named counter. References returned by Metrics::counter_handle stay
/// valid for the registry's lifetime (std::map nodes are stable), so layers
/// intern them at init time and increment without a string lookup.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Metrics {
 public:
  explicit Metrics(Duration series_bucket_width = sec(1))
      : series_bucket_width_(series_bucket_width) {}

  void inc(const std::string& name, std::uint64_t by = 1) { counters_[name].inc(by); }
  std::uint64_t counter(const std::string& name) const;

  /// Interned handle: create-on-first-use, stable for the registry lifetime.
  Counter& counter_handle(const std::string& name) { return counters_[name]; }

  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  const Histogram* find_histogram(const std::string& name) const;

  TimeSeries& series(const std::string& name);
  const TimeSeries* find_series(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  const std::map<std::string, TimeSeries>& all_series() const { return series_; }

  /// Deployment-wide event trace; disabled unless Trace::enable() is called.
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Deployment-wide causal span store; disabled unless SpanStore::enable()
  /// is called.
  SpanStore& spans() { return spans_; }
  const SpanStore& spans() const { return spans_; }

  /// Flight-recorder telemetry (windowed heat, gauges, latency windows);
  /// disabled unless Recorder::enable() is called.
  Recorder& recorder() { return recorder_; }
  const Recorder& recorder() const { return recorder_; }

  void reset();

 private:
  Duration series_bucket_width_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
  Trace trace_;
  SpanStore spans_;
  Recorder recorder_;
};

}  // namespace dssmr::stats
