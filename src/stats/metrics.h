// Named-metric registry shared by one deployment.
//
// Protocol layers bump counters ("moves", "retries", "oracle.consults", ...)
// and record into histograms/series through this registry; the experiment
// harness reads them out at the end of a run. Lookup is by string name so
// new metrics need no central enum, and all accessors create-on-first-use.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.h"
#include "stats/timeseries.h"
#include "stats/trace.h"

namespace dssmr::stats {

class Metrics {
 public:
  explicit Metrics(Duration series_bucket_width = sec(1))
      : series_bucket_width_(series_bucket_width) {}

  void inc(const std::string& name, std::uint64_t by = 1) { counters_[name] += by; }
  std::uint64_t counter(const std::string& name) const;

  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  const Histogram* find_histogram(const std::string& name) const;

  TimeSeries& series(const std::string& name);
  const TimeSeries* find_series(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  const std::map<std::string, TimeSeries>& all_series() const { return series_; }

  /// Deployment-wide event trace; disabled unless Trace::enable() is called.
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  void reset();

 private:
  Duration series_bucket_width_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
  Trace trace_;
};

}  // namespace dssmr::stats
