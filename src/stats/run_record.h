// Machine-readable per-run records (schema "dssmr.run_record.v7").
//
// Every bench binary can serialize its runs to JSON so the repo's perf
// trajectory is diffable: counters, histogram summaries (count/min/max/mean/
// p50/p95/p99 + a thinned CDF), every time series, the trace event counts,
// span-phase latency histograms (the `phases` section, present when span
// tracing ran — v2's addition, see stats/span.h), a `faults` section
// summarizing nemesis fault injection (present when a run carried `faults.*`
// metrics — v3's addition, see fault/nemesis.h), a `telemetry` section with
// windowed flight-recorder data — gauge samples, per-partition heat,
// windowed latency percentiles and timeline marks (present when the run's
// Recorder was enabled — v4's addition, see stats/recorder.h), a `batching`
// section summarizing submission batching — flush counts by trigger, entry
// totals and the flush-size histogram (present when a run carried `batch.*`
// metrics — v5's addition, see multicast/batcher.h), a `locality` section
// summarizing the locality fast path — prefetch installs/hits, cache
// repairs, re-routes, coalesced moves and the bulk-move size histogram
// (present when a run carried `locality.*` metrics — v6's addition, see
// core/client_proxy.h and core/move_coalescer.h), an `elasticity` section
// summarizing live repartitioning — partitions added/retired, rebalance move
// and variable totals, and the rebalance chunk-size histogram (present when
// a run carried `elastic.*` metrics, i.e. a ScalePlan was armed — v7's
// addition, see fault/scaler.h) — and free-form run metadata (strategy,
// partitions, seed, ...). The format is documented in docs/schema.md and
// EXPERIMENTS.md; CI asserts one of these files parses and carries a nonzero
// client.ops.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/metrics.h"

namespace dssmr::stats {

inline constexpr std::string_view kRunRecordSchema = "dssmr.run_record.v7";

struct RunRecord {
  std::string label;
  /// Ordered key/value metadata (experiment knobs: strategy, partitions, ...).
  std::vector<std::pair<std::string, std::string>> meta;
  /// Snapshot of the deployment's metrics at the end of the run.
  Metrics metrics;

  void add_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
  }
};

/// Writes `{"schema": ..., "experiment": ..., "runs": [...]}` to `os`.
void write_run_records(std::ostream& os, std::string_view experiment,
                       const std::vector<RunRecord>& runs);

}  // namespace dssmr::stats
