// Causal span tracing: per-command latency decomposition as a span tree.
//
// Every client command gets a root span carrying a trace id (the command's
// stable logical id). The layers the command crosses — client proxy, oracle,
// atomic multicast, partition servers — record child spans with virtual-clock
// start/end times, so a finished trace is a tree that decomposes the
// command's end-to-end latency into protocol phases: consult / move / amcast
// / queue / execute / reply. The DSN 2016 evaluation reasons entirely in
// these terms (which phases does a command cross?), and every later perf PR
// is measured with this layer.
//
// Two complementary outputs share the store:
//  * The span list itself — exported to Chrome trace_event JSON
//    (span_export.h) and queried by tests through SpanQuery ("a retried
//    command contains >= 2 consult spans").
//  * Per-phase latency histograms — the client proxy attributes every
//    microsecond of a command's life to exactly one phase (server timestamps
//    piggybacked on replies split the post-send window), so the phase
//    histograms sum to the end-to-end latency exactly. Server-side spans are
//    recorded with fold=false: they are an additional *view* of time already
//    attributed by the client, not new latency.
//
// Tracing is off by default; record() starts with a cheap enabled-check so
// instrumented hot paths cost one predictable branch when disabled.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "stats/histogram.h"

namespace dssmr::stats {

enum class SpanPhase : std::uint8_t {
  kCommand,   // root: client issue() -> reply handed to the application
  kConsult,   // client sent a consult -> prophecy received
  kMove,      // collocation wait: move issued/awaited -> destination confirmed
  kBatch,     // batching wait: command handed to the batcher -> batch flushed
  kAmcast,    // command submitted to atomic multicast -> ordered delivery
  kQueue,     // delivery -> execution start (ownership checks, input waits)
  kExecute,   // execution occupying the partition's simulated CPU
  kReply,     // execution end -> reply received by the client
  kFallback,  // S-SMR fallback window (all-partition multicast -> reply)
  kOracle,    // oracle-side consult handling (server view, not a client phase)
  kPrefetch,  // marker: the cache fast path was served from prefetched entries
  kRepair,    // marker: a retry window ended in a piggybacked cache repair
  // Add new phases directly above and extend to_string(); see the TraceEvent
  // sentinel in trace.h for the pattern.
  kPhaseCount_,
};

inline constexpr std::size_t kSpanPhases = static_cast<std::size_t>(SpanPhase::kPhaseCount_);
static_assert(kSpanPhases == static_cast<std::size_t>(SpanPhase::kRepair) + 1,
              "SpanPhase changed: point this assert at the new last phase and add "
              "its to_string() case (stats_test checks exhaustiveness)");

std::string_view to_string(SpanPhase p);

/// The client-attributed phases, in decomposition order: for every finished
/// command, the durations folded under these phases tile [issue, finish], so
/// their histogram totals sum exactly to the kCommand histogram total.
/// (kBatch appears only when submission batching is on — the batcher's flush
/// time splits the post-send window; unbatched runs never record it.
/// kFallback covers a window already decomposed into amcast/queue/execute/
/// reply, kOracle is a server-side view, and kPrefetch/kRepair are locality
/// fast-path markers over already-attributed time; all are fold=false.)
inline constexpr std::array<SpanPhase, 7> kLatencyPhases = {
    SpanPhase::kConsult, SpanPhase::kMove,    SpanPhase::kBatch,  SpanPhase::kAmcast,
    SpanPhase::kQueue,   SpanPhase::kExecute, SpanPhase::kReply,
};

struct Span {
  std::uint64_t trace_id = 0;  // root command id, shared by the whole tree
  std::uint64_t id = 0;        // unique within one SpanStore
  std::uint64_t parent = 0;    // 0 = attach to the trace's root span
  SpanPhase phase{};
  Time start = 0;
  Time end = 0;
  std::uint32_t node = 0;      // recording process id
  GroupId group = kNoGroup;    // owning group (kNoGroup for client-side spans)
  std::int64_t arg = 0;        // phase-specific detail (dest group, retry, ...)
  /// True when this span's duration was folded into the phase histograms —
  /// i.e. it belongs to the client-attributed latency decomposition. Set by
  /// SpanStore::record() from its `fold` argument.
  bool folded = false;

  Duration duration() const { return end - start; }
};

class SpanStore {
 public:
  bool enabled() const { return enabled_; }
  void enable(bool on = true) { enabled_ = on; }

  /// Caps the retained span vector; per-phase counts and histograms keep
  /// accumulating past the cap and dropped() reports discarded spans.
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  /// Pre-allocates a span id (so a root span recorded at command completion
  /// can be referenced as `parent` by children recorded earlier).
  std::uint64_t alloc_id() { return ++last_id_; }

  /// Appends a finished span; assigns an id if `s.id == 0`. `fold` adds the
  /// duration to the phase histogram — client-attributed decomposition spans
  /// fold, server-side views pass false to avoid double counting.
  void record(Span s, bool fold = true) {
    if (!enabled_) return;
    ++counts_[static_cast<std::size_t>(s.phase)];
    s.folded = fold;
    if (fold) phase_hist_[static_cast<std::size_t>(s.phase)].record(s.duration());
    if (s.id == 0) s.id = ++last_id_;
    if (spans_.size() < capacity_) {
      spans_.push_back(s);
    } else {
      ++dropped_;
    }
  }

  const std::vector<Span>& spans() const { return spans_; }
  std::uint64_t count(SpanPhase p) const { return counts_[static_cast<std::size_t>(p)]; }
  std::uint64_t dropped() const { return dropped_; }

  const Histogram& phase_histogram(SpanPhase p) const {
    return phase_hist_[static_cast<std::size_t>(p)];
  }
  /// Any phase histogram non-empty? (Gates the run-record `phases` section.)
  bool has_phase_data() const;

  /// Human-readable group labels for exports ("partition 0", "oracle").
  void set_group_name(GroupId g, std::string name) { group_names_[g.value] = std::move(name); }
  const std::map<std::uint32_t, std::string>& group_names() const { return group_names_; }

  /// Drops spans, counts and histograms; keeps enabled, capacity and names.
  void clear();

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 1u << 20;
  std::uint64_t last_id_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kSpanPhases> counts_{};
  std::array<Histogram, kSpanPhases> phase_hist_{};
  std::vector<Span> spans_;
  std::map<std::uint32_t, std::string> group_names_;
};

/// Read-only trace-analysis API over a SpanStore: tests assert causal
/// structure with it ("a retried multi-partition command contains >= 2
/// consult spans and exactly one fallback span").
class SpanQuery {
 public:
  explicit SpanQuery(const SpanStore& store) : store_(store) {}

  /// Distinct trace ids, in first-recorded order.
  std::vector<std::uint64_t> trace_ids() const;

  /// All spans of one trace, ordered by (start, id).
  std::vector<const Span*> trace(std::uint64_t trace_id) const;

  /// The trace's root span (phase kCommand), or nullptr if it never finished.
  const Span* root(std::uint64_t trace_id) const;

  /// Spans of one phase within a trace, ordered by (start, id).
  std::vector<const Span*> select(std::uint64_t trace_id, SpanPhase p) const;
  std::size_t count(std::uint64_t trace_id, SpanPhase p) const {
    return select(trace_id, p).size();
  }

  /// Children of `parent` within the trace. Spans recorded with parent 0 by
  /// layers that only know the trace id attach to the root span.
  std::vector<const Span*> children(std::uint64_t trace_id, std::uint64_t parent) const;

  /// Sum of the trace's client-attributed phase durations (kLatencyPhases);
  /// equals the root span's duration for a finished command.
  Duration attributed_total(std::uint64_t trace_id) const;

 private:
  const SpanStore& store_;
};

}  // namespace dssmr::stats
