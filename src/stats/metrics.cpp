#include "stats/metrics.h"

namespace dssmr::stats {

std::uint64_t Metrics::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* Metrics::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

TimeSeries& Metrics::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries{series_bucket_width_}).first;
  }
  return it->second;
}

const TimeSeries* Metrics::find_series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void Metrics::reset() {
  counters_.clear();
  histograms_.clear();
  series_.clear();
  trace_.clear();
  spans_.clear();
  recorder_.reset();
}

}  // namespace dssmr::stats
