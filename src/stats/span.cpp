#include "stats/span.h"

#include <algorithm>

namespace dssmr::stats {

std::string_view to_string(SpanPhase p) {
  switch (p) {
    case SpanPhase::kCommand: return "command";
    case SpanPhase::kConsult: return "consult";
    case SpanPhase::kMove: return "move";
    case SpanPhase::kBatch: return "batch";
    case SpanPhase::kAmcast: return "amcast";
    case SpanPhase::kQueue: return "queue";
    case SpanPhase::kExecute: return "execute";
    case SpanPhase::kReply: return "reply";
    case SpanPhase::kFallback: return "fallback";
    case SpanPhase::kOracle: return "oracle";
    case SpanPhase::kPrefetch: return "prefetch";
    case SpanPhase::kRepair: return "repair";
    case SpanPhase::kPhaseCount_: break;  // not a real phase
  }
  return "unknown";
}

bool SpanStore::has_phase_data() const {
  for (const Histogram& h : phase_hist_) {
    if (h.count() > 0) return true;
  }
  return false;
}

void SpanStore::clear() {
  spans_.clear();
  counts_.fill(0);
  for (Histogram& h : phase_hist_) h.reset();
  dropped_ = 0;
  last_id_ = 0;
}

// ---- SpanQuery --------------------------------------------------------------

namespace {

void sort_by_start(std::vector<const Span*>& spans) {
  std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
    return std::pair(a->start, a->id) < std::pair(b->start, b->id);
  });
}

}  // namespace

std::vector<std::uint64_t> SpanQuery::trace_ids() const {
  std::vector<std::uint64_t> ids;
  for (const Span& s : store_.spans()) {
    if (std::find(ids.begin(), ids.end(), s.trace_id) == ids.end()) {
      ids.push_back(s.trace_id);
    }
  }
  return ids;
}

std::vector<const Span*> SpanQuery::trace(std::uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& s : store_.spans()) {
    if (s.trace_id == trace_id) out.push_back(&s);
  }
  sort_by_start(out);
  return out;
}

const Span* SpanQuery::root(std::uint64_t trace_id) const {
  for (const Span& s : store_.spans()) {
    if (s.trace_id == trace_id && s.phase == SpanPhase::kCommand) return &s;
  }
  return nullptr;
}

std::vector<const Span*> SpanQuery::select(std::uint64_t trace_id, SpanPhase p) const {
  std::vector<const Span*> out;
  for (const Span& s : store_.spans()) {
    if (s.trace_id == trace_id && s.phase == p) out.push_back(&s);
  }
  sort_by_start(out);
  return out;
}

std::vector<const Span*> SpanQuery::children(std::uint64_t trace_id,
                                             std::uint64_t parent) const {
  const Span* r = root(trace_id);
  const bool parent_is_root = r != nullptr && r->id == parent;
  std::vector<const Span*> out;
  for (const Span& s : store_.spans()) {
    if (s.trace_id != trace_id || s.id == parent) continue;
    if (s.parent == parent || (parent_is_root && s.parent == 0 && s.phase != SpanPhase::kCommand)) {
      out.push_back(&s);
    }
  }
  sort_by_start(out);
  return out;
}

Duration SpanQuery::attributed_total(std::uint64_t trace_id) const {
  Duration total = 0;
  for (const Span& s : store_.spans()) {
    if (s.trace_id != trace_id || !s.folded || s.phase == SpanPhase::kCommand) continue;
    total += s.duration();
  }
  return total;
}

}  // namespace dssmr::stats
