#include "stats/recorder.h"

#include <utility>

#include "common/assert.h"

namespace dssmr::stats {

const char* to_string(Recorder::MarkKind k) {
  switch (k) {
    case Recorder::MarkKind::kFaultBegin:
      return "fault_begin";
    case Recorder::MarkKind::kFaultEnd:
      return "fault_end";
    case Recorder::MarkKind::kEvent:
      return "event";
  }
  return "?";
}

void Recorder::enable(Duration interval, std::size_t partitions) {
  DSSMR_ASSERT_MSG(interval > 0, "telemetry interval must be positive");
  enabled_ = true;
  interval_ = interval;
  heat_.assign(partitions, PartitionHeat{});
}

void Recorder::register_gauge(std::string name, GaugeFn fn) {
  if (!enabled_) return;
  DSSMR_ASSERT(fn != nullptr);
  DSSMR_ASSERT_MSG(ticks_.empty(), "register gauges before the first tick");
  gauges_.push_back(Gauge{std::move(name), std::move(fn), {}});
}

void Recorder::tick(Time t) {
  if (!enabled_) return;
  ticks_.push_back(t);
  DSSMR_ASSERT_MSG(ticks_.size() <= kMaxBuckets, "telemetry tick count exceeds kMaxBuckets");
  for (Gauge& g : gauges_) g.values.push_back(g.fn ? g.fn() : 0.0);
}

std::size_t Recorder::bucket_of(Time t) const {
  DSSMR_ASSERT(t >= 0);
  const auto idx = static_cast<std::size_t>(t / interval_);
  DSSMR_ASSERT_MSG(idx < kMaxBuckets,
                   "Recorder bucket index exceeds kMaxBuckets; check the caller's "
                   "clock arithmetic");
  return idx;
}

namespace {

void bump_bucket(std::vector<std::uint64_t>& buckets, std::size_t idx) {
  if (idx >= buckets.size()) buckets.resize(idx + 1, 0);
  ++buckets[idx];
}

}  // namespace

void Recorder::record_command(Time t, std::size_t partition, bool multi) {
  if (!enabled_) return;
  // Elastic add: partitions booted mid-run index past the enable()-time
  // table — grow it (their pre-boot buckets stay implicit zeros).
  if (partition >= heat_.size()) heat_.resize(partition + 1);
  const std::size_t idx = bucket_of(t);
  PartitionHeat& h = heat_[partition];
  bump_bucket(h.commands, idx);
  ++h.total_commands;
  if (multi) {
    bump_bucket(h.multi, idx);
    ++h.total_multi;
  }
}

void Recorder::record_move(Time t, std::size_t partition) {
  if (!enabled_) return;
  if (partition >= heat_.size()) heat_.resize(partition + 1);
  PartitionHeat& h = heat_[partition];
  bump_bucket(h.moves, bucket_of(t));
  ++h.total_moves;
}

void Recorder::record_latency(Time t, std::int64_t latency_us) {
  if (!enabled_) return;
  const std::size_t idx = bucket_of(t);
  if (idx >= latency_windows_.size()) latency_windows_.resize(idx + 1);
  latency_windows_[idx].record(latency_us);
}

void Recorder::mark(Time t, MarkKind kind, std::string label) {
  if (!enabled_) return;
  marks_.push_back(Mark{t, kind, std::move(label)});
}

Histogram Recorder::merged_latency() const {
  Histogram out;
  for (const Histogram& h : latency_windows_) out.merge(h);
  return out;
}

void Recorder::reset() {
  enabled_ = false;
  interval_ = 0;
  ticks_.clear();
  gauges_.clear();
  heat_.clear();
  latency_windows_.clear();
  marks_.clear();
}

void Recorder::copy_from(const Recorder& other) {
  enabled_ = other.enabled_;
  interval_ = other.interval_;
  ticks_ = other.ticks_;
  gauges_.clear();
  gauges_.reserve(other.gauges_.size());
  // Keep the sampled values, drop the callbacks: they close over deployment
  // objects that die before run-record snapshots do.
  for (const Gauge& g : other.gauges_) gauges_.push_back(Gauge{g.name, nullptr, g.values});
  heat_ = other.heat_;
  latency_windows_ = other.latency_windows_;
  marks_ = other.marks_;
}

}  // namespace dssmr::stats
