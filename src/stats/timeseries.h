// Fixed-width time-bucketed series.
//
// Used for the "throughput over time" and "moves over time" figures: events
// are accumulated into buckets of a configurable width of virtual time and
// reported as one row per bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dssmr::stats {

class TimeSeries {
 public:
  /// Hard cap on bucket growth: one bucket per second for ~12 days of
  /// virtual time at the default width. A far-future `t` (clock arithmetic
  /// bug, uninitialized Time) would otherwise resize the vector to petabytes;
  /// add() fails loudly instead of letting the allocator kill the process.
  static constexpr std::size_t kMaxBuckets = 1u << 20;

  explicit TimeSeries(Duration bucket_width = sec(1));

  /// Adds `amount` to the bucket containing time `t`. Aborts (via
  /// DSSMR_ASSERT) if `t` lands past kMaxBuckets buckets.
  void add(Time t, double amount = 1.0);

  Duration bucket_width() const { return bucket_width_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Value accumulated in bucket `i` (0 when past the recorded range).
  double bucket(std::size_t i) const;

  /// Start time of bucket `i`.
  Time bucket_start(std::size_t i) const { return static_cast<Time>(i) * bucket_width_; }

  /// Value normalized to a per-second rate.
  double rate(std::size_t i) const;

  double total() const { return total_; }

 private:
  Duration bucket_width_;
  std::vector<double> buckets_;
  double total_ = 0;
};

}  // namespace dssmr::stats
