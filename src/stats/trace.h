// Structured event trace for the DS-SMR protocol.
//
// Reconfiguration-heavy protocols are hard to debug from aggregate counters
// alone: the consult -> prophecy -> move -> retry -> fallback dance is a
// distributed state machine whose failure modes are *sequences*, not totals.
// The Trace records typed events with virtual timestamps so tests can assert
// protocol-level properties ("no fallback under strong locality", "a failing
// move eventually falls back") and runs can be dumped as JSON Lines for
// offline inspection.
//
// Tracing is off by default and every record() call starts with a cheap
// enabled-check, so instrumented hot paths cost one predictable branch when
// tracing is disabled.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dssmr::stats {

enum class TraceEvent : std::uint8_t {
  kConsult,        // client sent a consult to the oracle
  kProphecy,       // oracle leader answered a consult
  kMoveIssued,     // a move command was multicast (client in DS-SMR, oracle in DynaStar)
  kMoveApplied,    // destination leader installed every requested variable
  kMoveFailed,     // destination leader gave up >= 1 unshipped variable (stale mapping)
  kRetry,          // client retried its command (stale cache or failed move)
  kFallback,       // client fell back to S-SMR all-partition execution
  kLeaderChange,   // a Paxos replica became leader of its group
  kAmcastDeliver,  // atomic multicast delivered a message (leader-side)
  kFaultInject,    // nemesis injected a disruption (crash, leader kill, cut, drop burst)
  kFaultRecover,   // nemesis restored something (recover, heal, drop burst end)
  kCacheRepair,    // client installed a piggybacked ⟨var, partition, epoch⟩ repair
  kRepairReroute,  // a retry was re-routed from repaired cache state (no consult)
  kPartitionAdded,     // oracle admitted a fresh partition (kReconfig add delivered)
  kPartitionDraining,  // oracle marked a partition draining (kReconfig retire delivered)
  kPartitionRetired,   // scaler observed the drain barrier and retired the partition
  kRebalanceMove,      // oracle leader issued one chunked rebalance move
  // Add new events directly above and extend to_string(); the sentinel keeps
  // kTraceEventTypes (and every count array) sized automatically, and the
  // static_assert below fails until the last-member reference is updated —
  // stats_test then verifies to_string covers the newcomer.
  kEventCount_,
};

inline constexpr std::size_t kTraceEventTypes =
    static_cast<std::size_t>(TraceEvent::kEventCount_);
static_assert(kTraceEventTypes == static_cast<std::size_t>(TraceEvent::kRebalanceMove) + 1,
              "TraceEvent changed: point this assert at the new last event and add "
              "its to_string() case (stats_test checks exhaustiveness)");

std::string_view to_string(TraceEvent e);

class Trace {
 public:
  struct Record {
    Time t = 0;              // virtual timestamp (microseconds)
    TraceEvent type{};       //
    std::uint32_t node = 0;  // recording process id
    std::uint64_t id = 0;    // command / consult / multicast id
    std::int64_t arg = 0;    // event-specific detail (dest group, retry count, ...)
  };

  bool enabled() const { return enabled_; }
  void enable(bool on = true) { enabled_ = on; }

  /// Caps the retained record vector; per-type counts keep accumulating past
  /// the cap and dropped() reports how many records were discarded.
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  void record(TraceEvent type, Time t, std::uint32_t node = 0, std::uint64_t id = 0,
              std::int64_t arg = 0) {
    if (!enabled_) return;
    ++counts_[static_cast<std::size_t>(type)];
    if (records_.size() < capacity_) {
      records_.push_back({t, type, node, id, arg});
    } else {
      ++dropped_;
    }
  }

  std::uint64_t count(TraceEvent type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  std::uint64_t total() const;
  std::uint64_t dropped() const { return dropped_; }

  const std::vector<Record>& records() const { return records_; }
  std::vector<Record> select(TraceEvent type) const;

  /// Drops all records and counts; keeps the enabled flag and capacity.
  void clear();

  /// One JSON object per line: {"t":..,"event":"..","node":..,"id":..,"arg":..}.
  /// `run` (when non-empty) is added to every line so multi-run dumps can be
  /// concatenated into one file.
  void write_jsonl(std::ostream& os, std::string_view run = {}) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kTraceEventTypes> counts_{};
  std::vector<Record> records_;
};

}  // namespace dssmr::stats
