// Minimal streaming JSON writer (no third-party dependencies).
//
// Emits pretty-printed, syntactically valid JSON to any std::ostream. The
// writer tracks the container stack and inserts commas/indentation itself;
// callers just interleave key() with value calls. Non-finite doubles are
// emitted as null so the output always parses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dssmr::stats {

/// `s` with JSON string escaping applied (quotes, backslash, control chars).
std::string json_escaped(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by exactly one value or container.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view{v}); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  /// key + value in one call.
  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace dssmr::stats
