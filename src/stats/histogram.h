// Log-bucketed latency histogram (HDR-histogram style).
//
// Values are bucketed with bounded relative error (~1/64 by default), so the
// histogram records millions of latency samples in O(1) memory and answers
// percentile and CDF queries for the evaluation figures.
#pragma once

#include <cstdint>
#include <vector>

namespace dssmr::stats {

class Histogram {
 public:
  Histogram();

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const { return max_; }
  double mean() const;
  double stddev() const;

  /// Value at quantile q in [0,1]; 0.5 is the median. Returns 0 when empty.
  std::int64_t percentile(double q) const;

  /// (value, cumulative-fraction) pairs suitable for plotting a CDF.
  /// Produces at most `max_points` points, skipping empty buckets.
  std::vector<std::pair<std::int64_t, double>> cdf(std::size_t max_points = 200) const;

  /// Merges another histogram into this one (same bucketing by construction).
  void merge(const Histogram& other);

  void reset();

 private:
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_midpoint(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace dssmr::stats
