#include "consensus/paxos.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace dssmr::consensus {
namespace {

std::size_t batch_bytes(const Batch& b) {
  std::size_t n = 16;
  for (const auto& e : b) n += 16 + (e.payload != nullptr ? e.payload->size_bytes() : 0);
  return n;
}

}  // namespace

std::size_t P1b::size_bytes() const {
  std::size_t n = 64;
  for (const auto& [slot, entry] : accepted) {
    (void)slot;
    n += batch_bytes(entry.second);
  }
  return n;
}

std::size_t P2a::size_bytes() const { return 64 + batch_bytes(batch); }
std::size_t CommitMsg::size_bytes() const { return 64 + batch_bytes(batch); }

PaxosCore::PaxosCore(sim::Engine& engine, GroupId gid, std::vector<ProcessId> members,
                     ProcessId self, PaxosConfig config, Callbacks callbacks,
                     std::uint64_t seed)
    : engine_(engine),
      gid_(gid),
      members_(std::move(members)),
      self_(self),
      cfg_(config),
      cb_(std::move(callbacks)),
      rng_(seed) {
  DSSMR_ASSERT_MSG(!members_.empty(), "group needs at least one member");
  DSSMR_ASSERT(cb_.send != nullptr && cb_.on_decide != nullptr);
  self_index_ = index_of(self_);
}

std::uint32_t PaxosCore::index_of(ProcessId p) const {
  for (std::uint32_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == p) return i;
  }
  DSSMR_FAIL("process is not a member of this group");
}

void PaxosCore::start() {
  if (self_index_ == 0) {
    // Bootstrap: the first member stands for election right away.
    engine_.schedule(usec(1), [this] {
      if (!halted_ && role_ == Role::Follower && max_seen_ballot_ == 0) start_election();
    });
  }
  arm_election_timer();
}

void PaxosCore::halt() {
  halted_ = true;
  engine_.cancel(election_timer_);
  engine_.cancel(heartbeat_timer_);
  engine_.cancel(resend_timer_);
  engine_.cancel(batch_timer_);
  election_timer_ = heartbeat_timer_ = resend_timer_ = batch_timer_ = 0;
}

void PaxosCore::restart() {
  if (!halted_) return;
  halted_ = false;
  role_ = Role::Follower;
  ballot_ = 0;
  p1b_granted_.clear();
  p1b_accepted_.clear();
  proposals_.clear();
  inflight_ = 0;
  pending_.clear();
  submitted_ids_.clear();
  // The election timer doubles as the catch-up trigger: the current leader's
  // next heartbeat arrives well before it fires and carries a committed slot
  // ahead of ours, so maybe_request_catchup() pulls the missed log tail.
  arm_election_timer();
}

ProcessId PaxosCore::leader_hint() const {
  if (role_ == Role::Leader) return self_;
  if (max_seen_ballot_ == 0) return members_[0];
  return members_[ballot_owner_index(max_seen_ballot_) % members_.size()];
}

void PaxosCore::broadcast(const net::MessagePtr& m) {
  for (ProcessId p : members_) {
    if (p == self_) continue;
    cb_.send(p, m);
  }
}

// ---- timers ----------------------------------------------------------------

void PaxosCore::arm_election_timer() {
  if (halted_) return;
  engine_.cancel(election_timer_);
  const Duration t = cfg_.election_timeout + rng_.range(0, cfg_.election_timeout);
  election_timer_ = engine_.schedule(t, [this] {
    election_timer_ = 0;
    if (halted_ || role_ == Role::Leader) return;
    start_election();
  });
}

void PaxosCore::arm_heartbeat_timer() {
  if (halted_ || role_ != Role::Leader) return;
  engine_.cancel(heartbeat_timer_);
  heartbeat_timer_ = engine_.schedule(cfg_.heartbeat_interval, [this] {
    heartbeat_timer_ = 0;
    if (halted_ || role_ != Role::Leader) return;
    broadcast(net::make_msg<HeartbeatMsg>(gid_, ballot_, next_deliver_ - 1));
    arm_heartbeat_timer();
  });
}

void PaxosCore::arm_resend_timer() {
  if (halted_ || role_ != Role::Leader) return;
  engine_.cancel(resend_timer_);
  resend_timer_ = engine_.schedule(cfg_.resend_interval, [this] {
    resend_timer_ = 0;
    if (halted_ || role_ != Role::Leader) return;
    for (const auto& [slot, prop] : proposals_) {
      if (!prop.decided) broadcast(net::make_msg<P2a>(gid_, ballot_, slot, prop.batch));
    }
    arm_resend_timer();
  });
}

void PaxosCore::arm_batch_timer() {
  if (halted_ || batch_timer_ != 0) return;
  batch_timer_ = engine_.schedule(cfg_.batch_delay, [this] {
    batch_timer_ = 0;
    if (!halted_ && role_ == Role::Leader) flush_pending();
  });
}

// ---- election --------------------------------------------------------------

void PaxosCore::start_election() {
  role_ = Role::Candidate;
  ballot_ = make_ballot(ballot_round(max_seen_ballot_) + 1, self_index_);
  max_seen_ballot_ = ballot_;
  p1b_granted_.clear();
  p1b_accepted_.clear();

  // Grant own promise.
  if (ballot_ > promised_) promised_ = ballot_;
  p1b_granted_.insert(self_index_);
  for (const auto& [slot, acc] : accepted_) {
    if (slot >= next_deliver_) p1b_accepted_[slot] = acc;
  }
  // Decided-but-not-everywhere slots are also "accepted" by us.
  for (const auto& [slot, batch] : decided_) {
    if (slot >= next_deliver_) p1b_accepted_[slot] = {promised_, batch};
  }

  broadcast(net::make_msg<P1a>(gid_, ballot_, next_deliver_ - 1));
  arm_election_timer();  // retry with a higher round if this attempt stalls
  if (p1b_granted_.size() >= majority()) become_leader();
}

void PaxosCore::become_leader() {
  role_ = Role::Leader;
  proposals_.clear();
  inflight_ = 0;
  if (trace_ != nullptr) {
    trace_->record(stats::TraceEvent::kLeaderChange, engine_.now(), self_.value, gid_.value,
                   static_cast<std::int64_t>(ballot_));
  }

  Slot max_slot = next_deliver_ - 1;
  for (const auto& [slot, acc] : p1b_accepted_) max_slot = std::max(max_slot, slot);
  next_slot_ = std::max(next_slot_, max_slot + 1);

  // Re-propose every potentially-chosen value; fill gaps with no-ops so the
  // log stays contiguous.
  for (Slot s = next_deliver_; s <= max_slot; ++s) {
    auto it = p1b_accepted_.find(s);
    propose(s, it != p1b_accepted_.end() ? it->second.second : Batch{});
  }
  p1b_accepted_.clear();

  engine_.cancel(election_timer_);
  election_timer_ = 0;
  arm_heartbeat_timer();
  arm_resend_timer();
  if (cb_.on_leadership) cb_.on_leadership(true);
  if (!pending_.empty()) flush_pending();
}

void PaxosCore::step_down(Ballot seen) {
  max_seen_ballot_ = std::max(max_seen_ballot_, seen);
  if (role_ == Role::Leader && cb_.on_leadership) cb_.on_leadership(false);
  role_ = Role::Follower;
  engine_.cancel(heartbeat_timer_);
  engine_.cancel(resend_timer_);
  heartbeat_timer_ = resend_timer_ = 0;
  arm_election_timer();
}

// ---- submission ------------------------------------------------------------

bool PaxosCore::submit(LogEntry entry) {
  if (halted_ || role_ != Role::Leader) return false;
  if (!submitted_ids_.insert(entry.id.value).second) return true;  // duplicate
  pending_.push_back(std::move(entry));
  if (pending_.size() >= cfg_.max_batch) {
    flush_pending();
  } else {
    arm_batch_timer();
  }
  return true;
}

void PaxosCore::flush_pending() {
  if (cfg_.pipeline_depth == 0) {
    // Unbounded: everything pending becomes one slot (original behavior).
    if (pending_.empty()) return;
    propose(next_slot_++, std::exchange(pending_, {}));
    return;
  }
  // Pipelined: propose chunks of up to max_batch while the window has room.
  // Leftover entries stay pending and are re-flushed as decisions land, so
  // under load the per-slot batches grow instead of the slot count.
  while (!pending_.empty() && inflight_ < cfg_.pipeline_depth) {
    if (pending_.size() <= cfg_.max_batch) {
      propose(next_slot_++, std::exchange(pending_, {}));
      break;
    }
    Batch chunk(std::make_move_iterator(pending_.begin()),
                std::make_move_iterator(pending_.begin() +
                                        static_cast<std::ptrdiff_t>(cfg_.max_batch)));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(cfg_.max_batch));
    propose(next_slot_++, std::move(chunk));
  }
  if (!pending_.empty()) arm_batch_timer();
}

void PaxosCore::propose(Slot slot, Batch batch) {
  auto [it, inserted] = proposals_.try_emplace(slot);
  if (!inserted && it->second.decided) return;
  if (inserted) ++inflight_;
  it->second.batch = std::move(batch);
  it->second.acks.clear();
  it->second.acks.insert(self_index_);

  // Self-accept.
  accepted_[slot] = {ballot_, it->second.batch};

  broadcast(net::make_msg<P2a>(gid_, ballot_, slot, it->second.batch));
  if (it->second.acks.size() >= majority()) {
    Batch copy = it->second.batch;
    decide(slot, std::move(copy), /*broadcast_commit=*/true);
  }
}

// ---- message handling ------------------------------------------------------

bool PaxosCore::handle(ProcessId from, const net::MessagePtr& m) {
  if (halted_) return false;
  if (const auto* p1a = net::msg_cast<P1a>(m); p1a != nullptr && p1a->gid == gid_) {
    handle_p1a(from, *p1a);
    return true;
  }
  if (const auto* p1b = net::msg_cast<P1b>(m); p1b != nullptr && p1b->gid == gid_) {
    handle_p1b(from, *p1b);
    return true;
  }
  if (const auto* p2a = net::msg_cast<P2a>(m); p2a != nullptr && p2a->gid == gid_) {
    handle_p2a(from, *p2a);
    return true;
  }
  if (const auto* p2b = net::msg_cast<P2b>(m); p2b != nullptr && p2b->gid == gid_) {
    handle_p2b(from, *p2b);
    return true;
  }
  if (const auto* c = net::msg_cast<CommitMsg>(m); c != nullptr && c->gid == gid_) {
    handle_commit(*c);
    return true;
  }
  if (const auto* hb = net::msg_cast<HeartbeatMsg>(m); hb != nullptr && hb->gid == gid_) {
    handle_heartbeat(from, *hb);
    return true;
  }
  if (const auto* lr = net::msg_cast<LearnReq>(m); lr != nullptr && lr->gid == gid_) {
    handle_learnreq(from, *lr);
    return true;
  }
  return false;
}

void PaxosCore::handle_p1a(ProcessId from, const P1a& m) {
  if (m.ballot > promised_) {
    promised_ = m.ballot;
    if (m.ballot > max_seen_ballot_ || role_ != Role::Follower) step_down(m.ballot);
    max_seen_ballot_ = std::max(max_seen_ballot_, m.ballot);

    std::map<Slot, std::pair<Ballot, Batch>> acc;
    for (const auto& [slot, entry] : accepted_) {
      if (slot > m.committed) acc[slot] = entry;
    }
    for (const auto& [slot, batch] : decided_) {
      if (slot > m.committed) acc[slot] = {promised_, batch};
    }
    cb_.send(from, net::make_msg<P1b>(gid_, m.ballot, true, next_deliver_ - 1, std::move(acc)));
  } else {
    cb_.send(from, net::make_msg<P1b>(gid_, m.ballot, false, next_deliver_ - 1,
                                      std::map<Slot, std::pair<Ballot, Batch>>{}));
  }
  arm_election_timer();
}

void PaxosCore::handle_p1b(ProcessId from, const P1b& m) {
  if (role_ != Role::Candidate || m.ballot != ballot_) return;
  if (!m.granted) {
    // Someone promised a higher ballot; back off and retry later.
    step_down(std::max(max_seen_ballot_, m.ballot));
    return;
  }
  p1b_granted_.insert(index_of(from));
  for (const auto& [slot, entry] : m.accepted) {
    auto it = p1b_accepted_.find(slot);
    if (it == p1b_accepted_.end() || entry.first > it->second.first) {
      p1b_accepted_[slot] = entry;
    }
  }
  if (p1b_granted_.size() >= majority()) become_leader();
}

void PaxosCore::handle_p2a(ProcessId from, const P2a& m) {
  max_seen_ballot_ = std::max(max_seen_ballot_, m.ballot);
  if (m.ballot >= promised_) {
    promised_ = m.ballot;
    if (role_ != Role::Follower && ballot_ != m.ballot) step_down(m.ballot);
    if (m.slot >= next_deliver_) accepted_[m.slot] = {m.ballot, m.batch};
    cb_.send(from, net::make_msg<P2b>(gid_, m.ballot, m.slot, true));
    arm_election_timer();
  } else {
    cb_.send(from, net::make_msg<P2b>(gid_, m.ballot, m.slot, false));
  }
}

void PaxosCore::handle_p2b(ProcessId from, const P2b& m) {
  if (role_ != Role::Leader || m.ballot != ballot_) return;
  if (!m.accepted) {
    step_down(std::max(max_seen_ballot_, m.ballot + 1));
    return;
  }
  auto it = proposals_.find(m.slot);
  if (it == proposals_.end() || it->second.decided) return;
  it->second.acks.insert(index_of(from));
  if (it->second.acks.size() >= majority()) {
    Batch copy = it->second.batch;
    decide(m.slot, std::move(copy), /*broadcast_commit=*/true);
  }
}

void PaxosCore::handle_commit(const CommitMsg& m) {
  decide(m.slot, m.batch, /*broadcast_commit=*/false);
}

void PaxosCore::handle_heartbeat(ProcessId from, const HeartbeatMsg& m) {
  max_seen_ballot_ = std::max(max_seen_ballot_, m.ballot);
  if (role_ == Role::Leader && m.ballot > ballot_) step_down(m.ballot);
  if (role_ != Role::Leader) arm_election_timer();
  maybe_request_catchup(m.committed, from);
}

void PaxosCore::handle_learnreq(ProcessId from, const LearnReq& m) {
  for (Slot s = m.from; s < next_deliver_; ++s) {
    auto it = decided_.find(s);
    if (it != decided_.end()) cb_.send(from, net::make_msg<CommitMsg>(gid_, s, it->second));
  }
}

void PaxosCore::maybe_request_catchup(Slot leader_committed, ProcessId from) {
  if (leader_committed >= next_deliver_) {
    cb_.send(from, net::make_msg<LearnReq>(gid_, next_deliver_));
  }
}

// ---- learning --------------------------------------------------------------

void PaxosCore::decide(Slot slot, Batch batch, bool broadcast_commit) {
  if (slot < next_deliver_) return;  // already delivered
  const bool fresh = !decided_.contains(slot);
  if (fresh) decided_[slot] = std::move(batch);
  if (auto it = proposals_.find(slot); it != proposals_.end() && !it->second.decided) {
    it->second.decided = true;
    if (inflight_ > 0) --inflight_;
  }
  if (broadcast_commit && fresh) {
    broadcast(net::make_msg<CommitMsg>(gid_, slot, decided_[slot]));
  }
  advance_delivery();
  // A decision freed a pipeline slot; push the backlog into it right away.
  if (cfg_.pipeline_depth != 0 && role_ == Role::Leader && !pending_.empty() &&
      inflight_ < cfg_.pipeline_depth) {
    flush_pending();
  }
}

void PaxosCore::advance_delivery() {
  while (true) {
    auto it = decided_.find(next_deliver_);
    if (it == decided_.end()) break;
    const Slot slot = next_deliver_;
    ++next_deliver_;
    cb_.on_decide(slot, it->second);
  }
  trim();
}

void PaxosCore::trim() {
  if (next_deliver_ <= cfg_.retain_window) return;
  const Slot low = next_deliver_ - cfg_.retain_window;
  decided_.erase(decided_.begin(), decided_.lower_bound(low));
  accepted_.erase(accepted_.begin(), accepted_.lower_bound(low));
  while (!proposals_.empty() && proposals_.begin()->first < low &&
         proposals_.begin()->second.decided) {
    proposals_.erase(proposals_.begin());
  }
}

}  // namespace dssmr::consensus
