// Multi-Paxos replicated log, one instance per multicast group.
//
// This is the repository's substitute for the paper's URingPaxos deployment:
// each partition (and the oracle) is a group of replicas that agree on a
// totally ordered log of batches. The atomic-multicast layer consumes this
// log; it never talks to Paxos internals directly.
//
// Design notes:
//  * Leader-based. Ballot numbers encode (round, member-index); the member
//    with the highest granted ballot leads, proposes batches into slots, and
//    broadcasts commits. Followers monitor heartbeats and run an election
//    (phase 1) after a randomized timeout.
//  * Batching: submissions are buffered for up to `batch_delay` (or
//    `max_batch` entries) and decided as one slot, which is both realistic
//    (Ring Paxos batches aggressively) and essential for simulation speed.
//  * Uniform agreement: a value is committed only after a majority accepted
//    it, so any later leader's phase 1 re-discovers it.
//  * The decided log is trimmed behind the delivery point except for a
//    retransmission window used to answer catch-up requests.
//
// PaxosCore is deliberately not a net::Actor: the owning replica feeds it
// messages and it emits messages through a callback, which keeps it unit
// testable without a full deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "sim/engine.h"
#include "stats/trace.h"

namespace dssmr::consensus {

using Slot = std::uint64_t;
/// Ballot = (round << 16) | owner-member-index. 0 means "none".
using Ballot = std::uint64_t;

constexpr Ballot make_ballot(std::uint64_t round, std::uint32_t owner_index) {
  return (round << 16) | owner_index;
}
constexpr std::uint64_t ballot_round(Ballot b) { return b >> 16; }
constexpr std::uint32_t ballot_owner_index(Ballot b) {
  return static_cast<std::uint32_t>(b & 0xffff);
}

/// One submitted value. `id` is globally unique and used by upper layers to
/// deduplicate entries that get re-proposed across leader changes.
struct LogEntry {
  MsgId id;
  net::MessagePtr payload;
};

using Batch = std::vector<LogEntry>;

struct PaxosConfig {
  Duration heartbeat_interval = msec(20);
  Duration election_timeout = msec(120);
  Duration resend_interval = msec(40);
  Duration batch_delay = usec(100);
  std::size_t max_batch = 64;
  /// Decided slots kept behind the delivery point for catch-up.
  Slot retain_window = 4096;
  /// Max undecided slots the leader keeps in flight. 0 = unbounded: every
  /// flush proposes all pending entries as one slot (the original behavior).
  /// With a window, each flush proposes chunks of up to `max_batch` entries
  /// while the window has room; the rest accumulates in `pending_` and is
  /// re-flushed as decisions free slots, so batches grow under load instead
  /// of queueing one slot per arrival burst.
  std::size_t pipeline_depth = 0;
};

// ---- wire messages ---------------------------------------------------------

struct P1a final : net::Message {
  GroupId gid;
  Ballot ballot;
  Slot committed;  // candidate's delivery point, bounds the P1b payload
  P1a(GroupId g, Ballot b, Slot c) : gid(g), ballot(b), committed(c) {}
  const char* type_name() const override { return "paxos.p1a"; }
};

struct P1b final : net::Message {
  GroupId gid;
  Ballot ballot;
  bool granted;
  Slot committed;
  std::map<Slot, std::pair<Ballot, Batch>> accepted;
  P1b(GroupId g, Ballot b, bool ok, Slot c, std::map<Slot, std::pair<Ballot, Batch>> acc)
      : gid(g), ballot(b), granted(ok), committed(c), accepted(std::move(acc)) {}
  const char* type_name() const override { return "paxos.p1b"; }
  std::size_t size_bytes() const override;
};

struct P2a final : net::Message {
  GroupId gid;
  Ballot ballot;
  Slot slot;
  Batch batch;
  P2a(GroupId g, Ballot b, Slot s, Batch bt) : gid(g), ballot(b), slot(s), batch(std::move(bt)) {}
  const char* type_name() const override { return "paxos.p2a"; }
  std::size_t size_bytes() const override;
};

struct P2b final : net::Message {
  GroupId gid;
  Ballot ballot;
  Slot slot;
  bool accepted;
  P2b(GroupId g, Ballot b, Slot s, bool ok) : gid(g), ballot(b), slot(s), accepted(ok) {}
  const char* type_name() const override { return "paxos.p2b"; }
};

struct CommitMsg final : net::Message {
  GroupId gid;
  Slot slot;
  Batch batch;
  CommitMsg(GroupId g, Slot s, Batch b) : gid(g), slot(s), batch(std::move(b)) {}
  const char* type_name() const override { return "paxos.commit"; }
  std::size_t size_bytes() const override;
};

struct HeartbeatMsg final : net::Message {
  GroupId gid;
  Ballot ballot;
  Slot committed;
  HeartbeatMsg(GroupId g, Ballot b, Slot c) : gid(g), ballot(b), committed(c) {}
  const char* type_name() const override { return "paxos.heartbeat"; }
};

struct LearnReq final : net::Message {
  GroupId gid;
  Slot from;
  LearnReq(GroupId g, Slot f) : gid(g), from(f) {}
  const char* type_name() const override { return "paxos.learnreq"; }
};

// ---- core ------------------------------------------------------------------

class PaxosCore {
 public:
  struct Callbacks {
    /// Emits a protocol message to a peer (never called for self).
    std::function<void(ProcessId to, net::MessagePtr)> send;
    /// Delivers decided batches in strict slot order, exactly once.
    std::function<void(Slot slot, const Batch& batch)> on_decide;
    /// Optional: leadership gained/lost notification.
    std::function<void(bool leading)> on_leadership;
  };

  PaxosCore(sim::Engine& engine, GroupId gid, std::vector<ProcessId> members, ProcessId self,
            PaxosConfig config, Callbacks callbacks, std::uint64_t seed);

  /// Arms initial timers. Member 0 immediately stands for election so quiet
  /// groups get a leader without waiting for a timeout.
  void start();

  /// Submits an entry for ordering. Returns false when this replica is not
  /// currently leading (callers should retry via another member).
  bool submit(LogEntry entry);

  /// Routes a consensus message. Returns false if `m` is not a Paxos message
  /// for this group (so callers can try other handlers).
  bool handle(ProcessId from, const net::MessagePtr& m);

  bool is_leader() const { return role_ == Role::Leader; }
  /// Undecided proposals currently in flight (telemetry; leader-side).
  std::size_t inflight_proposals() const { return inflight_; }
  /// Entries buffered but not yet proposed (telemetry; leader-side).
  std::size_t pending_entries() const { return pending_.size(); }
  /// Best guess at the current leader (self while leading).
  ProcessId leader_hint() const;
  Slot delivered_upto() const { return next_deliver_ - 1; }
  GroupId group() const { return gid_; }
  const std::vector<ProcessId>& members() const { return members_; }

  /// Stops all timers; the replica is considered crashed (tests use this to
  /// silence a node without tearing down the object).
  void halt();

  /// Rejoins after halt(): back to follower, proposer-side state wiped.
  /// Acceptor state (promised ballot, accepted slots) survives — it is the
  /// "stable storage" that makes crash-recovery safe — and the missed log
  /// tail is re-learned through the existing heartbeat -> LearnReq ->
  /// CommitMsg machinery. Callers pair this with Network::recover.
  void restart();

  /// Event trace for leader changes (owned by the deployment's Metrics; may
  /// stay null for standalone cores).
  void set_trace(stats::Trace* trace) { trace_ = trace; }

 private:
  enum class Role { Follower, Candidate, Leader };

  struct Proposal {
    Batch batch;
    std::unordered_set<std::uint32_t> acks;
    bool decided = false;
  };

  std::size_t majority() const { return members_.size() / 2 + 1; }
  std::uint32_t index_of(ProcessId p) const;

  void broadcast(const net::MessagePtr& m);
  void start_election();
  void become_leader();
  void step_down(Ballot seen);

  void handle_p1a(ProcessId from, const P1a& m);
  void handle_p1b(ProcessId from, const P1b& m);
  void handle_p2a(ProcessId from, const P2a& m);
  void handle_p2b(ProcessId from, const P2b& m);
  void handle_commit(const CommitMsg& m);
  void handle_heartbeat(ProcessId from, const HeartbeatMsg& m);
  void handle_learnreq(ProcessId from, const LearnReq& m);

  void propose(Slot slot, Batch batch);
  void flush_pending();
  void arm_batch_timer();
  void decide(Slot slot, Batch batch, bool broadcast_commit);
  void advance_delivery();
  void trim();
  void arm_election_timer();
  void arm_heartbeat_timer();
  void arm_resend_timer();
  void maybe_request_catchup(Slot leader_committed, ProcessId from);

  sim::Engine& engine_;
  GroupId gid_;
  std::vector<ProcessId> members_;
  ProcessId self_;
  std::uint32_t self_index_;
  PaxosConfig cfg_;
  Callbacks cb_;
  Rng rng_;
  bool halted_ = false;
  stats::Trace* trace_ = nullptr;

  // Acceptor state.
  Ballot promised_ = 0;
  std::map<Slot, std::pair<Ballot, Batch>> accepted_;

  // Learner state.
  std::map<Slot, Batch> decided_;
  Slot next_deliver_ = 1;

  // Proposer state.
  Role role_ = Role::Follower;
  Ballot ballot_ = 0;           // ballot of my current candidacy/leadership
  Ballot max_seen_ballot_ = 0;  // highest ballot observed anywhere
  std::unordered_set<std::uint32_t> p1b_granted_;
  std::map<Slot, std::pair<Ballot, Batch>> p1b_accepted_;
  Slot next_slot_ = 1;
  std::map<Slot, Proposal> proposals_;
  /// Count of undecided entries in proposals_ (the pipeline occupancy).
  std::size_t inflight_ = 0;
  Batch pending_;
  std::unordered_set<std::uint64_t> submitted_ids_;

  sim::TimerId election_timer_ = 0;
  sim::TimerId heartbeat_timer_ = 0;
  sim::TimerId resend_timer_ = 0;
  sim::TimerId batch_timer_ = 0;
};

}  // namespace dssmr::consensus
