// The replicated partitioning oracle (Algorithm "Oracle" of the paper).
//
// The oracle is deployed as its own multicast group. It answers `consult`
// requests with prophecies, tracks the dynamic variable->partition mapping
// by delivering every create/delete/move command, and coordinates with
// partitions on create/delete via signal exchange so that its reply to the
// client implies the partition has applied the change (execution atomicity).
//
// Placement decisions are delegated to an OraclePolicy: the DS-SMR policy
// needs no workload knowledge; the DynaStar-style policy (an extension, see
// DESIGN.md) maintains a workload graph and a graph-partitioner-computed
// ideal partitioning, and — when `oracle_issues_moves` is set — the oracle
// leader multicasts the move itself instead of leaving it to the client.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bounded.h"
#include "common/flat_map.h"
#include "common/small_set.h"
#include "common/types.h"
#include "core/mapping.h"
#include "multicast/atomic.h"
#include "smr/command.h"
#include "smr/execution.h"
#include "stats/metrics.h"

namespace dssmr::core {

struct OracleConfig {
  /// DynaStar mode: the oracle issues collocation moves itself.
  bool oracle_issues_moves = false;
  /// Simulated CPU cost of answering one consult.
  Duration consult_service = usec(5);
  /// Simulated CPU cost of applying one command / hint batch.
  Duration command_service = usec(3);
  /// Locality fast path (all off by default; see DESIGN.md):
  /// prophecies carry up to this many co-accessed prefetch entries.
  std::size_t prefetch_k = 0;
  /// Prophecies (and server replies) carry mapping epochs for piggybacked
  /// cache repair.
  bool cache_repair = false;
  /// DynaStar mode: buffer oracle-issued moves and merge overlapping
  /// destination sets into one bulk multicast once this many are pending
  /// (0 = ship each move immediately, byte-identical to the pre-locality
  /// behavior).
  std::size_t coalesce_moves = 0;
  /// Max virtual-time wait before a partial move buffer flushes.
  Duration coalesce_delay = usec(200);
  /// Elastic repartitioning armed (a ScalePlan may deliver membership
  /// records). Gates the interning of the elastic.* counters so non-elastic
  /// run records stay byte-identical to the pre-elasticity output.
  bool elastic = false;
  /// Variables per rebalance move command (one chunk = one kMove multicast;
  /// chunks from one planning pass coalesce further when coalescing is on).
  std::size_t rebalance_chunk = 16;
};

/// Command::op values of a kReconfig membership record.
inline constexpr std::uint32_t kReconfigAdd = 0;
inline constexpr std::uint32_t kReconfigRetire = 1;

/// Deterministic move-command id derived from the consult id, so the client
/// knows which reply to wait for when the oracle issues the move.
MsgId derive_move_id(MsgId consult_id);

class OracleNode : public multicast::GroupNode {
 public:
  void init_oracle(net::Network& network, const multicast::Directory& directory, GroupId gid,
                   multicast::GroupNodeConfig node_config,
                   std::unique_ptr<OraclePolicy> policy, std::vector<GroupId> partitions,
                   OracleConfig config, stats::Metrics* metrics, std::uint64_t seed);

  /// Pre-registers a variable's location (initial state distribution).
  void preload(VarId v, GroupId p);

  /// Pre-sizes the mapping (deployments know the variable count up front).
  void reserve_vars(std::size_t n) { mapping_->reserve(n); }

  const Mapping& mapping() const { return *mapping_; }
  OraclePolicy& policy() { return *policy_; }
  const OraclePolicy& policy() const { return *policy_; }
  Duration busy_time() const { return exec_->busy_time(); }

  /// Telemetry gauge (see harness/deployment.cpp).
  std::size_t queue_depth() const { return exec_->queue_depth(); }

  /// Elastic membership entry point (called on the current leader by the
  /// Scaler): atomically multicasts a kReconfig record to the oracle group so
  /// EVERY replica admits/drains `partition` at the same point in the
  /// delivered command order. `op` is kReconfigAdd or kReconfigRetire.
  /// Idempotent at delivery — re-submitting a retire re-sweeps whatever
  /// variables are still mapped to the draining partition (in-flight moves
  /// can land variables on it between planning and delivery).
  void submit_reconfig(GroupId partition, std::uint32_t op);

 protected:
  void on_amdeliver(const multicast::AmcastMessage& m) override;
  void on_rmdeliver(ProcessId origin, const net::MessagePtr& payload) override;

 private:
  struct CachedReply {
    smr::ReplyCode code;
    smr::ReplyTiming timing;
  };

  void handle_consult(const multicast::AmcastMessage& m, const smr::ConsultMsg& consult);
  void handle_create(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void handle_delete(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void handle_move(const smr::Command& cmd);
  void handle_hint(const smr::HintMsg& hint);
  void handle_reconfig(const smr::Command& cmd);

  /// Rebalance planners (leader only, run while processing a delivered
  /// kReconfig): fill a fresh partition up to the per-partition quota /
  /// drain every variable off a retiring one, by issuing chunked kMove
  /// commands through the regular move machinery.
  void plan_rebalance_in(GroupId target);
  void plan_drain(GroupId retiring);
  /// One chunked rebalance move: sources = {from}, dest = to.
  void issue_rebalance_move(GroupId from, GroupId to, std::vector<VarId> chunk);

  /// Move coalescing (leader only): buffers an oracle-issued move, flushing
  /// by count or after coalesce_delay.
  void buffer_move(smr::Command move, std::vector<GroupId> dests);
  void flush_moves();

  void queue_reply_task(Duration service, std::function<void()> run);
  void bump(stats::Counter* c);
  void trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg = 0);
  void account(Duration service);

  std::unique_ptr<Mapping> mapping_;
  std::unique_ptr<OraclePolicy> policy_;
  std::unique_ptr<smr::ExecutionEngine> exec_;
  std::vector<GroupId> partitions_;
  OracleConfig config_;
  stats::Metrics* metrics_ = nullptr;
  /// Signals received from partitions, per command. Tiny per-command sets
  /// (bounded by the partition count), probed on the execution hot path.
  common::FlatMap<MsgId, common::SmallSet<GroupId>> signals_;
  BoundedMap<MsgId, CachedReply> completed_{1 << 15};

  /// Pending oracle-issued moves awaiting coalescing (leader only; lost
  /// buffers on a leader change are recovered by the clients' consult
  /// timeout).
  struct PendingMove {
    smr::Command move;
    std::vector<GroupId> dests;
  };
  std::vector<PendingMove> pending_moves_;
  bool move_flush_armed_ = false;

  /// Interned counter handles (see ClientProxy::Counters): consults and hints
  /// arrive per command, so the by-name map lookup is a hot-path cost.
  struct Counters {
    stats::Counter* consults;
    stats::Counter* creates;
    stats::Counter* deletes;
    stats::Counter* moves_issued;
    stats::Counter* moves_applied;
    stats::Counter* hints;
    stats::Counter* prefetch_sent;
    stats::Counter* coalesced_moves;
    stats::Counter* bulk_flushes;
    stats::Counter* partitions_added;
    stats::Counter* partitions_retired;
    stats::Counter* rebalance_moves;
    stats::Counter* rebalance_vars;
  } ctr_{};
  /// Interned series handles; nullptr when no metrics sink is wired.
  stats::TimeSeries* busy_series_ = nullptr;
  stats::TimeSeries* moves_series_ = nullptr;
};

}  // namespace dssmr::core
