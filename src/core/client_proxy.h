// Client proxy (Algorithm "DS-SMR Client Proxy" of the paper).
//
// The application calls issue(cmd, done) and eventually receives a reply; the
// proxy hides the whole partitioning machinery:
//
//   1. Optionally answer the destination question from the location cache
//      (Section "Performance optimizations"); otherwise consult the oracle.
//   2. If the prophecy spans several partitions, collocate first: in DS-SMR
//      mode the proxy multicasts a move command to {oracle} ∪ sources ∪
//      {destination}; in DynaStar mode the oracle has already issued the move
//      and the proxy waits for the destination partition's confirmation.
//   3. Multicast the command to the single destination partition.
//   4. A `retry` answer means the mapping changed under us: invalidate the
//      cache and go back to 1. After `max_retries` attempts, fall back to
//      S-SMR — multicast to every partition — which always terminates.
//
// The same proxy also implements the S-SMR baseline (`kStaticSsmr`): the
// oracle is a local immutable map and commands go straight to the statically
// assigned partitions (multi-partition commands use the S-SMR execution).
//
// Every network interaction is guarded by a timeout that re-sends with a
// fresh multicast id; logical command ids stay stable so servers answer
// retransmissions from their reply caches (end-to-end exactly-once).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "core/mapping.h"
#include "multicast/client.h"
#include "smr/command.h"
#include "stats/metrics.h"

namespace dssmr::core {

enum class Strategy : std::uint8_t {
  kStaticSsmr,  // S-SMR: static map, no oracle service, no moves
  kDssmr,       // DS-SMR: dynamic oracle, client-issued moves
  kDynaStar,    // extension: oracle-issued moves + workload-graph policy
};

const char* to_string(Strategy s);

struct ClientConfig {
  Strategy strategy = Strategy::kDssmr;
  bool use_cache = true;
  int max_retries = 3;
  Duration op_timeout = msec(250);
  GroupId oracle_group = kNoGroup;
  std::vector<GroupId> partitions;
  /// Live partition universe for the S-SMR fallback under elastic
  /// repartitioning. Points at the deployment's address-stable live-group
  /// list: retired partitions drop out and added ones join, so a fallback
  /// never waits on a drained group. nullptr (or in non-elastic runs,
  /// identical contents) falls back to `partitions`.
  const std::vector<GroupId>* partition_universe = nullptr;
  /// Required for kStaticSsmr.
  std::shared_ptr<const StaticMap> static_map;
  /// Send workload-graph hints to the oracle after commands that carry them.
  bool send_hints = false;
  /// Locality fast path (all off by default; see OracleConfig for the oracle
  /// halves). `prefetch` installs the prophecy's piggybacked co-access
  /// neighbours into the location cache; `cache_repair` consumes the
  /// ⟨var, partition, epoch⟩ repair entries on replies (monotone install) and
  /// lets a `retry` re-route directly from the repaired cache instead of
  /// restarting at the oracle.
  bool prefetch = false;
  bool cache_repair = false;
  /// When set, DS-SMR moves are routed through this move-coalescer relay
  /// (see core/move_coalescer.h) instead of being multicast directly.
  ProcessId move_coalescer = kNoProcess;
};

class ClientProxy : public multicast::ClientNode {
 public:
  using DoneFn = std::function<void(smr::ReplyCode, const net::MessagePtr& app_reply)>;

  void init_client(net::Network& network, const multicast::Directory& directory,
                   ClientConfig config, stats::Metrics* metrics);

  /// Issues one command; `done` fires exactly once. One outstanding command
  /// per proxy (clients are closed-loop, as in the paper's evaluation).
  void issue(smr::Command cmd, DoneFn done);

  bool busy() const { return phase_ != Phase::kIdle; }

  /// Location-cache introspection (tests).
  std::optional<GroupId> cached_location(VarId v) const;
  /// Cached-entry count (telemetry gauge).
  std::size_t cache_size() const { return cache_.size(); }
  const ClientConfig& config() const { return cfg_; }

  /// Installs piggybacked repair entries into the location cache. Monotone:
  /// an entry only lands when its epoch is strictly newer than what the cache
  /// already knows for that variable, so a stale (or forged-stale) repair can
  /// never roll a fresher mapping back. Public for tests.
  void apply_repair(const std::vector<smr::RepairEntry>& repair);
  /// The newest epoch the cache has seen for `v` (0 = never). Survives
  /// cache_.erase on retry, so re-installs stay monotone. Public for tests.
  std::uint64_t cached_epoch(VarId v) const;

 protected:
  void on_reply(ProcessId from, const net::MessagePtr& m) override;

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kConsult,
    kAwaitMove,
    kAwaitCommand,
    kAwaitFallback,
  };

  void start_attempt();
  void do_consult();
  void on_prophecy(const smr::ProphecyMsg& p);
  void send_dssmr_move(GroupId dest, const std::vector<GroupId>& sources);
  void send_command(std::vector<GroupId> dests, Phase next_phase);
  void do_fallback();
  void finish(smr::ReplyCode code, const net::MessagePtr& app_reply);
  void arm_timeout();
  void trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg = 0);

  /// The deployment span store, or nullptr when metrics are not wired.
  stats::SpanStore* spans();
  /// Folds one client-attributed phase span [start, now] into the trace.
  void record_phase(stats::SpanPhase p, Time start, GroupId group, std::int64_t arg = 0);
  /// Decomposes the post-send window [sent_at_, now] into amcast / queue /
  /// execute / reply spans using the server timestamps piggybacked on `r`
  /// (plus a leading batch span when submissions ride a batcher).
  void decompose_reply(const smr::ReplyMsg& r);

  ClientConfig cfg_;
  stats::Metrics* metrics_ = nullptr;

  /// Interned counter handles (resolved once in init_client); hot-path inc()
  /// avoids the per-call map lookup of Metrics::inc. Point at a shared dummy
  /// counter when no metrics sink is wired.
  struct Counters {
    stats::Counter* ops;
    stats::Counter* consults;
    stats::Counter* cache_hits;
    stats::Counter* multi_partition;
    stats::Counter* moves;
    stats::Counter* retries;
    stats::Counter* fallbacks;
    stats::Counter* timeouts;
    stats::Counter* hints;
    stats::Counter* ok;
    stats::Counter* nok;
    /// Locality fast path (interned only when the matching flag is on, so
    /// default-off runs never materialize `locality.*` counters and their
    /// run records stay byte-identical).
    stats::Counter* prefetch_installed;
    stats::Counter* prefetch_hits;
    stats::Counter* repairs;
    stats::Counter* repair_reroutes;
  } ctr_{};

  /// Interned histogram/series handles, same rationale as ctr_: finish() and
  /// send_dssmr_move run per command, so the by-name map lookups add up.
  /// nullptr when no metrics sink is wired.
  stats::Histogram* latency_hist_ = nullptr;
  stats::TimeSeries* completions_series_ = nullptr;
  stats::TimeSeries* moves_series_ = nullptr;

  Phase phase_ = Phase::kIdle;
  smr::Command cmd_;
  DoneFn done_;
  int retries_ = 0;
  Time issued_at_ = 0;
  /// Consult ids issued for the current attempt: retransmissions use fresh
  /// ids (see do_consult), and with timeouts shorter than the round trip the
  /// answer to an *older* consult may arrive first — it is equally valid, so
  /// any of them is accepted. Bounded: a new attempt purges the previous
  /// attempt's ids, and within one attempt only the newest
  /// kMaxOutstandingConsults survive (older answers are stale enough that
  /// re-asking beats accepting them).
  static constexpr std::size_t kMaxOutstandingConsults = 8;
  std::vector<std::uint64_t> outstanding_consults_;
  MsgId awaited_reply_{0};
  GroupId pending_dest_ = kNoGroup;
  std::function<void()> resend_;
  sim::TimerId timeout_ = 0;

  /// Span bookkeeping. The proxy is in exactly one phase at a time and phase
  /// transitions are synchronous, so tracking each segment's start suffices
  /// to attribute every microsecond of [issued_at_, finish] to one phase.
  std::uint64_t root_span_ = 0;  // pre-allocated root span id (0 = tracing off)
  Time consult_start_ = 0;
  Time move_start_ = 0;
  Time sent_at_ = 0;       // first multicast of the current command window
  /// When the batch carrying the current command's first send left the relay
  /// (0 until the flush callback fires; only set on the batched path).
  Time batch_flushed_at_ = 0;
  Time fallback_start_ = 0;

  /// Location cache (Section "Performance optimizations"): consulted on
  /// every access command, so it shares the oracle's open-addressing map.
  LocationMap cache_;
  /// Locality-fast-path sidecar for cache_: the newest epoch seen per
  /// variable (guards repair/prefetch installs against regression) plus
  /// whether the current cached entry came from a prophecy prefetch (counted
  /// once as a hit when the fast path uses it). Deliberately survives
  /// cache_.erase so monotonicity holds across retries.
  struct VarMeta {
    std::uint64_t epoch = 0;
    bool prefetched = false;
  };
  common::FlatMap<VarId, VarMeta> cache_meta_;

  void install_prefetch(const smr::ProphecyMsg& p);
  /// After a repaired retry: if every variable now resolves to one cached
  /// partition, re-send there directly (no oracle consult). Returns false
  /// when the repair did not pin all variables to a single destination.
  bool try_repair_reroute();
};

}  // namespace dssmr::core
