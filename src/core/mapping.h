// The oracle's variable->partition mapping and the pluggable placement
// policy (the paper's OracleStateMachine extension point).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/flat_map.h"
#include "common/types.h"

namespace dssmr::core {

/// Variable->partition map type shared by the oracle mapping, the S-SMR
/// static map and the client location cache. Open-addressing (see
/// common/flat_map.h): locate() is consulted on every command, so this is
/// one of the hottest lookups in the simulator.
using LocationMap = common::FlatMap<VarId, GroupId>;

/// Dynamic variable->partition mapping, replicated inside the oracle group.
/// All mutations happen while processing atomically delivered commands, so
/// every oracle replica holds an identical mapping.
class Mapping {
 public:
  explicit Mapping(std::vector<GroupId> partitions) : partitions_(std::move(partitions)) {
    DSSMR_ASSERT(!partitions_.empty());
    counts_.resize(partitions_.size(), 0);
    live_.resize(partitions_.size(), true);
  }

  bool contains(VarId v) const { return map_.contains(v); }

  /// Pre-sizes the table (deployments know the variable count up front).
  void reserve(std::size_t vars) { map_.reserve(vars); }

  /// Partition of `v`; kNoGroup when unmapped.
  GroupId locate(VarId v) const {
    auto it = map_.find(v);
    return it == map_.end() ? kNoGroup : it->second;
  }

  void place(VarId v, GroupId p) {
    auto it = map_.find(v);
    if (it != map_.end()) {
      counts_[index_of(it->second)]--;
      it->second = p;
    } else {
      map_.emplace(v, p);
    }
    counts_[index_of(p)]++;
    ++epochs_[v];
  }

  void erase(VarId v) {
    auto it = map_.find(v);
    if (it == map_.end()) return;
    counts_[index_of(it->second)]--;
    map_.erase(it);
  }

  /// Monotone placement epoch of `v`: bumped on every place(), surviving
  /// erase() so a delete/recreate can never look older than what preceded it.
  /// 0 means "never placed". Piggybacked-cache-repair entries compare these
  /// to decide whether an update is fresher than what a client already holds.
  std::uint64_t epoch_of(VarId v) const {
    auto it = epochs_.find(v);
    return it == epochs_.end() ? 0 : it->second;
  }

  std::size_t var_count() const { return map_.size(); }
  const LocationMap& entries() const { return map_; }
  std::size_t partition_count() const { return partitions_.size(); }
  const std::vector<GroupId>& partitions() const { return partitions_; }

  /// Number of variables currently mapped to `p`.
  std::uint64_t load(GroupId p) const { return counts_[index_of(p)]; }

  /// Partition with the fewest variables among live (non-draining) partitions
  /// (ties -> lowest id).
  GroupId least_loaded() const {
    std::size_t best = partitions_.size();
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      if (!live_[i]) continue;
      if (best == partitions_.size() || counts_[i] < counts_[best]) best = i;
    }
    DSSMR_ASSERT_MSG(best != partitions_.size(), "no live partition in mapping");
    return partitions_[best];
  }

  // -- Membership (elastic repartitioning; see DESIGN.md "How elasticity
  // works"). Membership mutations, like placement mutations, only happen
  // while processing atomically delivered commands, so every oracle replica
  // transitions at the same point in the command sequence.

  /// Admits a freshly booted partition. It starts live and empty, so
  /// least_loaded() immediately favours it for new placements.
  void add_partition(GroupId p) {
    DSSMR_ASSERT_MSG(!is_member(p), "partition added twice");
    partitions_.push_back(p);
    counts_.push_back(0);
    live_.push_back(true);
    ++membership_epoch_;
  }

  /// Marks `p` draining: it stays a member (moves off it still resolve
  /// indices) but stops being a placement candidate.
  void set_draining(GroupId p) {
    live_[index_of(p)] = false;
    ++membership_epoch_;
  }

  bool is_member(GroupId p) const {
    for (GroupId g : partitions_) {
      if (g == p) return true;
    }
    return false;
  }

  /// Live == member and not draining. Unknown partitions are not live, so
  /// this doubles as the placement-candidate check.
  bool is_live(GroupId p) const {
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      if (partitions_[i] == p) return live_[i];
    }
    return false;
  }

  std::size_t live_count() const {
    std::size_t n = 0;
    for (bool l : live_) n += l ? 1 : 0;
    return n;
  }

  /// Bumped on every add_partition()/set_draining(); lets readers detect that
  /// the partition universe changed without diffing the vector.
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  /// Appends every variable currently mapped to `p`, sorted by id. The sort
  /// makes the order canonical (independent of hash-table layout), which the
  /// rebalance planner relies on for replica-identical move plans.
  void vars_on(GroupId p, std::vector<VarId>& out) const {
    const std::size_t base = out.size();
    for (const auto& [v, loc] : map_) {
      if (loc == p) out.push_back(v);
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](VarId a, VarId b) { return a.value < b.value; });
  }

 private:
  std::size_t index_of(GroupId p) const {
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      if (partitions_[i] == p) return i;
    }
    DSSMR_FAIL("partition not in mapping");
  }

  std::vector<GroupId> partitions_;
  std::vector<std::uint64_t> counts_;
  /// Parallel to partitions_: false while draining/retired.
  std::vector<bool> live_;
  std::uint64_t membership_epoch_ = 0;
  LocationMap map_;
  common::FlatMap<VarId, std::uint64_t> epochs_;
};

/// Placement decisions. Implementations MUST be deterministic functions of
/// the delivered command sequence: every oracle replica runs the same policy
/// instance over the same inputs and must reach the same answers.
class OraclePolicy {
 public:
  virtual ~OraclePolicy() = default;

  /// Partition for a newly created variable.
  virtual GroupId place_new(VarId v, const Mapping& map) = 0;

  /// Destination partition when `vars` (spread over several partitions) must
  /// be collocated for a command.
  virtual GroupId choose_destination(const std::vector<VarId>& vars, const Mapping& map) = 0;

  /// Workload-graph hint (edges between co-accessed variables). Default: ignore.
  virtual void on_hint(const std::vector<std::pair<VarId, VarId>>& edges) { (void)edges; }

  /// Variables created/deleted — keeps a workload graph's vertex set in sync.
  virtual void on_create(VarId v) { (void)v; }
  virtual void on_delete(VarId v) { (void)v; }

  /// Number of repartitionings computed so far (DynaStar-style policies).
  virtual std::uint64_t repartition_count() const { return 0; }

  /// Workload-graph size (DynaStar-style policies keep a hint graph; 0 for
  /// stateless policies). Sampled as telemetry gauges.
  virtual std::size_t workload_graph_vertices() const { return 0; }
  virtual std::size_t workload_graph_edges() const { return 0; }

  /// Prophecy prefetch (the locality fast path, see DESIGN.md): records that
  /// `vars` were accessed by one command. Called by the oracle while
  /// processing a delivered consult, on every replica identically — the
  /// co-access state stays a deterministic function of the delivered command
  /// sequence. The base class keeps a cheap bounded recent-co-access table;
  /// policies with a real workload graph (DynaStar) override
  /// prefetch_candidates() instead and may ignore this.
  virtual void note_co_access(const std::vector<VarId>& vars) {
    if (vars.size() < 2) return;
    const std::size_t n = std::min<std::size_t>(vars.size(), kCoAccessFeedCap);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) co_access_[vars[i]].push(vars[j]);
      }
    }
  }

  /// Appends up to `k` variables recently co-accessed with `vars` (excluding
  /// `vars` themselves, no duplicates) to `out`. Breadth-first over the
  /// co-access rings: direct neighbours first, then neighbours-of-neighbours
  /// while budget remains — one hot command's ring members mostly repeat what
  /// the client already caches, so the transitive frontier is where the
  /// novel (cache-warming) candidates live. Deterministic.
  virtual void prefetch_candidates(const std::vector<VarId>& vars, std::size_t k,
                                   std::vector<VarId>& out) {
    const auto wanted = [&](VarId c) {
      return std::find(vars.begin(), vars.end(), c) == vars.end() &&
             std::find(out.begin(), out.end(), c) == out.end();
    };
    const std::size_t base = out.size();
    const std::size_t n = std::min<std::size_t>(vars.size(), kCoAccessFeedCap);
    for (std::size_t i = 0; i < n && out.size() - base < k; ++i) {
      auto it = co_access_.find(vars[i]);
      if (it == co_access_.end()) continue;
      const CoRing& ring = it->second;
      for (std::size_t s = 0; s < ring.count && out.size() - base < k; ++s) {
        const VarId c = ring.recent[s];
        if (wanted(c)) out.push_back(c);
      }
    }
    // Second hop: expand from the appended candidates themselves (out acts
    // as the BFS queue; entries appended here extend the frontier further,
    // still bounded by k).
    for (std::size_t f = base; f < out.size() && out.size() - base < k; ++f) {
      auto it = co_access_.find(out[f]);
      if (it == co_access_.end()) continue;
      const CoRing& ring = it->second;
      for (std::size_t s = 0; s < ring.count && out.size() - base < k; ++s) {
        const VarId c = ring.recent[s];
        if (wanted(c)) out.push_back(c);
      }
    }
  }

 private:
  /// Per-variable ring of the most recently co-accessed neighbours. Tiny and
  /// bounded: the table is a best-effort cache-warming signal, not a workload
  /// graph.
  struct CoRing {
    std::array<VarId, 8> recent{};
    std::uint8_t count = 0;
    std::uint8_t next = 0;

    void push(VarId v) {
      for (std::size_t i = 0; i < count; ++i) {
        if (recent[i] == v) return;  // already tracked; keep ring stable
      }
      recent[next] = v;
      next = static_cast<std::uint8_t>((next + 1) % recent.size());
      count = static_cast<std::uint8_t>(std::min<std::size_t>(count + 1, recent.size()));
    }
  };

  /// Only the first few variables of a wide command feed/probe the table:
  /// co-access is quadratic in the fed prefix and wide commands (move bulks,
  /// timeline fan-ins) would swamp it.
  static constexpr std::size_t kCoAccessFeedCap = 8;

  common::FlatMap<VarId, CoRing> co_access_;
};

/// The DS-SMR (DSN 2016) policy: no global workload knowledge. New variables
/// go to the least-loaded partition (keeps load balanced).
///
/// The paper's client algorithm only says "let P_d be one of the partitions
/// in C.dests" — the destination rule is a free design choice, so it is
/// configurable here (and the ablation bench compares the rules):
///  * kMostHeld (default): the involved partition already holding the most
///    of the command's variables (fewest moves now, directional merging ->
///    fast convergence). Ties — pervasive right after a scattered initial
///    placement — break pseudo-randomly from the variable set, NOT by lowest
///    partition id: a fixed tie-break funnels every near-tied neighbourhood
///    to the same partition and collapses the whole state onto it.
///  * kRandomInvolved: a pseudo-random involved partition (fully symmetric,
///    slowest convergence).
///  * kLeastLoaded: the involved partition with the fewest variables
///    (strongest balancing, most moves).
class DssmrPolicy : public OraclePolicy {
 public:
  enum class DestRule : std::uint8_t { kMostHeld, kRandomInvolved, kLeastLoaded };

  DssmrPolicy() = default;
  explicit DssmrPolicy(DestRule rule) : rule_(rule) {}

  GroupId place_new(VarId v, const Mapping& map) override {
    (void)v;
    return map.least_loaded();
  }

  GroupId choose_destination(const std::vector<VarId>& vars, const Mapping& map) override {
    // Held-variable counts per partition, indexed like map.partitions().
    // Runs on every multi-partition consult: a linear scan over the few
    // deployed partitions beats any hash map here.
    held_.assign(map.partitions().size(), 0);
    std::size_t involved_count = 0;
    for (VarId v : vars) {
      const GroupId p = map.locate(v);
      if (p == kNoGroup) continue;
      const std::size_t i = partition_index(map, p);
      if (held_[i]++ == 0) ++involved_count;
    }
    DSSMR_ASSERT_MSG(involved_count > 0, "choose_destination with fully unmapped vars");
    // Involved partitions, in partition-id order (deterministic).
    involved_.clear();
    for (std::size_t i = 0; i < held_.size(); ++i) {
      if (held_[i] > 0) involved_.push_back(map.partitions()[i]);
    }

    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (VarId v : vars) h = (h ^ v.value) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;

    switch (rule_) {
      case DestRule::kRandomInvolved:
        return involved_[h % involved_.size()];
      case DestRule::kMostHeld: {
        std::size_t most = 0;
        for (GroupId p : involved_) {
          most = std::max(most, held_[partition_index(map, p)]);
        }
        tied_.clear();
        for (GroupId p : involved_) {
          if (held_[partition_index(map, p)] == most) tied_.push_back(p);
        }
        return tied_[h % tied_.size()];
      }
      case DestRule::kLeastLoaded: {
        GroupId best = involved_[0];
        for (GroupId p : involved_) {
          if (map.load(p) < map.load(best)) best = p;
        }
        return best;
      }
    }
    return involved_[0];
  }

 private:
  std::size_t partition_index(const Mapping& map, GroupId p) const {
    const auto& parts = map.partitions();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i] == p) return i;
    }
    DSSMR_FAIL("partition not in mapping");
  }

  DestRule rule_ = DestRule::kMostHeld;
  /// Scratch buffers reused across calls (one policy instance per oracle
  /// replica; calls are sequential within a simulation).
  std::vector<std::size_t> held_;
  std::vector<GroupId> involved_;
  std::vector<GroupId> tied_;
};

/// Static map used by the S-SMR baseline: computed once at deployment time
/// (hash placement or an optimized graph partitioning) and shared read-only
/// by every client.
struct StaticMap {
  LocationMap location;
  std::vector<GroupId> partitions;

  GroupId locate(VarId v) const {
    auto it = location.find(v);
    DSSMR_ASSERT_MSG(it != location.end(), "S-SMR static map is missing a variable");
    return it->second;
  }
};

}  // namespace dssmr::core
