#include "core/server_proxy.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace dssmr::core {

using smr::BulkMoveMsg;
using smr::Command;
using smr::CommandMsg;
using smr::CommandType;
using smr::RepairEntry;
using smr::ReplyCode;
using smr::ReplyMsg;
using smr::ReplyTiming;
using smr::SignalMsg;
using smr::VarShipMsg;
using stats::SpanPhase;

namespace {

/// thread_local: simulations on different sweep threads may share it.
stats::Counter& dummy_counter() {
  thread_local stats::Counter c;
  return c;
}

}  // namespace

void PartitionServer::init_partition(net::Network& network,
                                     const multicast::Directory& directory, GroupId gid,
                                     multicast::GroupNodeConfig node_config,
                                     const smr::AppFactory& app_factory,
                                     PartitionServerConfig config, stats::Metrics* metrics,
                                     std::uint64_t seed) {
  init_group_node(network, directory, gid, node_config, seed);
  app_ = app_factory();
  DSSMR_ASSERT(app_ != nullptr);
  exec_ = std::make_unique<smr::ExecutionEngine>(network.engine());
  config_ = config;
  completed_ = BoundedMap<MsgId, CachedReply>{config_.reply_cache_capacity};
  metrics_ = metrics;
  auto handle = [this](const char* name) {
    return metrics_ != nullptr ? &metrics_->counter_handle(name) : &dummy_counter();
  };
  ctr_ = {handle("server.retries_issued"),
          handle("server.single_partition_commands"),
          handle("server.multi_partition_commands"),
          handle("server.moves_source"),
          handle("server.moves_dest"),
          handle("server.moves_failed"),
          handle("server.creates"),
          handle("server.deletes")};
}

void PartitionServer::preload(VarId v, std::unique_ptr<smr::VarValue> value) {
  owned_.insert(v);
  store_.put(v, std::move(value));
  if (config_.cache_repair) var_epochs_[v] = 1;
}

void PartitionServer::bump(stats::Counter* c) {
  // Leader-gated so deployment-wide counters are per-event, not per-replica.
  if (is_leader()) c->inc();
}

void PartitionServer::heat_command(bool multi) {
  if (metrics_ == nullptr || !is_leader()) return;
  metrics_->recorder().record_command(engine().now(), heat_index(), multi);
}

void PartitionServer::heat_move() {
  if (metrics_ == nullptr || !is_leader()) return;
  metrics_->recorder().record_move(engine().now(), heat_index());
}

std::size_t PartitionServer::heat_index() const {
  // Dense partition index: the oracle group sits at gid == partition count,
  // so elastically added partitions (gid > oracle) shift down by one. Initial
  // partitions (gid < oracle) keep their gid as index, unchanged from the
  // pre-elasticity layout.
  return group().value < config_.oracle_group.value ? group().value : group().value - 1;
}

void PartitionServer::span(SpanPhase p, std::uint64_t trace_id, Time start, Time end,
                           std::int64_t arg) {
  if (metrics_ == nullptr || trace_id == 0 || !is_leader()) return;
  stats::SpanStore& sp = metrics_->spans();
  if (!sp.enabled()) return;
  sp.record({.trace_id = trace_id,
             .phase = p,
             .start = start,
             .end = end,
             .node = pid().value,
             .group = group(),
             .arg = arg},
            /*fold=*/false);
}

void PartitionServer::trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg) {
  // Leader-gated like bump(): one trace record per protocol event.
  if (metrics_ != nullptr && is_leader()) {
    metrics_->trace().record(e, engine().now(), pid().value, id, arg);
  }
}

PartitionServer::Coord& PartitionServer::coord(MsgId cmd_id) { return coord_[cmd_id]; }

void PartitionServer::reply_to(ProcessId client, MsgId cmd_id, ReplyCode code,
                               net::MessagePtr app_reply, bool cache, ReplyTiming timing,
                               bool access_final, std::vector<RepairEntry> repair) {
  if (cache) completed_.put(cmd_id, CachedReply{code, app_reply, timing});
  if (access_final) {
    // Watermark update runs on every replica (deliveries are identical across
    // replicas, so the dedup state stays deterministic and survives leader
    // changes). ids are (client pid << 32) | seq.
    AccessFinal& f = access_final_[static_cast<std::uint32_t>(cmd_id.value >> 32)];
    if (cmd_id.value >= f.cmd_id) f = AccessFinal{cmd_id.value, {code, app_reply, timing}};
  }
  if (client == kNoProcess) return;
  if (!is_leader()) return;  // a peer replica's leader sends it
  send_direct(client, net::make_msg<ReplyMsg>(cmd_id, code, group(), std::move(app_reply),
                                              timing, std::move(repair)));
}

std::vector<RepairEntry> PartitionServer::make_repair(const std::vector<VarId>& vars) const {
  if (!config_.cache_repair) return {};
  std::vector<RepairEntry> repair;
  repair.reserve(vars.size());
  for (VarId v : vars) {
    if (owned_.contains(v)) {
      const auto it = var_epochs_.find(v);
      repair.push_back({v, group(), it != var_epochs_.end() ? it->second : 1});
    } else if (const Forward* f = forwards_.find(v)) {
      repair.push_back({v, f->dest, f->epoch});
    }
  }
  return repair;
}

void PartitionServer::on_amdeliver(const multicast::AmcastMessage& m) {
  if (const auto* bulk = net::msg_cast<BulkMoveMsg>(m.payload)) {
    // Coalesced moves: the bulk message is addressed to the union of the
    // sub-moves' destination sets, so a partition may receive sub-moves it
    // plays no part in — skip those (running the source path for them would
    // wrongly drop ownership of unrelated variables).
    for (const Command& mv : bulk->moves) {
      const bool involved =
          mv.move_dest == group() ||
          std::find(mv.move_sources.begin(), mv.move_sources.end(), group()) !=
              mv.move_sources.end();
      if (involved) deliver_command(m, mv);
    }
    return;
  }
  const auto* cm = net::msg_cast<CommandMsg>(m.payload);
  DSSMR_ASSERT_MSG(cm != nullptr, "partition received a non-command payload");
  deliver_command(m, cm->cmd);
}

void PartitionServer::deliver_command(const multicast::AmcastMessage& m, const Command& cmd) {
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;

  // Retried command that already completed here: re-send the cached outcome.
  if (const CachedReply* cached = completed_.find(cmd.id)) {
    if (is_leader() && client != kNoProcess) {
      send_direct(client,
                  net::make_msg<ReplyMsg>(cmd.id, cached->code, group(), cached->app_reply,
                                          cached->timing, make_repair(cmd.vars())));
    }
    return;
  }
  // Retransmission delivered while the original is still queued: ignore it
  // (the queued task will answer). Processing it would enqueue a duplicate.
  if (inflight_.contains(cmd.id)) return;

  // Reply-cache miss is not proof the command is new: the cache is bounded,
  // and a slow retransmission can outlive its entry. The per-client access
  // watermark catches that — at-most-once even after eviction.
  if (cmd.type == CommandType::kAccess) {
    auto it = access_final_.find(static_cast<std::uint32_t>(cmd.id.value >> 32));
    if (it != access_final_.end() && cmd.id.value <= it->second.cmd_id) {
      if (cmd.id.value == it->second.cmd_id && is_leader() && client != kNoProcess) {
        const CachedReply& r = it->second.reply;
        send_direct(client, net::make_msg<ReplyMsg>(cmd.id, r.code, group(), r.app_reply,
                                                    r.timing, make_repair(cmd.vars())));
      }
      return;
    }
  }

  switch (cmd.type) {
    case CommandType::kAccess:
      if (m.dests.size() == 1) {
        deliver_access_single(m, cmd);
      } else {
        deliver_access_multi(m, cmd);
      }
      break;
    case CommandType::kMove:
      deliver_move(m, cmd);
      break;
    case CommandType::kCreate:
      deliver_create(m, cmd);
      break;
    case CommandType::kDelete:
      deliver_delete(m, cmd);
      break;
  }
}

// ---- access: single partition (fast path) -----------------------------------

void PartitionServer::deliver_access_single(const multicast::AmcastMessage& m,
                                            const Command& cmd) {
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;
  const Time delivered = engine().now();
  // A retired partition's "your information is stale" answer upgrades to
  // kRetired: the client must also drop the partition from its cache and
  // go back to the oracle rather than re-route here.
  const ReplyCode stale = retired_ ? ReplyCode::kRetired : ReplyCode::kRetry;

  // Ownership check at delivery time (the paper's "all variables stored
  // locally?"). Ownership is updated synchronously on delivery of moves, so
  // a command ordered after a move that brings its variables here passes
  // even though the values are still in flight.
  for (VarId v : cmd.read_set) {
    if (!owned_.contains(v)) {
      bump(ctr_.retries_issued);
      // The retry carries repair entries (current owner + epoch, or a
      // forwarding pointer for variables we moved away) so the client can
      // re-route directly instead of re-consulting the oracle.
      reply_to(client, cmd.id, stale, nullptr, /*cache=*/false,
               ReplyTiming{delivered, delivered, delivered}, /*access_final=*/false,
               make_repair(cmd.vars()));
      return;
    }
  }
  for (VarId v : cmd.write_set) {
    if (!owned_.contains(v)) {
      bump(ctr_.retries_issued);
      reply_to(client, cmd.id, stale, nullptr, /*cache=*/false,
               ReplyTiming{delivered, delivered, delivered}, /*access_final=*/false,
               make_repair(cmd.vars()));
      return;
    }
  }

  bump(ctr_.single_partition);
  heat_command(/*multi=*/false);
  inflight_.insert(cmd.id);
  const Duration service = app_->service_time(cmd);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      .ready = nullptr,
      .service = service,
      .run =
          [this, cmd, client, delivered, service] {
            inflight_.erase(cmd.id);
            // run() fires when the service time elapses, i.e. at exec end.
            const Time exec_end = engine().now();
            const Time exec_start = exec_end - service;
            span(SpanPhase::kQueue, cmd.trace_id, delivered, exec_start);
            span(SpanPhase::kExecute, cmd.trace_id, exec_start, exec_end);
            const ReplyTiming timing{delivered, exec_start, exec_end};
            // A move ordered between delivery and execution cannot have taken
            // our variables (it would have been ordered before us and already
            // executed), but a *failed* inbound move can leave an owned
            // variable with no value; treat as stale information.
            for (VarId v : cmd.vars()) {
              if (!store_.contains(v)) {
                bump(ctr_.retries_issued);
                reply_to(client, cmd.id,
                         retired_ ? ReplyCode::kRetired : ReplyCode::kRetry, nullptr,
                         /*cache=*/false, timing, /*access_final=*/false,
                         make_repair(cmd.vars()));
                return;
              }
            }
            smr::ExecutionView view{store_};
            net::MessagePtr app_reply = app_->execute(cmd, view);
            reply_to(client, cmd.id, ReplyCode::kOk, std::move(app_reply), /*cache=*/true,
                     timing, /*access_final=*/true, make_repair(cmd.vars()));
          },
  });
}

// ---- access: multi partition (S-SMR execution) -------------------------------

void PartitionServer::deliver_access_multi(const multicast::AmcastMessage& m,
                                           const Command& cmd) {
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;
  const Time delivered = engine().now();
  bump(ctr_.multi_partition);
  heat_command(/*multi=*/true);
  inflight_.insert(cmd.id);

  std::vector<GroupId> others;
  for (GroupId g : m.dests) {
    if (g != group() && g != config_.oracle_group) others.push_back(g);
  }

  const Duration service = app_->service_time(cmd);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head =
          [this, cmd, others] {
            // Ship every variable of the command we own (a snapshot), plus an
            // implicit signal, to the other involved partitions.
            std::vector<std::pair<VarId, std::shared_ptr<const smr::VarValue>>> ship;
            for (VarId v : cmd.vars()) {
              if (const smr::VarValue* val = store_.get(v); val != nullptr) {
                ship.emplace_back(v, std::shared_ptr<const smr::VarValue>(val->clone()));
              }
            }
            if (!others.empty()) {
              rmcast(others, net::make_msg<VarShipMsg>(cmd.id, group(), /*is_move=*/false,
                                                       std::move(ship)));
            }
          },
      .ready =
          [this, id = cmd.id, others] {
            const Coord& c = coord(id);
            for (GroupId g : others) {
              if (!c.ships_from.contains(g)) return false;
            }
            return true;
          },
      .service = service,
      .run =
          [this, cmd, client, delivered, service] {
            inflight_.erase(cmd.id);
            const Time exec_end = engine().now();
            const Time exec_start = exec_end - service;
            // The queue span here includes the wait for peer shipments — the
            // serialization S-SMR pays for multi-partition commands.
            span(SpanPhase::kQueue, cmd.trace_id, delivered, exec_start);
            span(SpanPhase::kExecute, cmd.trace_id, exec_start, exec_end);
            smr::ExecutionView view{store_};
            auto it = coord_.find(cmd.id);
            if (it != coord_.end()) {
              for (auto& [v, val] : it->second.shipped) {
                if (!store_.contains(v) && val != nullptr) view.lend(v, val->clone());
              }
            }
            net::MessagePtr app_reply = app_->execute(cmd, view);
            if (it != coord_.end()) coord_.erase(it);
            reply_to(client, cmd.id, ReplyCode::kOk, std::move(app_reply), /*cache=*/true,
                     ReplyTiming{delivered, exec_start, exec_end}, /*access_final=*/true,
                     make_repair(cmd.vars()));
          },
  });
}

// ---- move --------------------------------------------------------------------

void PartitionServer::deliver_move(const multicast::AmcastMessage& m, const Command& cmd) {
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;
  const bool is_dest = cmd.move_dest == group();
  const std::vector<VarId> vars = cmd.vars();
  const Time delivered = engine().now();

  if (!is_dest) {
    // Source: give up ownership immediately (delivery order defines who owns
    // what); ship the values once predecessors finish executing. With cache
    // repair on, leave a forwarding pointer so later retries for these
    // variables can re-route the client without an oracle consult.
    std::vector<VarId> mine;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const VarId v = vars[i];
      if (owned_.erase(v) == 0) continue;
      mine.push_back(v);
      if (config_.cache_repair) {
        const std::uint64_t hint =
            i < cmd.move_epochs.size() ? cmd.move_epochs[i] : var_epochs_[v] + 1;
        forwards_.put(v, Forward{cmd.move_dest, hint});
      }
    }
    bump(ctr_.moves_source);
    heat_move();
    inflight_.insert(cmd.id);
    const Duration service =
        config_.move_service_per_var * static_cast<Duration>(mine.size() + 1);
    exec_->enqueue(smr::ExecutionEngine::Task{
        .id = cmd.id,
        .on_head = nullptr,
        .ready = nullptr,
        .service = service,
        .run =
            [this, mine, dest = cmd.move_dest, id = cmd.id, tid = cmd.trace_id, delivered,
             service] {
              inflight_.erase(id);
              const Time exec_end = engine().now();
              const Time exec_start = exec_end - service;
              span(SpanPhase::kQueue, tid, delivered, exec_start);
              span(SpanPhase::kExecute, tid, exec_start, exec_end,
                   static_cast<std::int64_t>(mine.size()));
              std::vector<std::pair<VarId, std::shared_ptr<const smr::VarValue>>> ship;
              for (VarId v : mine) {
                if (auto val = store_.take(v); val != nullptr) {
                  ship.emplace_back(v, std::shared_ptr<const smr::VarValue>(std::move(val)));
                }
              }
              rmcast({dest},
                     net::make_msg<VarShipMsg>(id, group(), /*is_move=*/true, std::move(ship)));
            },
    });
    return;
  }

  // Destination: claim ownership now; wait for one shipment per source, then
  // install the values and answer the requester.
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const VarId v = vars[i];
    owned_.insert(v);
    if (config_.cache_repair) {
      // Epoch advances past both our local history and the mover's hint (the
      // oracle mapping's epoch), so repair entries never regress.
      std::uint64_t& e = var_epochs_[v];
      const std::uint64_t hint = i < cmd.move_epochs.size() ? cmd.move_epochs[i] : 0;
      e = std::max(e + 1, hint);
    }
  }
  std::vector<GroupId> sources;
  for (GroupId g : cmd.move_sources) {
    if (g != group()) sources.push_back(g);
  }
  bump(ctr_.moves_dest);
  heat_move();
  inflight_.insert(cmd.id);

  const Duration service =
      config_.move_service_per_var * static_cast<Duration>(vars.size() + 1);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      .ready =
          [this, id = cmd.id, sources] {
            const Coord& c = coord(id);
            for (GroupId g : sources) {
              if (!c.ships_from.contains(g)) return false;
            }
            return true;
          },
      .service = service,
      .run =
          [this, vars, client, id = cmd.id, tid = cmd.trace_id, delivered, service] {
            inflight_.erase(id);
            const Time exec_end = engine().now();
            const Time exec_start = exec_end - service;
            span(SpanPhase::kQueue, tid, delivered, exec_start);
            span(SpanPhase::kExecute, tid, exec_start, exec_end,
                 static_cast<std::int64_t>(vars.size()));
            auto it = coord_.find(id);
            std::vector<VarId> installed;
            std::size_t failed = 0;
            for (VarId v : vars) {
              if (store_.contains(v)) {  // we already held it
                installed.push_back(v);
                continue;
              }
              std::shared_ptr<const smr::VarValue> val;
              if (it != coord_.end()) {
                if (auto f = it->second.shipped.find(v); f != it->second.shipped.end()) {
                  val = f->second;
                }
              }
              if (val != nullptr) {
                store_.put(v, val->clone());
                installed.push_back(v);
              } else {
                // No source shipped it: the mapping was stale; give the claim up.
                owned_.erase(v);
                ++failed;
              }
            }
            if (it != coord_.end()) coord_.erase(it);
            // The reply tells the client which variables really landed here so
            // it caches only those; a partial install is a failed move and must
            // go through the client's retry/fallback path, not pretend success.
            const ReplyCode code = failed == 0 ? ReplyCode::kOk : ReplyCode::kRetry;
            if (failed == 0) {
              trace(stats::TraceEvent::kMoveApplied, id.value,
                    static_cast<std::int64_t>(installed.size()));
            } else {
              bump(ctr_.moves_failed);
              trace(stats::TraceEvent::kMoveFailed, id.value,
                    static_cast<std::int64_t>(failed));
            }
            reply_to(client, id, code, net::make_msg<smr::MoveResultMsg>(std::move(installed)),
                     /*cache=*/true, ReplyTiming{delivered, exec_start, exec_end},
                     /*access_final=*/false, make_repair(vars));
          },
  });
}

// ---- create / delete ---------------------------------------------------------

void PartitionServer::deliver_create(const multicast::AmcastMessage& m, const Command& cmd) {
  (void)m;
  DSSMR_ASSERT(cmd.write_set.size() == 1);
  const VarId v = cmd.write_set[0];
  if (owned_.contains(v)) {
    // Duplicate create (raced consults); the oracle answers nok. Still signal
    // so the oracle's wait terminates.
    rmcast({config_.oracle_group}, net::make_msg<SignalMsg>(cmd.id, group()));
    return;
  }
  owned_.insert(v);
  if (config_.cache_repair) ++var_epochs_[v];
  bump(ctr_.creates);
  inflight_.insert(cmd.id);
  const Time delivered = engine().now();
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      .ready = nullptr,
      .service = config_.create_delete_service,
      .run =
          [this, v, id = cmd.id, tid = cmd.trace_id, delivered] {
            inflight_.erase(id);
            const Time exec_end = engine().now();
            const Time exec_start = exec_end - config_.create_delete_service;
            span(SpanPhase::kQueue, tid, delivered, exec_start);
            span(SpanPhase::kExecute, tid, exec_start, exec_end);
            if (owned_.contains(v) && !store_.contains(v)) {
              store_.put(v, app_->make_default(v));
            }
            // Execution-atomicity signal: the oracle replies to the client
            // only after the partition has applied the create.
            rmcast({config_.oracle_group}, net::make_msg<SignalMsg>(id, group()));
          },
  });
}

void PartitionServer::deliver_delete(const multicast::AmcastMessage& m, const Command& cmd) {
  (void)m;
  DSSMR_ASSERT(cmd.write_set.size() == 1);
  const VarId v = cmd.write_set[0];
  owned_.erase(v);
  bump(ctr_.deletes);
  inflight_.insert(cmd.id);
  const Time delivered = engine().now();
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      .ready = nullptr,
      .service = config_.create_delete_service,
      .run =
          [this, v, id = cmd.id, tid = cmd.trace_id, delivered] {
            inflight_.erase(id);
            const Time exec_end = engine().now();
            const Time exec_start = exec_end - config_.create_delete_service;
            span(SpanPhase::kQueue, tid, delivered, exec_start);
            span(SpanPhase::kExecute, tid, exec_start, exec_end);
            store_.erase(v);
            rmcast({config_.oracle_group}, net::make_msg<SignalMsg>(id, group()));
          },
  });
}

// ---- reliable-multicast inputs ------------------------------------------------

void PartitionServer::on_rmdeliver(ProcessId origin, const net::MessagePtr& payload) {
  (void)origin;
  if (const auto* ship = net::msg_cast<VarShipMsg>(payload)) {
    if (completed_.contains(ship->cmd_id)) return;  // late duplicate
    Coord& c = coord(ship->cmd_id);
    if (!c.ships_from.insert(ship->from_group)) return;  // replica duplicate
    for (const auto& [v, val] : ship->vars) {
      c.shipped.try_emplace(v, val);
    }
    exec_->notify();
    return;
  }
  if (net::msg_cast<SignalMsg>(payload) != nullptr) {
    // Partitions do not wait on signals in this implementation (only the
    // oracle does, before answering create/delete); ignore.
    return;
  }
}

}  // namespace dssmr::core
