#include "core/oracle.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace dssmr::core {

using smr::BulkMoveMsg;
using smr::Command;
using smr::CommandMsg;
using smr::CommandType;
using smr::ConsultMsg;
using smr::HintMsg;
using smr::ProphecyMsg;
using smr::ReplyCode;
using smr::ReplyMsg;
using smr::ReplyTiming;
using smr::SignalMsg;

namespace {

/// Sink for counter handles when no metrics object is wired (tests).
/// thread_local: simulations on different sweep threads may share it.
stats::Counter& dummy_counter() {
  thread_local stats::Counter c;
  return c;
}

}  // namespace

MsgId derive_move_id(MsgId consult_id) {
  std::uint64_t x = consult_id.value ^ 0x6d6f76652d69645fULL;  // "move-id_"
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return MsgId{x ^ (x >> 27)};
}

void OracleNode::init_oracle(net::Network& network, const multicast::Directory& directory,
                             GroupId gid, multicast::GroupNodeConfig node_config,
                             std::unique_ptr<OraclePolicy> policy,
                             std::vector<GroupId> partitions, OracleConfig config,
                             stats::Metrics* metrics, std::uint64_t seed) {
  init_group_node(network, directory, gid, node_config, seed);
  mapping_ = std::make_unique<Mapping>(partitions);
  policy_ = std::move(policy);
  DSSMR_ASSERT(policy_ != nullptr);
  exec_ = std::make_unique<smr::ExecutionEngine>(network.engine());
  partitions_ = std::move(partitions);
  config_ = config;
  metrics_ = metrics;
  auto handle = [this](const char* name) {
    return metrics_ != nullptr ? &metrics_->counter_handle(name) : &dummy_counter();
  };
  ctr_ = {handle("oracle.consults"),     handle("oracle.creates"),
          handle("oracle.deletes"),      handle("oracle.moves_issued"),
          handle("oracle.moves_applied"), handle("oracle.hints"),
          // Locality counters are interned only when their feature is on:
          // interning creates the counter, and off-mode run records must stay
          // byte-identical to the pre-locality output.
          config_.prefetch_k > 0 ? handle("locality.prefetch_sent") : &dummy_counter(),
          config_.coalesce_moves > 0 ? handle("locality.coalesced_moves") : &dummy_counter(),
          config_.coalesce_moves > 0 ? handle("locality.bulk_flushes") : &dummy_counter(),
          // Elastic counters follow the same rule: interned only when a scale
          // plan is armed, so non-elastic run records keep their exact bytes.
          config_.elastic ? handle("elastic.partitions_added") : &dummy_counter(),
          config_.elastic ? handle("elastic.partitions_retired") : &dummy_counter(),
          config_.elastic ? handle("elastic.rebalance_moves") : &dummy_counter(),
          config_.elastic ? handle("elastic.rebalance_vars") : &dummy_counter()};
  if (metrics_ != nullptr) {
    busy_series_ = &metrics_->series("oracle.busy_us");
    moves_series_ = &metrics_->series("moves_ts");
  }
}

void OracleNode::preload(VarId v, GroupId p) {
  mapping_->place(v, p);
  policy_->on_create(v);
}

void OracleNode::bump(stats::Counter* c) {
  // Leader-gated so deployment-wide counters are per-event, not per-replica.
  if (is_leader()) c->inc();
}

void OracleNode::trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg) {
  // Leader-gated like bump(): one trace record per protocol event.
  if (metrics_ != nullptr && is_leader()) {
    metrics_->trace().record(e, engine().now(), pid().value, id, arg);
  }
}

void OracleNode::account(Duration service) {
  // One series per deployment: only the leader accounts, so the series
  // reflects one oracle replica's CPU, matching the paper's measurement.
  if (busy_series_ != nullptr && is_leader()) {
    busy_series_->add(engine().now(), static_cast<double>(service));
  }
}

void OracleNode::queue_reply_task(Duration service, std::function<void()> run) {
  account(service);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = MsgId{0},
      .on_head = nullptr,
      .ready = nullptr,
      .service = service,
      .run = std::move(run),
  });
}

void OracleNode::on_amdeliver(const multicast::AmcastMessage& m) {
  if (const auto* consult = net::msg_cast<ConsultMsg>(m.payload)) {
    handle_consult(m, *consult);
    return;
  }
  if (const auto* hint = net::msg_cast<HintMsg>(m.payload)) {
    handle_hint(*hint);
    return;
  }
  if (const auto* bulk = net::msg_cast<BulkMoveMsg>(m.payload)) {
    // Coalesced moves: apply each sub-move to the mapping independently (the
    // stale-source guard in handle_move keeps unrelated sub-moves harmless).
    for (const Command& mv : bulk->moves) handle_move(mv);
    return;
  }
  const auto* cm = net::msg_cast<CommandMsg>(m.payload);
  DSSMR_ASSERT_MSG(cm != nullptr, "oracle received an unknown payload");
  const Command& cmd = cm->cmd;
  switch (cmd.type) {
    case CommandType::kCreate:
      handle_create(m, cmd);
      break;
    case CommandType::kDelete:
      handle_delete(m, cmd);
      break;
    case CommandType::kMove:
      handle_move(cmd);
      break;
    case CommandType::kReconfig:
      handle_reconfig(cmd);
      break;
    case CommandType::kAccess:
      // Fall-back S-SMR executions do not involve the oracle; nothing to do.
      break;
  }
}

void OracleNode::handle_consult(const multicast::AmcastMessage& m, const ConsultMsg& consult) {
  bump(ctr_.consults);
  const Command& cmd = consult.cmd;
  const ProcessId client = m.sender;
  auto prophecy = std::make_shared<ProphecyMsg>(consult.consult_id, ReplyCode::kOk);

  if (cmd.type == CommandType::kCreate) {
    const VarId v = cmd.write_set.at(0);
    if (mapping_->contains(v)) {
      prophecy->code = ReplyCode::kNok;
    } else {
      prophecy->dest = policy_->place_new(v, *mapping_);
      // A draining partition must stop accumulating state; policies that
      // ignore membership (e.g. a stale DynaStar ideal) are overridden here,
      // at the single choke point every placement goes through.
      if (!mapping_->is_live(prophecy->dest)) prophecy->dest = mapping_->least_loaded();
      prophecy->locations.emplace_back(v, prophecy->dest);
    }
  } else {
    // access or delete: every variable must exist.
    bool missing = false;
    std::vector<GroupId> dests;
    for (VarId v : cmd.vars()) {
      const GroupId p = mapping_->locate(v);
      if (p == kNoGroup) {
        missing = true;
        break;
      }
      prophecy->locations.emplace_back(v, p);
      if (std::find(dests.begin(), dests.end(), p) == dests.end()) dests.push_back(p);
    }
    if (missing) {
      prophecy->code = ReplyCode::kNok;
      prophecy->locations.clear();
    } else if (cmd.type == CommandType::kAccess && dests.size() > 1) {
      prophecy->dest = policy_->choose_destination(cmd.vars(), *mapping_);
      // Same draining guard as place_new: collocation must target a live
      // partition even when the policy picks the (involved) draining one.
      if (!mapping_->is_live(prophecy->dest)) prophecy->dest = mapping_->least_loaded();
      if (config_.oracle_issues_moves && is_leader()) {
        // DynaStar mode: the oracle collocates the variables itself. The move
        // id is derived from the consult id so the client can await the
        // destination partition's confirmation.
        Command move;
        move.type = CommandType::kMove;
        move.id = derive_move_id(consult.consult_id);
        move.trace_id = cmd.trace_id;  // stays in the consulting command's trace
        move.requester = client;
        move.write_set = cmd.vars();
        move.move_sources = dests;
        move.move_dest = prophecy->dest;
        if (config_.cache_repair) {
          // Epoch each variable reaches once the move installs (vars() is
          // sorted, so the vector stays parallel on the receiving side).
          for (VarId v : move.write_set) {
            move.move_epochs.push_back(mapping_->epoch_of(v) + 1);
          }
        }
        std::vector<GroupId> move_dests = dests;
        move_dests.push_back(prophecy->dest);
        move_dests.push_back(group());
        const MsgId move_id = move.id;
        if (config_.coalesce_moves > 0) {
          buffer_move(std::move(move), std::move(move_dests));
        } else {
          amcast(std::move(move_dests), net::make_msg<CommandMsg>(std::move(move)));
        }
        bump(ctr_.moves_issued);
        trace(stats::TraceEvent::kMoveIssued, move_id.value,
              static_cast<std::int64_t>(prophecy->dest.value));
        if (moves_series_ != nullptr) moves_series_->add(engine().now());
      }
      prophecy->oracle_moved = config_.oracle_issues_moves;
    } else if (cmd.type == CommandType::kAccess && dests.size() == 1) {
      prophecy->dest = dests[0];
    }
  }

  if (config_.cache_repair && prophecy->code == ReplyCode::kOk) {
    // Epochs parallel to `locations`, so the client can watermark its cache.
    for (const auto& [v, loc] : prophecy->locations) {
      (void)loc;
      prophecy->epochs.push_back(mapping_->epoch_of(v));
    }
  }
  if (config_.prefetch_k > 0 && cmd.type == CommandType::kAccess &&
      prophecy->code == ReplyCode::kOk) {
    // Feed and probe the policy's co-access state on EVERY replica — it must
    // remain a deterministic function of the delivered consult sequence —
    // then attach located candidates to the prophecy (only the leader sends).
    policy_->note_co_access(cmd.vars());
    std::vector<VarId> candidates;
    policy_->prefetch_candidates(cmd.vars(), config_.prefetch_k, candidates);
    for (VarId c : candidates) {
      const GroupId loc = mapping_->locate(c);
      if (loc == kNoGroup) continue;
      prophecy->prefetch.push_back(
          {c, loc, config_.cache_repair ? mapping_->epoch_of(c) : 0});
    }
    if (!prophecy->prefetch.empty() && is_leader()) {
      ctr_.prefetch_sent->inc(prophecy->prefetch.size());
    }
  }

  const Time delivered = engine().now();
  queue_reply_task(config_.consult_service, [this, client, prophecy,
                                             tid = cmd.trace_id, delivered] {
    if (is_leader()) {
      // Server-side view of consult handling (delivery -> prophecy sent); the
      // client's folded kConsult span covers this window end to end.
      if (metrics_ != nullptr && tid != 0 && metrics_->spans().enabled()) {
        metrics_->spans().record({.trace_id = tid,
                                  .phase = stats::SpanPhase::kOracle,
                                  .start = delivered,
                                  .end = engine().now(),
                                  .node = pid().value,
                                  .group = group()},
                                 /*fold=*/false);
      }
      send_direct(client, prophecy);
    }
  });
}

void OracleNode::handle_create(const multicast::AmcastMessage& m, const Command& cmd) {
  const VarId v = cmd.write_set.at(0);
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;

  if (const CachedReply* cached = completed_.find(cmd.id)) {
    if (is_leader()) {
      send_direct(client, net::make_msg<ReplyMsg>(cmd.id, cached->code, group(), nullptr,
                                                  cached->timing));
    }
    return;
  }

  const Time delivered = engine().now();
  GroupId target = kNoGroup;
  for (GroupId g : m.dests) {
    if (g != group()) target = g;
  }
  ReplyCode outcome = ReplyCode::kOk;
  if (mapping_->contains(v) || target == kNoGroup) {
    outcome = ReplyCode::kNok;
  } else {
    mapping_->place(v, target);
    policy_->on_create(v);
    bump(ctr_.creates);
  }

  account(config_.command_service);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      // Reply only after the partition signalled that it applied the create.
      .ready = outcome == ReplyCode::kOk
                   ? std::function<bool()>([this, id = cmd.id, target] {
                       return signals_[id].contains(target);
                     })
                   : nullptr,
      .service = config_.command_service,
      .run =
          [this, id = cmd.id, client, outcome, delivered] {
            signals_.erase(id);
            const Time exec_end = engine().now();
            const ReplyTiming timing{delivered, exec_end - config_.command_service, exec_end};
            completed_.put(id, CachedReply{outcome, timing});
            if (is_leader()) {
              send_direct(client,
                          net::make_msg<ReplyMsg>(id, outcome, group(), nullptr, timing));
            }
          },
  });
}

void OracleNode::handle_delete(const multicast::AmcastMessage& m, const Command& cmd) {
  const VarId v = cmd.write_set.at(0);
  const ProcessId client = cmd.requester != kNoProcess ? cmd.requester : m.sender;

  if (const CachedReply* cached = completed_.find(cmd.id)) {
    if (is_leader()) {
      send_direct(client, net::make_msg<ReplyMsg>(cmd.id, cached->code, group(), nullptr,
                                                  cached->timing));
    }
    return;
  }

  const Time delivered = engine().now();
  GroupId target = kNoGroup;
  for (GroupId g : m.dests) {
    if (g != group()) target = g;
  }
  mapping_->erase(v);
  policy_->on_delete(v);
  bump(ctr_.deletes);

  account(config_.command_service);
  exec_->enqueue(smr::ExecutionEngine::Task{
      .id = cmd.id,
      .on_head = nullptr,
      .ready = target != kNoGroup ? std::function<bool()>([this, id = cmd.id, target] {
                                      return signals_[id].contains(target);
                                    })
                                  : nullptr,
      .service = config_.command_service,
      .run =
          [this, id = cmd.id, client, delivered] {
            signals_.erase(id);
            const Time exec_end = engine().now();
            const ReplyTiming timing{delivered, exec_end - config_.command_service, exec_end};
            completed_.put(id, CachedReply{ReplyCode::kOk, timing});
            if (is_leader()) {
              send_direct(client, net::make_msg<ReplyMsg>(id, ReplyCode::kOk, group(),
                                                          nullptr, timing));
            }
          },
  });
}

void OracleNode::handle_move(const Command& cmd) {
  // Apply only moves whose recorded source matches — a stale move (the
  // variable moved elsewhere since the prophecy) must not corrupt the map.
  for (VarId v : cmd.vars()) {
    const GroupId cur = mapping_->locate(v);
    if (cur == kNoGroup) continue;
    if (std::find(cmd.move_sources.begin(), cmd.move_sources.end(), cur) !=
        cmd.move_sources.end()) {
      mapping_->place(v, cmd.move_dest);
    }
  }
  bump(ctr_.moves_applied);
  queue_reply_task(config_.command_service, [] {});
}

void OracleNode::submit_reconfig(GroupId partition, std::uint32_t op) {
  Command cmd;
  cmd.type = CommandType::kReconfig;
  cmd.id = next_msg_id();
  cmd.op = op;
  cmd.move_dest = partition;
  amcast({group()}, net::make_msg<CommandMsg>(std::move(cmd)));
}

void OracleNode::handle_reconfig(const Command& cmd) {
  const GroupId target = cmd.move_dest;
  if (cmd.op == kReconfigAdd) {
    if (!mapping_->is_member(target)) {
      mapping_->add_partition(target);
      partitions_.push_back(target);
      bump(ctr_.partitions_added);
      trace(stats::TraceEvent::kPartitionAdded, cmd.id.value,
            static_cast<std::int64_t>(target.value));
    }
    // Rebalance toward the newcomer. Leader-only, like oracle-issued
    // collocation moves: the moves go through the regular amcast machinery
    // and every replica's mapping updates when they deliver.
    if (is_leader()) plan_rebalance_in(target);
  } else {
    DSSMR_ASSERT_MSG(cmd.op == kReconfigRetire, "unknown reconfig op");
    DSSMR_ASSERT_MSG(mapping_->is_member(target), "retiring an unknown partition");
    if (mapping_->is_live(target)) {
      mapping_->set_draining(target);
      bump(ctr_.partitions_retired);
      trace(stats::TraceEvent::kPartitionDraining, cmd.id.value,
            static_cast<std::int64_t>(target.value));
    }
    // Sweep whatever is currently mapped there. The Scaler re-submits the
    // retire record if stragglers (moves in flight at planning time) land
    // variables on the draining partition afterwards — handle_reconfig is
    // idempotent, so each sweep only moves the leftovers.
    if (is_leader()) plan_drain(target);
  }
  queue_reply_task(config_.command_service, [] {});
}

void OracleNode::plan_rebalance_in(GroupId target) {
  const std::size_t live = mapping_->live_count();
  if (live == 0) return;
  const std::uint64_t quota = mapping_->var_count() / live;
  const std::uint64_t held = mapping_->load(target);
  std::uint64_t deficit = quota > held ? quota - held : 0;
  // Donors above quota, most loaded first (stable sort over the membership
  // order keeps ties canonical — every replica would plan identically).
  std::vector<GroupId> donors;
  for (GroupId p : mapping_->partitions()) {
    if (p == target || !mapping_->is_live(p)) continue;
    if (mapping_->load(p) > quota) donors.push_back(p);
  }
  std::stable_sort(donors.begin(), donors.end(),
                   [&](GroupId a, GroupId b) { return mapping_->load(a) > mapping_->load(b); });
  std::vector<VarId> vars;
  for (GroupId donor : donors) {
    if (deficit == 0) break;
    const std::uint64_t take = std::min<std::uint64_t>(mapping_->load(donor) - quota, deficit);
    if (take == 0) continue;
    vars.clear();
    mapping_->vars_on(donor, vars);
    vars.resize(static_cast<std::size_t>(take));
    deficit -= take;
    for (std::size_t i = 0; i < vars.size(); i += config_.rebalance_chunk) {
      const std::size_t n = std::min(config_.rebalance_chunk, vars.size() - i);
      issue_rebalance_move(
          donor, target,
          std::vector<VarId>(vars.begin() + static_cast<std::ptrdiff_t>(i),
                             vars.begin() + static_cast<std::ptrdiff_t>(i + n)));
    }
  }
}

void OracleNode::plan_drain(GroupId retiring) {
  std::vector<VarId> vars;
  mapping_->vars_on(retiring, vars);
  if (vars.empty()) return;
  // Chunk destinations spread by a local copy of the live loads, so one
  // planning pass balances the whole drain deterministically.
  std::vector<GroupId> live;
  std::vector<std::uint64_t> loads;
  for (GroupId p : mapping_->partitions()) {
    if (!mapping_->is_live(p)) continue;
    live.push_back(p);
    loads.push_back(mapping_->load(p));
  }
  DSSMR_ASSERT_MSG(!live.empty(), "draining the last live partition");
  for (std::size_t i = 0; i < vars.size(); i += config_.rebalance_chunk) {
    const std::size_t n = std::min(config_.rebalance_chunk, vars.size() - i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < live.size(); ++j) {
      if (loads[j] < loads[best]) best = j;
    }
    loads[best] += n;
    issue_rebalance_move(
        retiring, live[best],
        std::vector<VarId>(vars.begin() + static_cast<std::ptrdiff_t>(i),
                           vars.begin() + static_cast<std::ptrdiff_t>(i + n)));
  }
}

void OracleNode::issue_rebalance_move(GroupId from, GroupId to, std::vector<VarId> chunk) {
  Command move;
  move.type = CommandType::kMove;
  move.id = next_msg_id();
  move.requester = kNoProcess;  // no client awaits this reply
  move.write_set = std::move(chunk);  // vars_on() order == vars() order (sorted)
  move.move_sources = {from};
  move.move_dest = to;
  if (config_.cache_repair) {
    for (VarId v : move.write_set) move.move_epochs.push_back(mapping_->epoch_of(v) + 1);
  }
  bump(ctr_.rebalance_moves);
  if (is_leader()) {
    ctr_.rebalance_vars->inc(move.write_set.size());
    if (metrics_ != nullptr) {
      metrics_->histogram("elastic.rebalance_entries")
          .record(static_cast<std::int64_t>(move.write_set.size()));
    }
  }
  trace(stats::TraceEvent::kRebalanceMove, move.id.value,
        static_cast<std::int64_t>(to.value));
  if (moves_series_ != nullptr && is_leader()) moves_series_->add(engine().now());
  std::vector<GroupId> dests{from, to, group()};
  if (config_.coalesce_moves > 0) {
    buffer_move(std::move(move), std::move(dests));
  } else {
    amcast(std::move(dests), net::make_msg<CommandMsg>(std::move(move)));
  }
}

void OracleNode::buffer_move(Command move, std::vector<GroupId> dests) {
  // Leader only: reached from the leader-gated move-issue branch. A buffered
  // move lost to a leader change is recovered by the client's consult
  // timeout (exactly like a move multicast lost to a crash).
  pending_moves_.push_back({std::move(move), std::move(dests)});
  if (pending_moves_.size() >= config_.coalesce_moves) {
    flush_moves();
    return;
  }
  if (!move_flush_armed_) {
    move_flush_armed_ = true;
    engine().schedule(config_.coalesce_delay, [this] {
      move_flush_armed_ = false;
      if (!halted() && is_leader()) flush_moves();
    });
  }
}

void OracleNode::flush_moves() {
  if (pending_moves_.empty()) return;
  std::vector<PendingMove> pending = std::move(pending_moves_);
  pending_moves_.clear();
  std::vector<std::vector<GroupId>> dest_sets;
  dest_sets.reserve(pending.size());
  for (const PendingMove& p : pending) dest_sets.push_back(p.dests);
  const std::vector<std::size_t> cluster = multicast::cluster_by_dest_overlap(dest_sets);
  const std::size_t clusters =
      cluster.empty() ? 0 : 1 + *std::max_element(cluster.begin(), cluster.end());
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<Command> moves;
    std::vector<GroupId> union_dests;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (cluster[i] != c) continue;
      moves.push_back(std::move(pending[i].move));
      union_dests.insert(union_dests.end(), pending[i].dests.begin(), pending[i].dests.end());
    }
    multicast::normalize_dests(union_dests);
    if (moves.size() == 1) {
      // A lone move ships exactly like the uncoalesced path.
      amcast(std::move(union_dests), net::make_msg<CommandMsg>(std::move(moves.front())));
      continue;
    }
    ctr_.coalesced_moves->inc(moves.size());
    ctr_.bulk_flushes->inc();
    if (metrics_ != nullptr) {
      metrics_->histogram("locality.bulk_entries").record(static_cast<std::int64_t>(moves.size()));
    }
    amcast(std::move(union_dests), net::make_msg<BulkMoveMsg>(std::move(moves)));
  }
}

void OracleNode::handle_hint(const HintMsg& hint) {
  const std::uint64_t repartitions_before = policy_->repartition_count();
  policy_->on_hint(hint.edges);
  bump(ctr_.hints);
  // A hint batch that crossed the policy's threshold recomputed the ideal
  // partitioning — annotate the telemetry timeline (leader-gated, like all
  // deployment-wide recording).
  if (metrics_ != nullptr && is_leader() && metrics_->recorder().enabled() &&
      policy_->repartition_count() != repartitions_before) {
    metrics_->recorder().mark(engine().now(), stats::Recorder::MarkKind::kEvent,
                              "repartition #" + std::to_string(policy_->repartition_count()));
  }
  queue_reply_task(config_.command_service, [] {});
}

void OracleNode::on_rmdeliver(ProcessId origin, const net::MessagePtr& payload) {
  (void)origin;
  if (const auto* sig = net::msg_cast<SignalMsg>(payload)) {
    signals_[sig->cmd_id].insert(sig->from_group);
    exec_->notify();
  }
}

}  // namespace dssmr::core
