// Move-coalescing relay (locality fast path; see DESIGN.md).
//
// DS-SMR clients issue one move multicast per collocation, each paying a full
// Skeen exchange across {oracle} ∪ sources ∪ {destination}. Under weak
// locality many such moves are in flight at once with overlapping destination
// sets; this relay buffers client-issued moves briefly and merges every
// overlapping cluster into a single BulkMoveMsg multicast to the union of the
// cluster's destinations — one Skeen exchange carrying many moves. Clusters
// of one ship as a plain CommandMsg, byte-identical to the direct path.
//
// The relay is a pure router: destination partitions still answer the issuing
// client directly, clients still drive timeouts/resends (a resent move is
// re-buffered and re-multicast; partitions dedup by the stable move id), and
// the oracle — part of every move's destination set — observes exactly the
// same move commands it would have seen unbatched. Losing the relay therefore
// loses only in-flight buffered moves, which the client timeout recovers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "multicast/client.h"
#include "smr/command.h"
#include "stats/metrics.h"

namespace dssmr::core {

struct MoveCoalescerConfig {
  /// Oracle group (member of every move's destination set).
  GroupId oracle_group = kNoGroup;
  /// Flush as soon as this many moves are buffered.
  std::size_t coalesce_moves = 4;
  /// Flush at the latest this long after the first buffered move.
  Duration coalesce_delay = usec(200);
};

class MoveCoalescer : public multicast::ClientNode {
 public:
  void init_coalescer(net::Network& network, const multicast::Directory& directory,
                      MoveCoalescerConfig config, stats::Metrics* metrics);

  std::size_t pending() const { return pending_.size(); }
  /// Clusters the buffered moves by destination-set overlap and multicasts
  /// each cluster (public so tests can force a flush deterministically).
  void flush();

 protected:
  /// Clients hand their move CommandMsgs to the relay as direct messages.
  void on_reply(ProcessId from, const net::MessagePtr& m) override;

 private:
  std::vector<GroupId> dests_of(const smr::Command& move) const;

  MoveCoalescerConfig config_;
  stats::Metrics* metrics_ = nullptr;
  std::vector<smr::Command> pending_;
  bool flush_armed_ = false;

  struct Counters {
    stats::Counter* coalesced_moves;
    stats::Counter* bulk_flushes;
  } ctr_{};
};

}  // namespace dssmr::core
