#include "core/client_proxy.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "core/oracle.h"

namespace dssmr::core {

using smr::Command;
using smr::CommandMsg;
using smr::CommandType;
using smr::ConsultMsg;
using smr::HintMsg;
using smr::MoveResultMsg;
using smr::ProphecyMsg;
using smr::ReplyCode;
using smr::ReplyMsg;
using stats::SpanPhase;
using stats::TraceEvent;

namespace {

/// Sink for counter handles when no metrics object is wired (tests).
/// thread_local: simulations on different sweep threads may share it.
stats::Counter& dummy_counter() {
  thread_local stats::Counter c;
  return c;
}

}  // namespace

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kStaticSsmr:
      return "S-SMR";
    case Strategy::kDssmr:
      return "DS-SMR";
    case Strategy::kDynaStar:
      return "DynaStar";
  }
  return "?";
}

void ClientProxy::init_client(net::Network& network, const multicast::Directory& directory,
                              ClientConfig config, stats::Metrics* metrics) {
  init_client_node(network, directory);
  cfg_ = std::move(config);
  metrics_ = metrics;
  auto handle = [this](const char* name) {
    return metrics_ != nullptr ? &metrics_->counter_handle(name) : &dummy_counter();
  };
  // Locality counters are interned only when their feature flag is on:
  // default-off runs must not materialize `locality.*` names (the run record
  // would grow a section and break byte-identity with pre-locality builds).
  auto gated = [&handle](bool on, const char* name) {
    return on ? handle(name) : &dummy_counter();
  };
  ctr_ = {handle("client.ops"),       handle("client.consults"),
          handle("client.cache_hits"), handle("client.multi_partition"),
          handle("client.moves"),     handle("client.retries"),
          handle("client.fallbacks"), handle("client.timeouts"),
          handle("client.hints"),     handle("client.ok"),
          handle("client.nok"),
          gated(cfg_.prefetch, "locality.prefetch_installed"),
          gated(cfg_.prefetch, "locality.prefetch_hits"),
          gated(cfg_.cache_repair, "locality.repairs"),
          gated(cfg_.cache_repair, "locality.repair_reroutes")};
  if (metrics_ != nullptr) {
    latency_hist_ = &metrics_->histogram("client.latency_us");
    completions_series_ = &metrics_->series("client.completions");
    moves_series_ = &metrics_->series("moves_ts");
  }
  DSSMR_ASSERT(!cfg_.partitions.empty());
  if (cfg_.strategy == Strategy::kStaticSsmr) {
    DSSMR_ASSERT_MSG(cfg_.static_map != nullptr, "S-SMR clients need a static map");
  } else {
    DSSMR_ASSERT_MSG(cfg_.oracle_group != kNoGroup, "dynamic strategies need an oracle");
  }
}

stats::SpanStore* ClientProxy::spans() {
  return metrics_ != nullptr ? &metrics_->spans() : nullptr;
}

void ClientProxy::record_phase(SpanPhase p, Time start, GroupId group, std::int64_t arg) {
  stats::SpanStore* sp = spans();
  if (sp == nullptr || !sp->enabled() || root_span_ == 0) return;
  sp->record({.trace_id = cmd_.trace_id,
              .parent = root_span_,
              .phase = p,
              .start = start,
              .end = network().engine().now(),
              .node = pid().value,
              .group = group,
              .arg = arg});
}

void ClientProxy::decompose_reply(const ReplyMsg& r) {
  stats::SpanStore* sp = spans();
  if (sp == nullptr || !sp->enabled() || root_span_ == 0) return;
  // Split [sent_at_, now] with the server's piggybacked timestamps. Clamping
  // keeps the cut points monotone inside the window, so the spans tile it
  // exactly even with odd timing: an all-zero ReplyTiming clamps every cut
  // up to sent_at_ (the whole window counts as reply), and timestamps from a
  // retransmitted delivery stay within the first-send window.
  const Time now = network().engine().now();
  const Time s = sent_at_;
  // Batched sends wait at the relay first; the flush time splits that wait
  // out of the amcast phase. Unbatched runs record no batch span at all.
  Time a = s;
  if (batched()) {
    const Time f = std::clamp(batch_flushed_at_, s, now);
    sp->record({.trace_id = cmd_.trace_id, .parent = root_span_, .phase = SpanPhase::kBatch,
                .start = s, .end = f, .node = pid().value, .group = r.from_group});
    a = f;
  }
  const Time d = std::clamp(r.timing.delivered_at, a, now);
  const Time es = std::clamp(r.timing.exec_start, d, now);
  const Time ee = std::clamp(r.timing.exec_end, es, now);
  const GroupId g = r.from_group;
  sp->record({.trace_id = cmd_.trace_id, .parent = root_span_, .phase = SpanPhase::kAmcast,
              .start = a, .end = d, .node = pid().value, .group = g});
  sp->record({.trace_id = cmd_.trace_id, .parent = root_span_, .phase = SpanPhase::kQueue,
              .start = d, .end = es, .node = pid().value, .group = g});
  sp->record({.trace_id = cmd_.trace_id, .parent = root_span_, .phase = SpanPhase::kExecute,
              .start = es, .end = ee, .node = pid().value, .group = g});
  sp->record({.trace_id = cmd_.trace_id, .parent = root_span_, .phase = SpanPhase::kReply,
              .start = ee, .end = now, .node = pid().value, .group = g});
}

void ClientProxy::trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg) {
  if (metrics_ != nullptr) {
    metrics_->trace().record(e, network().engine().now(), pid().value, id, arg);
  }
}

std::optional<GroupId> ClientProxy::cached_location(VarId v) const {
  auto it = cache_.find(v);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ClientProxy::cached_epoch(VarId v) const {
  auto it = cache_meta_.find(v);
  return it != cache_meta_.end() ? it->second.epoch : 0;
}

void ClientProxy::apply_repair(const std::vector<smr::RepairEntry>& repair) {
  for (const smr::RepairEntry& e : repair) {
    if (e.loc == kNoGroup) continue;
    VarMeta& meta = cache_meta_[e.var];
    // Strictly newer only: an equal-epoch entry adds nothing, and an older
    // one (late duplicate, or a forged-stale test message) must never roll
    // the cache back to a superseded owner.
    if (e.epoch <= meta.epoch) continue;
    meta.epoch = e.epoch;
    meta.prefetched = false;
    cache_[e.var] = e.loc;
    ctr_.repairs->inc();
    trace(TraceEvent::kCacheRepair, e.var.value, static_cast<std::int64_t>(e.loc.value));
  }
}

void ClientProxy::install_prefetch(const ProphecyMsg& p) {
  for (const smr::RepairEntry& e : p.prefetch) {
    if (e.loc == kNoGroup) continue;
    VarMeta& meta = cache_meta_[e.var];
    if (e.epoch < meta.epoch) continue;  // a repair already taught us better
    meta.epoch = std::max(meta.epoch, e.epoch);
    meta.prefetched = true;
    cache_[e.var] = e.loc;
    ctr_.prefetch_installed->inc();
  }
}

bool ClientProxy::try_repair_reroute() {
  GroupId p = kNoGroup;
  for (VarId v : cmd_.vars()) {
    auto it = cache_.find(v);
    if (it == cache_.end() || (p != kNoGroup && it->second != p)) return false;
    p = it->second;
  }
  if (p == kNoGroup) return false;
  ctr_.repair_reroutes->inc();
  trace(TraceEvent::kRepairReroute, cmd_.id.value, static_cast<std::int64_t>(p.value));
  stats::SpanStore* sp = spans();
  if (sp != nullptr && sp->enabled() && root_span_ != 0) {
    // Marker span (fold=false): the retry window it annotates was already
    // decomposed into amcast/queue/execute/reply by decompose_reply.
    const Time now = network().engine().now();
    sp->record({.trace_id = cmd_.trace_id, .parent = root_span_,
                .phase = SpanPhase::kRepair, .start = now, .end = now,
                .node = pid().value, .group = p, .arg = retries_},
               /*fold=*/false);
  }
  send_command({p}, Phase::kAwaitCommand);
  return true;
}

void ClientProxy::issue(Command cmd, DoneFn done) {
  DSSMR_ASSERT_MSG(phase_ == Phase::kIdle, "one outstanding command per client proxy");
  cmd_ = std::move(cmd);
  cmd_.id = fresh_id();
  // The command's stable logical id doubles as its trace id: it survives
  // retries and is copied onto derived moves, so all spans share one tree.
  cmd_.trace_id = cmd_.id.value;
  done_ = std::move(done);
  retries_ = 0;
  outstanding_consults_.clear();
  issued_at_ = network().engine().now();
  fallback_start_ = 0;
  stats::SpanStore* sp = spans();
  root_span_ = (sp != nullptr && sp->enabled()) ? sp->alloc_id() : 0;
  ctr_.ops->inc();
  start_attempt();
}

void ClientProxy::start_attempt() {
  if (cfg_.strategy == Strategy::kStaticSsmr) {
    // Static oracle: destinations are fixed and always correct.
    std::vector<GroupId> dests;
    for (VarId v : cmd_.vars()) {
      const GroupId p = cfg_.static_map->locate(v);
      if (std::find(dests.begin(), dests.end(), p) == dests.end()) dests.push_back(p);
    }
    DSSMR_ASSERT(!dests.empty());
    if (dests.size() > 1) ctr_.multi_partition->inc();
    send_command(std::move(dests), Phase::kAwaitCommand);
    return;
  }

  if (cfg_.use_cache && cmd_.type == CommandType::kAccess) {
    // Cache fast path: all variables cached on the same partition.
    GroupId p = kNoGroup;
    bool usable = true;
    for (VarId v : cmd_.vars()) {
      auto it = cache_.find(v);
      if (it == cache_.end() || (p != kNoGroup && it->second != p)) {
        usable = false;
        break;
      }
      p = it->second;
    }
    if (usable && p != kNoGroup) {
      ctr_.cache_hits->inc();
      if (cfg_.prefetch) {
        // A hit counts as a prefetch hit when any of its entries got there
        // via a prophecy prefetch; clear the flags so each prefetched entry
        // is credited at most once.
        bool from_prefetch = false;
        for (VarId v : cmd_.vars()) {
          auto mit = cache_meta_.find(v);
          if (mit != cache_meta_.end() && mit->second.prefetched) {
            from_prefetch = true;
            mit->second.prefetched = false;
          }
        }
        if (from_prefetch) {
          ctr_.prefetch_hits->inc();
          stats::SpanStore* sp = spans();
          if (sp != nullptr && sp->enabled() && root_span_ != 0) {
            const Time now = network().engine().now();
            sp->record({.trace_id = cmd_.trace_id, .parent = root_span_,
                        .phase = SpanPhase::kPrefetch, .start = now, .end = now,
                        .node = pid().value, .group = p},
                       /*fold=*/false);
          }
        }
      }
      send_command({p}, Phase::kAwaitCommand);
      return;
    }
  }
  do_consult();
}

void ClientProxy::do_consult() {
  ctr_.consults->inc();
  const Time now = network().engine().now();
  if (phase_ == Phase::kAwaitMove && move_start_ != 0) {
    // A move confirmation timed out and we re-consult from scratch: close the
    // still-open move window so the time spent waiting stays attributed.
    // (A failed-move reply closes the window itself before retrying.)
    record_phase(SpanPhase::kMove, move_start_, pending_dest_, /*arg=*/-1);
    move_start_ = 0;
  }
  if (phase_ != Phase::kConsult) {
    consult_start_ = now;  // retransmissions keep the window
    // New attempt: answers to the previous attempt's consults are superseded
    // (the cache was invalidated since) — purge their ids.
    outstanding_consults_.clear();
  }
  const MsgId id = fresh_id();
  trace(TraceEvent::kConsult, id.value, static_cast<std::int64_t>(cmd_.id.value));
  if (outstanding_consults_.size() >= kMaxOutstandingConsults) {
    outstanding_consults_.erase(outstanding_consults_.begin());  // drop the oldest
  }
  outstanding_consults_.push_back(id.value);
  phase_ = Phase::kConsult;
  amcast_with_id(id, {cfg_.oracle_group}, net::make_msg<ConsultMsg>(id, cmd_));
  // Consult retransmissions use entirely fresh ids: consults are read-only,
  // so re-asking is harmless and dodges the multicast dedup.
  resend_ = [this] { do_consult(); };
  arm_timeout();
}

void ClientProxy::on_prophecy(const ProphecyMsg& p) {
  if (phase_ != Phase::kConsult ||
      std::find(outstanding_consults_.begin(), outstanding_consults_.end(),
                p.consult_id.value) == outstanding_consults_.end()) {
    return;  // stale (a previous command's or an already-answered attempt's)
  }
  outstanding_consults_.clear();
  network().engine().cancel(timeout_);
  timeout_ = 0;
  trace(TraceEvent::kProphecy, p.consult_id.value,
        static_cast<std::int64_t>(p.locations.size()));
  record_phase(SpanPhase::kConsult, consult_start_, kNoGroup, retries_);

  if (p.code == ReplyCode::kNok) {
    finish(ReplyCode::kNok, nullptr);
    return;
  }

  if (cmd_.type == CommandType::kCreate) {
    send_command({p.dest, cfg_.oracle_group}, Phase::kAwaitCommand);
    return;
  }
  if (cmd_.type == CommandType::kDelete) {
    DSSMR_ASSERT(!p.locations.empty());
    send_command({p.locations[0].second, cfg_.oracle_group}, Phase::kAwaitCommand);
    return;
  }

  // Access: refresh cache, then route. The prophecy is the oracle's current
  // mapping, so it installs unconditionally; with cache repair on it also
  // carries per-variable epochs that advance the monotone sidecar.
  std::vector<GroupId> dests;
  for (std::size_t i = 0; i < p.locations.size(); ++i) {
    const auto& [v, loc] = p.locations[i];
    cache_[v] = loc;
    if (cfg_.cache_repair && i < p.epochs.size()) {
      VarMeta& meta = cache_meta_[v];
      meta.epoch = std::max(meta.epoch, p.epochs[i]);
      meta.prefetched = false;
    }
    if (std::find(dests.begin(), dests.end(), loc) == dests.end()) dests.push_back(loc);
  }
  if (cfg_.prefetch && !p.prefetch.empty()) install_prefetch(p);
  DSSMR_ASSERT(!dests.empty());

  if (dests.size() == 1) {
    send_command({dests[0]}, Phase::kAwaitCommand);
    return;
  }

  ctr_.multi_partition->inc();
  pending_dest_ = p.dest;
  if (p.oracle_moved) {
    // DynaStar: the oracle already multicast the move; wait for the
    // destination's confirmation, which carries the derived move id.
    awaited_reply_ = derive_move_id(p.consult_id);
    phase_ = Phase::kAwaitMove;
    move_start_ = network().engine().now();
    resend_ = [this] { do_consult(); };  // lost move? re-consult from scratch
    arm_timeout();
    return;
  }

  std::vector<GroupId> sources;
  for (GroupId g : dests) {
    if (g != p.dest) sources.push_back(g);
  }
  send_dssmr_move(p.dest, sources);
}

void ClientProxy::send_dssmr_move(GroupId dest, const std::vector<GroupId>& sources) {
  ctr_.moves->inc();
  if (moves_series_ != nullptr) moves_series_->add(network().engine().now());

  Command move;
  move.type = CommandType::kMove;
  move.id = fresh_id();
  move.trace_id = cmd_.trace_id;  // the move belongs to the command's trace
  trace(TraceEvent::kMoveIssued, move.id.value, static_cast<std::int64_t>(dest.value));
  move.write_set = cmd_.vars();
  move.move_sources = sources;
  move.move_dest = dest;
  // Through the coalescer relay the multicast sender is the relay, not us —
  // stamp the requester so partitions and the oracle answer this client.
  if (cfg_.move_coalescer != kNoProcess) move.requester = pid();

  std::vector<GroupId> dests = sources;
  dests.push_back(dest);
  dests.push_back(cfg_.oracle_group);

  awaited_reply_ = move.id;
  phase_ = Phase::kAwaitMove;
  move_start_ = network().engine().now();
  auto payload = net::make_msg<CommandMsg>(std::move(move));
  if (cfg_.move_coalescer != kNoProcess) {
    // Locality fast path: hand the move to the coalescer relay, which merges
    // overlapping moves into one bulk multicast (one Skeen exchange). The
    // destination partition still answers this client directly, and resends
    // go through the relay again — partitions dedup by the stable move id.
    network().send(pid(), cfg_.move_coalescer, payload);
    resend_ = [this, payload] {
      network().send(pid(), cfg_.move_coalescer, payload);
      arm_timeout();
    };
    arm_timeout();
    return;
  }
  amcast_with_id(fresh_id(), dests, payload);
  resend_ = [this, dests, payload] {
    // Same logical move (same cmd id inside), fresh multicast id.
    amcast_with_id(fresh_id(), dests, payload);
    arm_timeout();
  };
  arm_timeout();
}

void ClientProxy::send_command(std::vector<GroupId> dests, Phase next_phase) {
  awaited_reply_ = cmd_.id;
  phase_ = next_phase;
  sent_at_ = network().engine().now();  // first send; retransmissions keep the window
  batch_flushed_at_ = 0;
  auto payload = net::make_msg<CommandMsg>(cmd_);
  // The flush callback pins down when the first send actually left the relay;
  // it checks the window is still the one it was armed for, so a late flush
  // of a retried window never pollutes a newer one. Retransmissions pass no
  // callback — the window keeps its first flush time.
  const Time sent = sent_at_;
  amcast_with_id(fresh_id(), dests, payload, [this, sent](Time flushed_at) {
    if (sent_at_ == sent && batch_flushed_at_ == 0) batch_flushed_at_ = flushed_at;
  });
  resend_ = [this, dests, payload] {
    amcast_with_id(fresh_id(), dests, payload);
    arm_timeout();
  };
  arm_timeout();
}

void ClientProxy::do_fallback() {
  // Termination guarantee: execute as an S-SMR multi-partition command on
  // every partition — no locality check can fail there.
  ctr_.fallbacks->inc();
  trace(TraceEvent::kFallback, cmd_.id.value, retries_);
  fallback_start_ = network().engine().now();
  DSSMR_ASSERT(cmd_.type == CommandType::kAccess);
  send_command(cfg_.partition_universe != nullptr ? *cfg_.partition_universe
                                                  : cfg_.partitions,
               Phase::kAwaitFallback);
}

void ClientProxy::on_reply(ProcessId from, const net::MessagePtr& m) {
  (void)from;
  if (const auto* p = net::msg_cast<ProphecyMsg>(m)) {
    on_prophecy(*p);
    return;
  }
  const auto* r = net::msg_cast<ReplyMsg>(m);
  if (r == nullptr) return;
  if (phase_ == Phase::kIdle || r->cmd_id != awaited_reply_) return;  // stale/duplicate

  switch (phase_) {
    case Phase::kAwaitMove: {
      network().engine().cancel(timeout_);
      timeout_ = 0;
      record_phase(SpanPhase::kMove, move_start_, pending_dest_,
                   r->code == ReplyCode::kOk ? 0 : 1);
      move_start_ = 0;  // window closed: the retry's do_consult must not re-close it
      // Cache exactly what the destination reports as installed: the
      // destination gives up its claim on variables no source shipped
      // (a stale mapping), so caching all of cmd_.vars() would poison the
      // cache with locations the partition knows are wrong.
      for (VarId v : cmd_.vars()) cache_.erase(v);
      if (const auto* res = net::msg_cast<MoveResultMsg>(r->app_reply)) {
        for (VarId v : res->installed) cache_[v] = pending_dest_;
      } else if (r->code == ReplyCode::kOk) {
        for (VarId v : cmd_.vars()) cache_[v] = pending_dest_;
      }
      // The destination's repair entries carry the post-move epochs; applied
      // after the install loop so the epoch sidecar catches up with the cache.
      if (cfg_.cache_repair && !r->repair.empty()) apply_repair(r->repair);
      if (r->code == ReplyCode::kOk) {
        send_command({pending_dest_}, Phase::kAwaitCommand);
      } else {
        // Failed move (stale mapping at the destination): same path as a
        // command retry — without this the timeout replays the identical
        // move forever and the S-SMR fallback is never reached.
        ctr_.retries->inc();
        ++retries_;
        trace(TraceEvent::kRetry, cmd_.id.value, retries_);
        if (retries_ > cfg_.max_retries) {
          do_fallback();
        } else {
          do_consult();
        }
      }
      break;
    }

    case Phase::kAwaitCommand:
      // kRetired is kRetry's elastic sibling: the partition drained and left,
      // so the answer is the same — invalidate and re-route (the re-consult
      // sees the post-drain mapping).
      if (r->code == ReplyCode::kRetry || r->code == ReplyCode::kRetired) {
        network().engine().cancel(timeout_);
        timeout_ = 0;
        decompose_reply(*r);
        ctr_.retries->inc();
        for (VarId v : cmd_.vars()) cache_.erase(v);
        ++retries_;
        trace(TraceEvent::kRetry, cmd_.id.value, retries_);
        // Piggybacked repair: install the reply's ⟨var, partition, epoch⟩
        // entries (monotone) and, if they pin every variable to one
        // partition, go straight there — the common stale-cache retry then
        // costs one extra hop instead of a full oracle consult.
        if (cfg_.cache_repair && !r->repair.empty()) apply_repair(r->repair);
        if (retries_ > cfg_.max_retries) {
          do_fallback();
        } else if (cfg_.cache_repair && try_repair_reroute()) {
          // re-sent directly from the repaired cache
        } else {
          do_consult();
        }
      } else {
        if (cfg_.cache_repair && !r->repair.empty()) apply_repair(r->repair);
        decompose_reply(*r);
        finish(r->code, r->app_reply);
      }
      break;

    case Phase::kAwaitFallback:
      if (r->code != ReplyCode::kRetry && r->code != ReplyCode::kRetired) {
        decompose_reply(*r);
        finish(r->code, r->app_reply);
      }
      break;

    case Phase::kIdle:
    case Phase::kConsult:
      break;
  }
}

void ClientProxy::finish(ReplyCode code, const net::MessagePtr& app_reply) {
  network().engine().cancel(timeout_);
  timeout_ = 0;
  phase_ = Phase::kIdle;
  resend_ = nullptr;

  const Time now = network().engine().now();
  (code == ReplyCode::kOk ? ctr_.ok : ctr_.nok)->inc();
  if (metrics_ != nullptr) {
    latency_hist_->record(now - issued_at_);
    completions_series_->add(now);
    // Windowed latency shares this exact site, so the recorder's merged
    // windows reproduce client.latency_us (one-branch no-op when disabled).
    metrics_->recorder().record_latency(now, now - issued_at_);
  }

  stats::SpanStore* sp = spans();
  if (sp != nullptr && sp->enabled() && root_span_ != 0) {
    if (fallback_start_ != 0) {
      // Server-side style view of the S-SMR fallback window; the window's
      // time is already folded as amcast/queue/execute/reply spans.
      sp->record({.trace_id = cmd_.trace_id,
                  .parent = root_span_,
                  .phase = SpanPhase::kFallback,
                  .start = fallback_start_,
                  .end = now,
                  .node = pid().value,
                  .arg = retries_},
                 /*fold=*/false);
    }
    sp->record({.trace_id = cmd_.trace_id,
                .id = root_span_,
                .phase = SpanPhase::kCommand,
                .start = issued_at_,
                .end = now,
                .node = pid().value,
                .arg = code == ReplyCode::kOk ? 0 : 1});
    root_span_ = 0;
  }

  if (cfg_.send_hints && code == ReplyCode::kOk && !cmd_.hint_edges.empty()) {
    amcast({cfg_.oracle_group}, net::make_msg<HintMsg>(cmd_.hint_edges));
    ctr_.hints->inc();
  }

  // Reset before invoking the callback: the application typically issues the
  // next command from inside it (closed loop).
  DoneFn done = std::move(done_);
  done_ = nullptr;
  if (done) done(code, app_reply);
}

void ClientProxy::arm_timeout() {
  network().engine().cancel(timeout_);
  timeout_ = network().engine().schedule(cfg_.op_timeout, [this] {
    timeout_ = 0;
    if (phase_ == Phase::kIdle || !resend_) return;
    ctr_.timeouts->inc();
    resend_();
  });
}

}  // namespace dssmr::core
