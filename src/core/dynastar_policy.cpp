#include "core/dynastar_policy.h"

#include <algorithm>

#include "common/assert.h"

namespace dssmr::core {

partition::NodeId DynaStarPolicy::node_of(VarId v) {
  auto it = var_to_node_.find(v);
  if (it != var_to_node_.end()) return it->second;
  const auto id = static_cast<partition::NodeId>(node_to_var_.size());
  var_to_node_.emplace(v, id);
  node_to_var_.push_back(v);
  graph_.touch(id);
  return id;
}

GroupId DynaStarPolicy::ideal_of(VarId v, const Mapping& map) const {
  if (ideal_.empty()) return kNoGroup;
  auto it = var_to_node_.find(v);
  if (it == var_to_node_.end() || it->second >= ideal_.size()) return kNoGroup;
  const std::uint32_t p = ideal_[it->second];
  if (p >= map.partition_count()) return kNoGroup;
  return map.partitions()[p];
}

GroupId DynaStarPolicy::place_new(VarId v, const Mapping& map) {
  const GroupId ideal = ideal_of(v, map);
  return ideal != kNoGroup ? ideal : map.least_loaded();
}

GroupId DynaStarPolicy::choose_destination(const std::vector<VarId>& vars,
                                           const Mapping& map) {
  // Candidates: each variable's ideal partition and each current partition.
  // Pick the candidate minimizing the number of variables that would move;
  // prefer ideal candidates on ties (they reduce future moves), then lowest
  // partition id (determinism).
  std::vector<GroupId> candidates;
  auto consider = [&candidates](GroupId p) {
    if (p != kNoGroup && std::find(candidates.begin(), candidates.end(), p) == candidates.end()) {
      candidates.push_back(p);
    }
  };
  for (VarId v : vars) consider(ideal_of(v, map));
  const std::size_t ideal_candidates = candidates.size();
  for (VarId v : vars) consider(map.locate(v));
  DSSMR_ASSERT(!candidates.empty());

  // Keep all candidates achieving the minimum move count; prefer ideal
  // candidates among them; break remaining ties pseudo-randomly from the
  // variable set (a fixed tie-break would funnel near-ties to one partition).
  std::size_t best_moves = vars.size() + 1;
  std::vector<std::size_t> minimal;
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    std::size_t moves = 0;
    for (VarId v : vars) {
      if (map.locate(v) != candidates[ci]) ++moves;
    }
    if (moves < best_moves) {
      best_moves = moves;
      minimal.clear();
    }
    if (moves == best_moves) minimal.push_back(ci);
  }
  bool any_ideal = false;
  for (std::size_t ci : minimal) any_ideal = any_ideal || ci < ideal_candidates;
  if (any_ideal) {
    std::erase_if(minimal, [&](std::size_t ci) { return ci >= ideal_candidates; });
  }
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (VarId v : vars) h = (h ^ v.value) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return candidates[minimal[h % minimal.size()]];
}

void DynaStarPolicy::note_neighbour(VarId u, VarId v) {
  NeighbourRing& ring = neighbours_[u];
  for (std::size_t i = 0; i < ring.count; ++i) {
    if (ring.recent[i] == v) return;  // already tracked; keep the ring stable
  }
  ring.recent[ring.next] = v;
  ring.next = static_cast<std::uint8_t>((ring.next + 1) % ring.recent.size());
  ring.count = static_cast<std::uint8_t>(
      std::min<std::size_t>(ring.count + 1, ring.recent.size()));
}

void DynaStarPolicy::prefetch_candidates(const std::vector<VarId>& vars, std::size_t k,
                                         std::vector<VarId>& out) {
  const auto wanted = [&](VarId c) {
    return std::find(vars.begin(), vars.end(), c) == vars.end() &&
           std::find(out.begin(), out.end(), c) == out.end();
  };
  for (std::size_t i = 0; i < vars.size() && out.size() < k; ++i) {
    auto it = neighbours_.find(vars[i]);
    if (it == neighbours_.end()) continue;
    const NeighbourRing& ring = it->second;
    for (std::size_t s = 0; s < ring.count && out.size() < k; ++s) {
      if (wanted(ring.recent[s])) out.push_back(ring.recent[s]);
    }
  }
}

void DynaStarPolicy::on_hint(const std::vector<std::pair<VarId, VarId>>& edges) {
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    graph_.add_edge(node_of(u), node_of(v));
    note_neighbour(u, v);
    note_neighbour(v, u);
    ++hints_since_repartition_;
  }
  if (hints_since_repartition_ >= cfg_.repartition_every_hints) {
    force_repartition();
  }
}

void DynaStarPolicy::on_create(VarId v) { node_of(v); }

void DynaStarPolicy::on_delete(VarId v) {
  // Keep the vertex (its history may still be useful); it simply stops
  // receiving hints. Deleted variables are never asked about again.
  (void)v;
}

void DynaStarPolicy::preload_edge(VarId u, VarId v, partition::Weight w) {
  graph_.add_edge(node_of(u), node_of(v), w);
  note_neighbour(u, v);
  note_neighbour(v, u);
}

void DynaStarPolicy::force_repartition() {
  hints_since_repartition_ = 0;
  partition::Csr csr = graph_.build();
  if (csr.vertex_count() == 0) return;
  ideal_ = partition::partition_graph(csr, cfg_.partitioner).part;
  ++repartitions_;
}

}  // namespace dssmr::core
