#include "core/move_coalescer.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "multicast/messages.h"

namespace dssmr::core {

using smr::BulkMoveMsg;
using smr::Command;
using smr::CommandMsg;
using smr::CommandType;

namespace {

/// thread_local: simulations on different sweep threads may share it.
stats::Counter& dummy_counter() {
  thread_local stats::Counter c;
  return c;
}

}  // namespace

void MoveCoalescer::init_coalescer(net::Network& network,
                                   const multicast::Directory& directory,
                                   MoveCoalescerConfig config, stats::Metrics* metrics) {
  init_client_node(network, directory);
  config_ = config;
  metrics_ = metrics;
  DSSMR_ASSERT(config_.oracle_group != kNoGroup);
  DSSMR_ASSERT(config_.coalesce_moves > 0);
  auto handle = [this](const char* name) {
    return metrics_ != nullptr ? &metrics_->counter_handle(name) : &dummy_counter();
  };
  ctr_ = {handle("locality.coalesced_moves"), handle("locality.bulk_flushes")};
}

std::vector<GroupId> MoveCoalescer::dests_of(const Command& move) const {
  std::vector<GroupId> dests = move.move_sources;
  dests.push_back(move.move_dest);
  dests.push_back(config_.oracle_group);
  multicast::normalize_dests(dests);
  return dests;
}

void MoveCoalescer::on_reply(ProcessId from, const net::MessagePtr& m) {
  (void)from;
  const auto* cm = net::msg_cast<CommandMsg>(m);
  if (cm == nullptr || cm->cmd.type != CommandType::kMove) return;
  // A client retransmission of a still-buffered move adds nothing (the same
  // logical move would be multicast twice in one bulk); already-flushed
  // duplicates are re-sent and dedup at the partitions by their stable id.
  for (const Command& p : pending_) {
    if (p.id == cm->cmd.id) return;
  }
  pending_.push_back(cm->cmd);
  if (pending_.size() >= config_.coalesce_moves) {
    flush();
    return;
  }
  if (!flush_armed_) {
    flush_armed_ = true;
    network().engine().schedule(config_.coalesce_delay, [this] {
      flush_armed_ = false;
      flush();
    });
  }
}

void MoveCoalescer::flush() {
  if (pending_.empty()) return;
  std::vector<Command> pending = std::move(pending_);
  pending_.clear();
  std::vector<std::vector<GroupId>> dest_sets;
  dest_sets.reserve(pending.size());
  for (const Command& p : pending) dest_sets.push_back(dests_of(p));
  const std::vector<std::size_t> cluster = multicast::cluster_by_dest_overlap(dest_sets);
  const std::size_t clusters =
      cluster.empty() ? 0 : 1 + *std::max_element(cluster.begin(), cluster.end());
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<Command> moves;
    std::vector<GroupId> union_dests;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (cluster[i] != c) continue;
      moves.push_back(std::move(pending[i]));
      union_dests.insert(union_dests.end(), dest_sets[i].begin(), dest_sets[i].end());
    }
    multicast::normalize_dests(union_dests);
    if (moves.size() == 1) {
      // A lone move ships exactly like the uncoalesced path.
      amcast(std::move(union_dests), net::make_msg<CommandMsg>(std::move(moves.front())));
      continue;
    }
    ctr_.coalesced_moves->inc(moves.size());
    ctr_.bulk_flushes->inc();
    if (metrics_ != nullptr) {
      metrics_->histogram("locality.bulk_entries")
          .record(static_cast<std::int64_t>(moves.size()));
    }
    amcast(std::move(union_dests), net::make_msg<BulkMoveMsg>(std::move(moves)));
  }
}

}  // namespace dssmr::core
