// DynaStar-style oracle policy (extension; see DESIGN.md).
//
// The supplied paper draft's follow-up design: the oracle aggregates workload
// hints into a graph (variables = vertices, co-accesses = weighted edges),
// periodically recomputes an "ideal" partitioning with the multilevel graph
// partitioner, and resolves collocation destinations so as to minimize the
// number of variables that must move given the ideal partitioning and the
// variables' current locations.
//
// Determinism: repartitioning triggers on a fixed hint-count threshold and
// the partitioner itself is deterministic, so all oracle replicas hold
// identical state — exactly the requirement the draft calls out.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "core/mapping.h"
#include "partition/graph.h"
#include "partition/partitioner.h"

namespace dssmr::core {

class DynaStarPolicy : public OraclePolicy {
 public:
  struct Config {
    /// Recompute the ideal partitioning after this many hint edges.
    std::uint64_t repartition_every_hints = 2000;
    partition::PartitionerConfig partitioner;
  };

  explicit DynaStarPolicy(Config config) : cfg_(config) {}

  GroupId place_new(VarId v, const Mapping& map) override;
  GroupId choose_destination(const std::vector<VarId>& vars, const Mapping& map) override;
  void on_hint(const std::vector<std::pair<VarId, VarId>>& edges) override;
  void on_create(VarId v) override;
  void on_delete(VarId v) override;
  std::uint64_t repartition_count() const override { return repartitions_; }

  /// Prophecy prefetch from the workload graph: hint edges double as the
  /// co-access signal, so the base class's recent-co-access table is
  /// redundant here. The graph builder keeps no adjacency lists (it
  /// aggregates edge weights), so a small bounded ring of recent neighbours
  /// per variable is maintained alongside it.
  void note_co_access(const std::vector<VarId>& vars) override { (void)vars; }
  void prefetch_candidates(const std::vector<VarId>& vars, std::size_t k,
                           std::vector<VarId>& out) override;

  /// Seeds the workload graph (e.g. with a known social graph) before the
  /// run; optionally computes the initial ideal partitioning immediately.
  void preload_edge(VarId u, VarId v, partition::Weight w = 1);
  void force_repartition();

  std::size_t graph_vertex_count() const { return node_to_var_.size(); }
  std::size_t graph_edge_count() const { return graph_.edge_count(); }
  std::size_t workload_graph_vertices() const override { return graph_vertex_count(); }
  std::size_t workload_graph_edges() const override { return graph_edge_count(); }

 private:
  partition::NodeId node_of(VarId v);
  /// Ideal partition of `v` (kNoGroup when unknown / not yet partitioned).
  GroupId ideal_of(VarId v, const Mapping& map) const;
  void note_neighbour(VarId u, VarId v);

  /// Bounded ring of a variable's most recent workload-graph neighbours,
  /// feeding prefetch_candidates.
  struct NeighbourRing {
    std::array<VarId, 8> recent{};
    std::uint8_t count = 0;
    std::uint8_t next = 0;
  };

  Config cfg_;
  partition::GraphBuilder graph_;
  std::unordered_map<VarId, partition::NodeId> var_to_node_;
  std::vector<VarId> node_to_var_;
  std::vector<std::uint32_t> ideal_;  // per node; empty until first repartition
  std::uint64_t hints_since_repartition_ = 0;
  std::uint64_t repartitions_ = 0;
  common::FlatMap<VarId, NeighbourRing> neighbours_;
};

}  // namespace dssmr::core
