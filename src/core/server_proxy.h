// Partition server proxy (Algorithm "DS-SMR Server Proxy" of the paper).
//
// One PartitionServer instance is one replica of one state partition. It
// owns a slice of the application state and processes atomically delivered
// commands in order:
//
//  * access, single destination (the DS-SMR fast path): delivered commands
//    are checked against the ownership set — a command whose variables all
//    live here executes locally like classic SMR; otherwise the client gets
//    `retry` (its oracle information was stale).
//  * access, multiple destinations (the S-SMR baseline and DS-SMR's
//    fall-back): partitions exchange variables + signals (VarShipMsg) and
//    only execute once every involved partition has checked in — the
//    execution-atomic protocol of S-SMR.
//  * move: sources relinquish ownership at delivery and ship values when the
//    move reaches the head of their execution queue; the destination waits
//    for one shipment per source, installs the values, and answers the
//    requester.
//  * create/delete: apply locally, then signal the oracle, which sends the
//    client its reply only after the partition has checked in.
//
// Replies are sent by the replica that currently leads the partition's Paxos
// group; duplicated command deliveries (client retries) are answered from a
// bounded reply cache keyed by the logical command id.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bounded.h"
#include "common/flat_map.h"
#include "common/small_set.h"
#include "common/types.h"
#include "multicast/atomic.h"
#include "smr/app.h"
#include "smr/command.h"
#include "smr/execution.h"
#include "stats/metrics.h"

namespace dssmr::core {

struct PartitionServerConfig {
  /// CPU cost of shipping one variable during a move.
  Duration move_service_per_var = usec(2);
  /// CPU cost of installing a created/deleted variable.
  Duration create_delete_service = usec(5);
  /// Oracle group (destination of create/delete signals).
  GroupId oracle_group = kNoGroup;
  /// Capacity of the bounded reply cache (`completed_`). Tests shrink it to
  /// force eviction and exercise the per-client dedup fallback.
  std::size_t reply_cache_capacity = 1 << 15;
  /// Locality fast path: replies piggyback ⟨var, partition, epoch⟩ repair
  /// entries for the command's variables (including forwarding pointers for
  /// variables this partition moved away), so stale client caches heal
  /// without re-consulting the oracle. Off by default — off keeps replies
  /// byte-identical to the pre-locality wire format.
  bool cache_repair = false;
};

class PartitionServer : public multicast::GroupNode {
 public:
  void init_partition(net::Network& network, const multicast::Directory& directory,
                      GroupId gid, multicast::GroupNodeConfig node_config,
                      const smr::AppFactory& app_factory, PartitionServerConfig config,
                      stats::Metrics* metrics, std::uint64_t seed);

  /// Pre-loads a variable (initial state distribution, before start()).
  void preload(VarId v, std::unique_ptr<smr::VarValue> value);

  bool owns(VarId v) const { return owned_.contains(v); }
  std::size_t owned_count() const { return owned_.size(); }
  const std::unordered_set<VarId>& owned_vars() const { return owned_; }
  const smr::VariableStore& store() const { return store_; }
  std::uint64_t executed_count() const { return exec_->executed_count(); }
  Duration busy_time() const { return exec_->busy_time(); }

  /// Telemetry gauges (see harness/deployment.cpp).
  std::size_t queue_depth() const { return exec_->queue_depth(); }
  std::size_t reply_cache_size() const { return completed_.size(); }

  /// Elastic retirement: the partition has drained and left the deployment.
  /// It keeps participating in multicast (commands already addressed to it
  /// must still deliver, and S-SMR peers must not stall waiting for its
  /// shipments) but answers kRetired instead of kRetry, steering clients back
  /// to the oracle. Straggler moves that land variables here afterwards are
  /// still accepted — rejecting them would drop the shipped values — and the
  /// Scaler's drain watchdog re-sweeps them off.
  void set_retired() { retired_ = true; }
  bool retired() const { return retired_; }

 protected:
  void on_amdeliver(const multicast::AmcastMessage& m) override;
  void on_rmdeliver(ProcessId origin, const net::MessagePtr& payload) override;

 private:
  /// Inter-partition inputs accumulated for one command. `ships_from` holds
  /// at most one group per involved partition — a sorted small-vector beats a
  /// node-based set on the ready-check hot path.
  struct Coord {
    common::SmallSet<GroupId> ships_from;
    std::unordered_map<VarId, std::shared_ptr<const smr::VarValue>> shipped;
  };

  struct CachedReply {
    smr::ReplyCode code;
    net::MessagePtr app_reply;
    /// Timestamps of the original execution; retransmitted replies carry them
    /// unchanged (the client clamps stale timestamps into its own window).
    smr::ReplyTiming timing;
  };

  /// Shared prologue (reply-cache resend, inflight dedup, access watermark)
  /// plus the per-type dispatch; called once per CommandMsg and once per
  /// relevant sub-move of a BulkMoveMsg.
  void deliver_command(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void deliver_access_single(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void deliver_access_multi(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void deliver_move(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void deliver_create(const multicast::AmcastMessage& m, const smr::Command& cmd);
  void deliver_delete(const multicast::AmcastMessage& m, const smr::Command& cmd);

  /// `access_final` marks the settled outcome of a kAccess command; it also
  /// advances the per-client dedup watermark (see `access_final_`).
  void reply_to(ProcessId client, MsgId cmd_id, smr::ReplyCode code,
                net::MessagePtr app_reply, bool cache, smr::ReplyTiming timing = {},
                bool access_final = false, std::vector<smr::RepairEntry> repair = {});
  /// Piggybacked repair entries for `cmd`'s variables ({} when cache repair
  /// is off). Maintained identically on every replica, so whichever replica
  /// currently leads answers with the same facts.
  std::vector<smr::RepairEntry> make_repair(const std::vector<VarId>& vars) const;
  Coord& coord(MsgId cmd_id);
  void bump(stats::Counter* c);
  /// Leader-gated windowed heat (stats::Recorder); recorded at the exact
  /// same sites as the single/multi counters so per-bucket sums tile them.
  void heat_command(bool multi);
  void heat_move();
  /// Dense heat-table index of this partition (gid with the oracle's slot
  /// compacted away; see heat_command).
  std::size_t heat_index() const;
  void trace(stats::TraceEvent e, std::uint64_t id, std::int64_t arg = 0);
  /// Leader-gated server-view span (fold=false: the client attributes this
  /// time itself from the reply's timestamps).
  void span(stats::SpanPhase p, std::uint64_t trace_id, Time start, Time end,
            std::int64_t arg = 0);

  smr::VariableStore store_;
  std::unordered_set<VarId> owned_;
  std::unique_ptr<smr::AppStateMachine> app_;
  std::unique_ptr<smr::ExecutionEngine> exec_;
  std::unordered_map<MsgId, Coord> coord_;
  /// Logical command ids currently queued or executing. A client that
  /// retransmits re-multicasts under a fresh multicast id, so the amcast
  /// layer cannot dedup; without this set a duplicate delivery would enqueue
  /// a second task (double execution for accesses, and a task that waits
  /// forever for already-consumed shipments for moves).
  std::unordered_set<MsgId> inflight_;
  BoundedMap<MsgId, CachedReply> completed_{1 << 15};
  /// Per-client at-most-once backstop for access commands. The reply cache is
  /// bounded, so under heavy load a slow (not lost) retransmission can arrive
  /// after its entry was evicted and execute a second time. Command ids are
  /// monotone per issuing proxy and clients are closed-loop (a client issues
  /// access N+1 only after access N's final reply), so per client it suffices
  /// to remember the highest finally-answered access id: a delivered access
  /// at or below it is a stale retransmission — answer the stored reply on an
  /// exact id match, drop silently otherwise. Move/create/delete ids do not
  /// participate: a client's move legitimately settles before the (older-id)
  /// command it unblocks.
  struct AccessFinal {
    std::uint64_t cmd_id = 0;
    CachedReply reply;
  };
  std::unordered_map<std::uint32_t, AccessFinal> access_final_;
  /// Cache-repair state (only maintained when config_.cache_repair): the
  /// monotone epoch of each variable this partition holds (or held), and a
  /// bounded forwarding table for variables moved away — the repair payload
  /// that lets a retried client go straight to the new owner.
  common::FlatMap<VarId, std::uint64_t> var_epochs_;
  struct Forward {
    GroupId dest = kNoGroup;
    std::uint64_t epoch = 0;
  };
  BoundedMap<VarId, Forward> forwards_{1 << 15};
  PartitionServerConfig config_;
  stats::Metrics* metrics_ = nullptr;
  /// See set_retired().
  bool retired_ = false;

  /// Interned counter handles (see ClientProxy::Counters).
  struct Counters {
    stats::Counter* retries_issued;
    stats::Counter* single_partition;
    stats::Counter* multi_partition;
    stats::Counter* moves_source;
    stats::Counter* moves_dest;
    stats::Counter* moves_failed;
    stats::Counter* creates;
    stats::Counter* deletes;
  } ctr_{};
};

}  // namespace dssmr::core
