// Holme-Kim power-law graph generator with tunable clustering.
//
// The paper generates its social networks with this model: growing
// preferential attachment where each of the m attachments of a new vertex
// is, with probability p, a "triad formation" step (connect to a neighbour
// of the previously attached vertex), which produces the high clustering
// coefficients of real social graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "partition/graph.h"

namespace dssmr::workload {

struct HolmeKimConfig {
  std::uint32_t n = 10'000;  // vertices
  std::uint32_t m = 3;       // edges per new vertex
  double p_triad = 0.8;      // triad-formation probability
};

/// Returns the edge list (u < n, v < n, u != v, no duplicates).
std::vector<std::pair<std::uint32_t, std::uint32_t>> holme_kim(const HolmeKimConfig& cfg,
                                                               Rng& rng);

/// Convenience: build the CSR directly.
partition::Csr holme_kim_csr(const HolmeKimConfig& cfg, Rng& rng);

/// Global clustering coefficient estimate by vertex sampling (checks the
/// generator produces the clustered structure the model promises).
double clustering_coefficient(const partition::Csr& g, std::size_t sample, Rng& rng);

}  // namespace dssmr::workload
