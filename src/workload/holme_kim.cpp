#include "workload/holme_kim.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace dssmr::workload {

std::vector<std::pair<std::uint32_t, std::uint32_t>> holme_kim(const HolmeKimConfig& cfg,
                                                               Rng& rng) {
  DSSMR_ASSERT(cfg.m >= 1 && cfg.n > cfg.m);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(cfg.n) * cfg.m);

  // `targets` holds one entry per edge endpoint: sampling it uniformly is
  // preferential attachment.
  std::vector<std::uint32_t> endpoints;
  std::vector<std::vector<std::uint32_t>> adj(cfg.n);

  auto connected = [&](std::uint32_t u, std::uint32_t v) {
    const auto& a = adj[u].size() <= adj[v].size() ? adj[u] : adj[v];
    const std::uint32_t other = adj[u].size() <= adj[v].size() ? v : u;
    return std::find(a.begin(), a.end(), other) != a.end();
  };
  auto link = [&](std::uint32_t u, std::uint32_t v) {
    edges.emplace_back(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    endpoints.push_back(u);
    endpoints.push_back(v);
  };

  // Seed: a path over the first m+1 vertices.
  for (std::uint32_t v = 0; v < cfg.m; ++v) link(v, v + 1);

  for (std::uint32_t v = cfg.m + 1; v < cfg.n; ++v) {
    std::uint32_t last_target = cfg.n;  // sentinel
    std::uint32_t added = 0;
    std::uint32_t attempts = 0;
    while (added < cfg.m && attempts < cfg.m * 20) {
      ++attempts;
      std::uint32_t target;
      if (last_target != cfg.n && rng.chance(cfg.p_triad) && !adj[last_target].empty()) {
        // Triad formation: a random neighbour of the previous target.
        target = adj[last_target][rng.below(adj[last_target].size())];
      } else {
        // Preferential attachment.
        target = endpoints[rng.below(endpoints.size())];
      }
      if (target == v || connected(v, target)) continue;
      link(v, target);
      last_target = target;
      ++added;
    }
  }
  return edges;
}

partition::Csr holme_kim_csr(const HolmeKimConfig& cfg, Rng& rng) {
  partition::GraphBuilder b;
  b.touch(cfg.n - 1);
  for (auto [u, v] : holme_kim(cfg, rng)) b.add_edge(u, v);
  return b.build();
}

double clustering_coefficient(const partition::Csr& g, std::size_t sample, Rng& rng) {
  if (g.vertex_count() == 0) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < sample; ++s) {
    const auto u = static_cast<partition::NodeId>(rng.below(g.vertex_count()));
    const std::uint64_t deg = g.xadj[u + 1] - g.xadj[u];
    if (deg < 2) continue;
    std::unordered_set<partition::NodeId> nbrs;
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) nbrs.insert(g.adj[i]);
    std::uint64_t closed = 0;
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      const partition::NodeId w = g.adj[i];
      for (std::uint64_t j = g.xadj[w]; j < g.xadj[w + 1]; ++j) {
        if (g.adj[j] != u && nbrs.contains(g.adj[j])) ++closed;
      }
    }
    sum += static_cast<double>(closed) / static_cast<double>(deg * (deg - 1));
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace dssmr::workload
