// Chirper workload: ground-truth social graph + command mix generator.
//
// The driver plays the role of the paper's client population: it knows the
// social graph (clients know whom they follow), picks users, and builds the
// read/write sets of each command — post fan-out uses the poster's follower
// list, exactly the knowledge a Chirper client has about its own account.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "partition/graph.h"
#include "smr/command.h"
#include "workload/holme_kim.h"
#include "workload/zipf.h"

namespace dssmr::workload {

/// Undirected "mutual follow" social graph, kept in sync with the commands
/// the workload issues.
class SocialGraph {
 public:
  explicit SocialGraph(std::size_t users);

  /// Generates a Holme-Kim graph over `cfg.n` users.
  static SocialGraph generate(const HolmeKimConfig& cfg, Rng& rng);

  /// Generates a community-structured graph: `communities` independent
  /// Holme-Kim graphs of `per_community.n` users each, plus uniformly random
  /// inter-community edges so that the fraction of cross edges is
  /// `cross_fraction` (the paper's controlled "x% edge cut" workloads;
  /// cross_fraction 0 yields a perfectly partitionable state).
  static SocialGraph generate_communities(const HolmeKimConfig& per_community,
                                          std::size_t communities, double cross_fraction,
                                          Rng& rng);

  /// Community of a user for graphs built by generate_communities.
  static std::size_t community_of(VarId u, std::size_t per_community_size) {
    return static_cast<std::size_t>(u.value) / per_community_size;
  }

  std::size_t user_count() const { return adj_.size(); }
  const std::vector<VarId>& neighbors(VarId u) const;
  bool connected(VarId u, VarId v) const;
  void add_edge(VarId u, VarId v);
  void remove_edge(VarId u, VarId v);
  std::size_t edge_count() const { return edge_count_; }

  partition::Csr to_csr() const;

 private:
  std::vector<std::vector<VarId>> adj_;
  std::size_t edge_count_ = 0;
};

/// Command mix, as fractions summing to 1.
struct ChirperMix {
  double timeline = 0;
  double post = 0;
  double follow = 0;
  double unfollow = 0;
};

namespace mixes {
/// Read-dominated mix (the paper cites TAO's read dominance).
inline constexpr ChirperMix kTimelineHeavy{0.85, 0.075, 0.0375, 0.0375};
inline constexpr ChirperMix kTimelineOnly{1.0, 0.0, 0.0, 0.0};
/// The paper's scalability experiments focus on posts (the multi-partition
/// command).
inline constexpr ChirperMix kPostOnly{0.0, 1.0, 0.0, 0.0};
inline constexpr ChirperMix kFollowChurn{0.0, 0.0, 0.5, 0.5};
}  // namespace mixes

struct ChirperWorkloadConfig {
  ChirperMix mix = mixes::kPostOnly;
  /// Zipf skew over users (0 = uniform).
  double zipf_theta = 0.0;
  /// Attach workload-graph hints to posts too (so graph-driven oracles learn
  /// from post-only workloads, as partitions would by reporting accesses).
  bool hint_posts = false;
  /// Probability that a follow targets a friend-of-friend (vs. uniform).
  double follow_fof = 0.8;
};

class ChirperWorkload {
 public:
  ChirperWorkload(SocialGraph& graph, ChirperWorkloadConfig config, std::uint64_t seed);

  /// Builds the next command. Follow/unfollow update the ground truth graph
  /// immediately (the issuing client knows its own edges).
  smr::Command next();

 private:
  VarId pick_user();
  smr::Command next_post();
  smr::Command next_follow();
  smr::Command next_unfollow();

  SocialGraph& graph_;
  ChirperWorkloadConfig cfg_;
  Rng rng_;
  Zipf zipf_;
};

}  // namespace dssmr::workload
