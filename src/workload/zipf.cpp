#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace dssmr::workload {

Zipf::Zipf(std::size_t n, double theta) {
  DSSMR_ASSERT(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;

  // Vose's stable alias-table construction: partition buckets into those
  // under / over the uniform weight 1/n, then pair each small bucket with
  // mass from a large one.
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);  // probability * n
  double prev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = (cdf_[i] - prev) * static_cast<double>(n);
    prev = cdf_[i];
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly-1 buckets up to rounding error.
  for (std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform() * static_cast<double>(prob_.size());
  std::size_t k = static_cast<std::size_t>(u);
  if (k >= prob_.size()) k = prob_.size() - 1;  // u == n after rounding
  return (u - static_cast<double>(k)) < prob_[k] ? k : alias_[k];
}

std::size_t Zipf::sample_cdf(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dssmr::workload
