#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace dssmr::workload {

Zipf::Zipf(std::size_t n, double theta) {
  DSSMR_ASSERT(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dssmr::workload
