#include "workload/chirper_workload.h"

#include <algorithm>

#include "chirper/chirper.h"
#include "common/assert.h"

namespace dssmr::workload {

SocialGraph::SocialGraph(std::size_t users) : adj_(users) {}

SocialGraph SocialGraph::generate(const HolmeKimConfig& cfg, Rng& rng) {
  SocialGraph g{cfg.n};
  for (auto [u, v] : holme_kim(cfg, rng)) g.add_edge(VarId{u}, VarId{v});
  return g;
}

SocialGraph SocialGraph::generate_communities(const HolmeKimConfig& per_community,
                                              std::size_t communities,
                                              double cross_fraction, Rng& rng) {
  DSSMR_ASSERT(communities >= 1);
  DSSMR_ASSERT(cross_fraction >= 0.0 && cross_fraction < 1.0);
  const std::size_t n = per_community.n;
  SocialGraph g{n * communities};
  for (std::size_t c = 0; c < communities; ++c) {
    const auto base = static_cast<std::uint64_t>(c * n);
    for (auto [u, v] : holme_kim(per_community, rng)) {
      g.add_edge(VarId{base + u}, VarId{base + v});
    }
  }
  if (communities > 1 && cross_fraction > 0.0) {
    const double intra = static_cast<double>(g.edge_count());
    const auto cross_target =
        static_cast<std::size_t>(cross_fraction * intra / (1.0 - cross_fraction));
    std::size_t added = 0;
    while (added < cross_target) {
      const std::uint64_t u = rng.below(g.user_count());
      const std::uint64_t v = rng.below(g.user_count());
      if (u == v || u / n == v / n || g.connected(VarId{u}, VarId{v})) continue;
      g.add_edge(VarId{u}, VarId{v});
      ++added;
    }
  }
  return g;
}

const std::vector<VarId>& SocialGraph::neighbors(VarId u) const {
  DSSMR_ASSERT(u.value < adj_.size());
  return adj_[u.value];
}

bool SocialGraph::connected(VarId u, VarId v) const {
  const auto& n = neighbors(u);
  return std::find(n.begin(), n.end(), v) != n.end();
}

void SocialGraph::add_edge(VarId u, VarId v) {
  if (u == v || connected(u, v)) return;
  adj_[u.value].push_back(v);
  adj_[v.value].push_back(u);
  ++edge_count_;
}

void SocialGraph::remove_edge(VarId u, VarId v) {
  if (!connected(u, v)) return;
  auto drop = [](std::vector<VarId>& xs, VarId x) {
    xs.erase(std::remove(xs.begin(), xs.end(), x), xs.end());
  };
  drop(adj_[u.value], v);
  drop(adj_[v.value], u);
  --edge_count_;
}

partition::Csr SocialGraph::to_csr() const {
  partition::GraphBuilder b;
  if (!adj_.empty()) b.touch(static_cast<partition::NodeId>(adj_.size() - 1));
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    for (VarId v : adj_[u]) {
      if (u < v.value) {
        b.add_edge(static_cast<partition::NodeId>(u),
                   static_cast<partition::NodeId>(v.value));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------

ChirperWorkload::ChirperWorkload(SocialGraph& graph, ChirperWorkloadConfig config,
                                 std::uint64_t seed)
    : graph_(graph), cfg_(config), rng_(seed), zipf_(graph.user_count(), config.zipf_theta) {
  const double total = cfg_.mix.timeline + cfg_.mix.post + cfg_.mix.follow + cfg_.mix.unfollow;
  DSSMR_ASSERT_MSG(total > 0.999 && total < 1.001, "command mix must sum to 1");
}

VarId ChirperWorkload::pick_user() {
  return VarId{static_cast<std::uint64_t>(zipf_.sample(rng_))};
}

smr::Command ChirperWorkload::next() {
  const double r = rng_.uniform();
  if (r < cfg_.mix.timeline) return chirper::make_get_timeline(pick_user());
  if (r < cfg_.mix.timeline + cfg_.mix.post) return next_post();
  if (r < cfg_.mix.timeline + cfg_.mix.post + cfg_.mix.follow) return next_follow();
  return next_unfollow();
}

smr::Command ChirperWorkload::next_post() {
  const VarId u = pick_user();
  smr::Command c = chirper::make_post(u, graph_.neighbors(u), "a 140-character chirp");
  if (cfg_.hint_posts) {
    for (VarId f : graph_.neighbors(u)) c.hint_edges.emplace_back(u, f);
  }
  return c;
}

smr::Command ChirperWorkload::next_follow() {
  // Pick a not-yet-connected target, friend-of-friend biased to preserve the
  // clustered structure of the graph.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const VarId u = pick_user();
    VarId v = u;
    const auto& nbrs = graph_.neighbors(u);
    if (!nbrs.empty() && rng_.chance(cfg_.follow_fof)) {
      const VarId w = nbrs[rng_.below(nbrs.size())];
      const auto& second = graph_.neighbors(w);
      if (!second.empty()) v = second[rng_.below(second.size())];
    } else {
      v = pick_user();
    }
    if (v == u || graph_.connected(u, v)) continue;
    graph_.add_edge(u, v);
    return chirper::make_follow(u, v);
  }
  // Dense corner: fall back to a timeline read rather than spinning.
  return chirper::make_get_timeline(pick_user());
}

smr::Command ChirperWorkload::next_unfollow() {
  for (int attempt = 0; attempt < 32; ++attempt) {
    const VarId u = pick_user();
    const auto& nbrs = graph_.neighbors(u);
    if (nbrs.empty()) continue;
    const VarId v = nbrs[rng_.below(nbrs.size())];
    graph_.remove_edge(u, v);
    return chirper::make_unfollow(u, v);
  }
  return chirper::make_get_timeline(pick_user());
}

}  // namespace dssmr::workload
