// Zipf-distributed sampling over [0, n), used to skew per-user activity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dssmr::workload {

class Zipf {
 public:
  /// theta = 0 degenerates to uniform; classic Zipf is theta ~ 0.99.
  Zipf(std::size_t n, double theta);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dssmr::workload
