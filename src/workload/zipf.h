// Zipf-distributed sampling over [0, n), used to skew per-user activity.
//
// Sampling uses the Walker/Vose alias method: O(1) per draw (one uniform,
// one table probe) instead of the O(log n) CDF binary search. Both samplers
// consume exactly one rng.uniform() per draw, so swapping them does not
// shift the caller's random stream. The CDF sampler is kept for the
// micro_workload comparison benchmark and the distribution tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dssmr::workload {

class Zipf {
 public:
  /// theta = 0 degenerates to uniform; classic Zipf is theta ~ 0.99.
  Zipf(std::size_t n, double theta);

  /// O(1) alias-method draw.
  std::size_t sample(Rng& rng) const;

  /// O(log n) inverse-CDF draw (reference implementation; benchmarks only).
  std::size_t sample_cdf(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  /// Walker alias table: bucket i returns i when the uniform's fractional
  /// part lands under prob_[i], alias_[i] otherwise.
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace dssmr::workload
