// Chirper: the Twitter-like service of the paper's evaluation (Section 5.2).
//
// Each user is one state variable holding profile links (followers /
// following) and a materialized timeline. Post fan-out writes the new post
// into every follower's timeline at post time, which makes getTimeline a
// guaranteed single-partition command — the design decision the paper calls
// out; the flip side is that post/follow/unfollow may touch several
// partitions and therefore drive DS-SMR's moves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "smr/app.h"
#include "smr/command.h"

namespace dssmr::chirper {

enum Op : std::uint32_t {
  kPost = 1,         // write_set = {poster} ∪ followers(poster); arg = text
  kFollow = 2,       // write_set = {follower, followee}
  kUnfollow = 3,     // write_set = {follower, followee}
  kGetTimeline = 4,  // read_set = {user}
};

constexpr std::size_t kTimelineCap = 50;
constexpr std::size_t kMaxPostLength = 140;

struct Post {
  VarId author{};
  std::uint64_t seq = 0;  // command id: deterministic, totally ordered per user
  std::string text;
};

struct UserValue final : smr::VarValue {
  std::vector<VarId> followers;
  std::vector<VarId> following;
  std::deque<Post> timeline;  // newest at the back, capped at kTimelineCap

  std::unique_ptr<smr::VarValue> clone() const override {
    return std::make_unique<UserValue>(*this);
  }
  std::size_t size_bytes() const override {
    std::size_t n = 64 + (followers.size() + following.size()) * 8;
    for (const Post& p : timeline) n += 24 + p.text.size();
    return n;
  }

  void append_post(Post p) {
    timeline.push_back(std::move(p));
    while (timeline.size() > kTimelineCap) timeline.pop_front();
  }
};

struct TimelineReply final : net::Message {
  std::vector<Post> posts;
  explicit TimelineReply(std::vector<Post> p) : posts(std::move(p)) {}
  const char* type_name() const override { return "chirper.timeline"; }
  std::size_t size_bytes() const override {
    std::size_t n = 16;
    for (const Post& p : posts) n += 24 + p.text.size();
    return n;
  }
};

struct StatusReply final : net::Message {
  bool ok;
  explicit StatusReply(bool o) : ok(o) {}
  const char* type_name() const override { return "chirper.status"; }
  std::size_t size_bytes() const override { return 9; }
};

class ChirperApp final : public smr::AppStateMachine {
 public:
  struct Costs {
    Duration base = usec(8);
    Duration per_write_var = usec(1);
    Duration per_timeline_post = usec(0);
  };

  ChirperApp() : costs_(Costs{}) {}
  explicit ChirperApp(Costs costs) : costs_(costs) {}

  net::MessagePtr execute(const smr::Command& cmd, smr::ExecutionView& view) override;
  std::unique_ptr<smr::VarValue> make_default(VarId v) override;
  Duration service_time(const smr::Command& cmd) const override;

 private:
  Costs costs_;
};

inline smr::AppFactory chirper_app_factory(ChirperApp::Costs costs = ChirperApp::Costs{}) {
  return [costs] { return std::make_unique<ChirperApp>(costs); };
}

// ---- command builders (the client-side application vocabulary) -------------

/// post(u): the caller supplies u's follower list (clients track the part of
/// the social graph they interact with; the workload driver plays that role).
smr::Command make_post(VarId user, const std::vector<VarId>& followers, std::string text);
smr::Command make_follow(VarId follower, VarId followee);
smr::Command make_unfollow(VarId follower, VarId followee);
smr::Command make_get_timeline(VarId user);

}  // namespace dssmr::chirper
