#include "chirper/chirper.h"

#include "common/assert.h"

namespace dssmr::chirper {
namespace {

void add_unique(std::vector<VarId>& xs, VarId v) {
  if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
}

void remove_value(std::vector<VarId>& xs, VarId v) {
  xs.erase(std::remove(xs.begin(), xs.end(), v), xs.end());
}

}  // namespace

net::MessagePtr ChirperApp::execute(const smr::Command& cmd, smr::ExecutionView& view) {
  switch (cmd.op) {
    case kPost: {
      const VarId poster = cmd.write_set.at(0);
      Post post{poster, cmd.id.value, cmd.arg};
      // Deliver into every reachable timeline (the poster's own included).
      // Variables deleted concurrently are simply skipped.
      for (VarId u : cmd.write_set) {
        if (auto* user = view.get_as<UserValue>(u); user != nullptr) {
          user->append_post(post);
        }
      }
      return net::make_msg<StatusReply>(view.get(poster) != nullptr);
    }
    case kFollow: {
      auto* follower = view.get_as<UserValue>(cmd.write_set.at(0));
      auto* followee = view.get_as<UserValue>(cmd.write_set.at(1));
      if (follower == nullptr || followee == nullptr) {
        return net::make_msg<StatusReply>(false);
      }
      add_unique(follower->following, cmd.write_set.at(1));
      add_unique(followee->followers, cmd.write_set.at(0));
      return net::make_msg<StatusReply>(true);
    }
    case kUnfollow: {
      auto* follower = view.get_as<UserValue>(cmd.write_set.at(0));
      auto* followee = view.get_as<UserValue>(cmd.write_set.at(1));
      if (follower == nullptr || followee == nullptr) {
        return net::make_msg<StatusReply>(false);
      }
      remove_value(follower->following, cmd.write_set.at(1));
      remove_value(followee->followers, cmd.write_set.at(0));
      return net::make_msg<StatusReply>(true);
    }
    case kGetTimeline: {
      const auto* user = view.get_as<UserValue>(cmd.read_set.at(0));
      if (user == nullptr) return net::make_msg<TimelineReply>(std::vector<Post>{});
      return net::make_msg<TimelineReply>(
          std::vector<Post>(user->timeline.begin(), user->timeline.end()));
    }
    default:
      return net::make_msg<StatusReply>(false);
  }
}

std::unique_ptr<smr::VarValue> ChirperApp::make_default(VarId v) {
  (void)v;
  return std::make_unique<UserValue>();
}

Duration ChirperApp::service_time(const smr::Command& cmd) const {
  return costs_.base + costs_.per_write_var * static_cast<Duration>(cmd.write_set.size()) +
         (cmd.op == kGetTimeline ? costs_.per_timeline_post * kTimelineCap : 0);
}

smr::Command make_post(VarId user, const std::vector<VarId>& followers, std::string text) {
  DSSMR_ASSERT_MSG(text.size() <= kMaxPostLength, "posts are capped at 140 characters");
  smr::Command c;
  c.op = kPost;
  c.write_set.push_back(user);
  for (VarId f : followers) {
    if (f != user) c.write_set.push_back(f);
  }
  c.arg = std::move(text);
  return c;
}

smr::Command make_follow(VarId follower, VarId followee) {
  DSSMR_ASSERT(follower != followee);
  smr::Command c;
  c.op = kFollow;
  c.write_set = {follower, followee};
  c.hint_edges = {{follower, followee}};
  return c;
}

smr::Command make_unfollow(VarId follower, VarId followee) {
  DSSMR_ASSERT(follower != followee);
  smr::Command c;
  c.op = kUnfollow;
  c.write_set = {follower, followee};
  return c;
}

smr::Command make_get_timeline(VarId user) {
  smr::Command c;
  c.op = kGetTimeline;
  c.read_set = {user};
  return c;
}

}  // namespace dssmr::chirper
