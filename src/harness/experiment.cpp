#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <optional>

#include "chirper/chirper.h"
#include "common/assert.h"
#include "core/dynastar_policy.h"
#include "fault/nemesis.h"
#include "fault/scaler.h"
#include "partition/partitioner.h"

namespace dssmr::harness {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kHash:
      return "hash";
    case Placement::kMetis:
      return "metis";
  }
  return "?";
}

// ---- ClosedLoopDriver -------------------------------------------------------

ClosedLoopDriver::ClosedLoopDriver(Deployment& deployment, Generator generator)
    : deployment_(deployment), generator_(std::move(generator)) {
  DSSMR_ASSERT(generator_ != nullptr);
}

void ClosedLoopDriver::kick(std::size_t client) {
  if (stopped_) return;
  const Time t0 = deployment_.engine().now();
  deployment_.client(client).issue(
      generator_(), [this, client, t0](smr::ReplyCode code, const net::MessagePtr&) {
        const Time now = deployment_.engine().now();
        if (now > measure_start_ && now <= measure_end_) {
          latency_.record(now - t0);
          if (code == smr::ReplyCode::kOk) {
            ++measured_ok_;
          } else {
            ++measured_nok_;
          }
        }
        kick(client);
      });
}

void ClosedLoopDriver::run(Duration warmup, Duration measure) {
  measure_ = measure;
  measure_start_ = deployment_.engine().now() + warmup;
  measure_end_ = measure_start_ + measure;
  stopped_ = false;
  // Staggered starts avoid a same-instant thundering herd.
  for (std::size_t c = 0; c < deployment_.client_count(); ++c) {
    deployment_.engine().schedule(usec(static_cast<Duration>(c) * 150), [this, c] {
      if (!deployment_.client(c).busy()) kick(c);
    });
  }
  deployment_.engine().run_until(measure_end_);
  stopped_ = true;
}

double ClosedLoopDriver::throughput_cps() const {
  return measure_ == 0 ? 0.0
                       : static_cast<double>(measured_ok_) / to_seconds(measure_);
}

// ---- Chirper experiment -------------------------------------------------------

PreparedWorkload prepare_workload(const ChirperRunConfig& cfg) {
  Rng rng{cfg.seed * 0x9e3779b9ULL + 17};
  const auto k = static_cast<std::uint32_t>(cfg.partitions);

  workload::SocialGraph graph{0};
  if (cfg.use_controlled_cut) {
    // Many small communities per partition: real social graphs have fine
    // community structure, and coarse communities would turn placement
    // variance into artificial load imbalance.
    const std::size_t communities = std::max<std::size_t>(16 * cfg.partitions, 16);
    workload::HolmeKimConfig per_community = cfg.graph;
    per_community.n = static_cast<std::uint32_t>(
        std::max<std::size_t>(cfg.graph.n / communities, per_community.m + 2));
    graph = workload::SocialGraph::generate_communities(per_community, communities,
                                                        cfg.controlled_edge_cut, rng);
  } else {
    graph = workload::SocialGraph::generate(cfg.graph, rng);
  }
  PreparedWorkload out{std::move(graph), {}, 0.0};
  if (cfg.placement == Placement::kMetis && k > 1) {
    partition::PartitionerConfig pcfg;
    pcfg.k = k;
    out.part = partition::partition_graph(out.graph.to_csr(), pcfg).part;
  } else {
    out.part = partition::hash_partition(out.graph.user_count(),
                                         std::max<std::uint32_t>(k, 1));
  }
  const partition::Csr csr = out.graph.to_csr();
  out.edge_cut_fraction = partition::edge_cut_fraction(csr, out.part);
  return out;
}

RunResult run_chirper(const ChirperRunConfig& cfg) {
  PreparedWorkload prepared = prepare_workload(cfg);

  DeploymentConfig dep;
  dep.partitions = cfg.partitions;
  dep.replicas_per_partition = cfg.replicas_per_partition;
  dep.oracle_replicas = cfg.replicas_per_partition;
  dep.clients = cfg.partitions * cfg.clients_per_partition;
  dep.strategy = cfg.strategy;
  dep.node.rmcast_relay = cfg.rmcast_relay;
  dep.batch_size = cfg.batch_size;
  dep.batch_delay = cfg.batch_delay;
  dep.pipeline_depth = cfg.pipeline_depth;
  dep.prefetch_k = cfg.prefetch_k;
  dep.cache_repair = cfg.cache_repair;
  dep.coalesce_moves = cfg.coalesce_moves;
  dep.coalesce_delay = cfg.coalesce_delay;
  dep.client_cache = cfg.client_cache;
  dep.seed = cfg.seed;
  dep.trace = cfg.trace;
  dep.spans = cfg.spans;
  dep.spans_capacity = cfg.spans_capacity;
  dep.telemetry = cfg.telemetry;
  dep.telemetry_interval = cfg.telemetry_interval;
  dep.client_hints = cfg.strategy == core::Strategy::kDynaStar;
  dep.oracle.oracle_issues_moves = cfg.strategy == core::Strategy::kDynaStar;
  // Elastic gating: the flag interns the elastic.* counters and registers the
  // partition-count gauge, so it is set only when a plan is actually armed —
  // scale-plan-free runs stay byte-identical to the pre-elasticity output.
  dep.elastic = !cfg.scale_plan.empty();
  dep.oracle.elastic = dep.elastic;

  const auto k = static_cast<std::uint32_t>(cfg.partitions);
  PolicyFactory policy_factory;
  if (cfg.strategy == core::Strategy::kDynaStar) {
    core::DynaStarPolicy::Config pc;
    pc.repartition_every_hints = cfg.dynastar_hint_threshold;
    pc.partitioner.k = k;
    const bool preload = cfg.dynastar_preload_graph;
    const auto& graph = prepared.graph;
    policy_factory = [pc, preload, &graph] {
      auto policy = std::make_unique<core::DynaStarPolicy>(pc);
      if (preload) {
        for (std::size_t u = 0; u < graph.user_count(); ++u) {
          for (VarId v : graph.neighbors(VarId{u})) {
            if (u < v.value) policy->preload_edge(VarId{u}, v);
          }
        }
        policy->force_repartition();
      }
      return policy;
    };
  } else {
    const auto rule = cfg.dssmr_dest_rule;
    policy_factory = [rule] { return std::make_unique<core::DssmrPolicy>(rule); };
  }

  Deployment d{dep, chirper::chirper_app_factory(cfg.app_costs), std::move(policy_factory)};

  // Preload every user on its assigned partition.
  d.reserve_vars(prepared.graph.user_count());
  for (std::size_t u = 0; u < prepared.graph.user_count(); ++u) {
    chirper::UserValue user;
    user.followers = prepared.graph.neighbors(VarId{u});
    user.following = user.followers;  // mutual-follow model
    d.preload_var(VarId{u}, d.partition_gid(prepared.part[u]), user);
  }
  d.start();
  d.settle();

  // The nemesis lives for the whole driven run; its scheduled events capture
  // `*nemesis`, so it must outlive driver.run().
  std::optional<fault::Nemesis> nemesis;
  if (!cfg.nemesis.empty()) {
    nemesis.emplace(d, fault::resolve_plan(cfg.nemesis));
    nemesis->arm();
  }
  // Same lifetime rule as the nemesis; composes with it (both actors share
  // the virtual clock, so e.g. a drain can run under a drop burst).
  std::optional<fault::Scaler> scaler;
  if (!cfg.scale_plan.empty()) {
    scaler.emplace(d, fault::resolve_scale_plan(cfg.scale_plan));
    scaler->arm();
  }

  workload::ChirperWorkload wl{prepared.graph, cfg.workload, cfg.seed * 31 + 7};
  ClosedLoopDriver driver{d, [&wl] { return wl.next(); }};
  const std::uint64_t drive_ev0 = d.engine().events_executed();
  const auto drive_t0 = std::chrono::steady_clock::now();
  driver.run(cfg.warmup, cfg.measure);
  const double drive_wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - drive_t0)
          .count();

  RunResult r;
  r.drive_wall_s = drive_wall;
  r.events_executed = d.engine().events_executed() - drive_ev0;
  r.label = std::string(to_string(cfg.strategy)) + "/" + to_string(cfg.placement);
  r.throughput_cps = driver.throughput_cps();
  r.latency_hist = driver.latency();
  r.latency_avg_us = r.latency_hist.mean();
  r.latency_p50_us = r.latency_hist.percentile(0.50);
  r.latency_p95_us = r.latency_hist.percentile(0.95);
  r.latency_p99_us = r.latency_hist.percentile(0.99);
  r.ok = driver.measured_ok();
  r.nok = driver.measured_nok();
  for (const auto& [name, c] : d.metrics().counters()) r.counters[name] = c.value();
  r.placement_edge_cut = prepared.edge_cut_fraction;

  const Time end = d.engine().now();
  const auto seconds = static_cast<std::size_t>(end / sec(1)) + 1;
  if (const auto* s = d.metrics().find_series("client.completions"); s != nullptr) {
    for (std::size_t i = 0; i < seconds; ++i) r.tput_series.push_back(s->rate(i));
  }
  if (const auto* s = d.metrics().find_series("moves_ts"); s != nullptr) {
    for (std::size_t i = 0; i < seconds; ++i) r.moves_series.push_back(s->rate(i));
  } else {
    r.moves_series.assign(seconds, 0.0);
  }
  if (const auto* s = d.metrics().find_series("oracle.busy_us"); s != nullptr) {
    for (std::size_t i = 0; i < seconds; ++i) {
      r.oracle_busy_series.push_back(s->rate(i) / 1e6);
    }
  } else {
    r.oracle_busy_series.assign(seconds, 0.0);
  }
  // DynaStar moves are oracle-issued; fold them into the same series scale.
  r.counters["moves.total"] =
      r.counter("client.moves") + r.counter("oracle.moves_issued");
  r.metrics = d.metrics();
  // The registry's client.latency_us covers the whole run (warmup included);
  // keep the measurement-window histogram alongside it for run records.
  r.metrics.histogram("measured.latency_us").merge(r.latency_hist);
  return r;
}

stats::RunRecord make_run_record(const ChirperRunConfig& cfg, const RunResult& r,
                                 std::string label) {
  stats::RunRecord rec;
  rec.label = label.empty() ? r.label : std::move(label);
  rec.metrics = r.metrics;
  rec.add_meta("strategy", to_string(cfg.strategy));
  rec.add_meta("placement", to_string(cfg.placement));
  rec.add_meta("partitions", std::to_string(cfg.partitions));
  rec.add_meta("clients_per_partition", std::to_string(cfg.clients_per_partition));
  rec.add_meta("replicas_per_partition", std::to_string(cfg.replicas_per_partition));
  rec.add_meta("seed", std::to_string(cfg.seed));
  rec.add_meta("warmup_us", std::to_string(cfg.warmup));
  rec.add_meta("measure_us", std::to_string(cfg.measure));
  rec.add_meta("client_cache", cfg.client_cache ? "true" : "false");
  rec.add_meta("nemesis", cfg.nemesis.empty() ? "none" : cfg.nemesis);
  // Conditional so scale-plan-free records keep the exact pre-elasticity
  // meta key set (byte-identity modulo the schema token).
  if (!cfg.scale_plan.empty()) rec.add_meta("scale_plan", cfg.scale_plan);
  if (cfg.batch_size > 0 || cfg.pipeline_depth > 0) {
    rec.add_meta("batch_size", std::to_string(cfg.batch_size));
    rec.add_meta("batch_delay_us", std::to_string(cfg.batch_delay));
    rec.add_meta("pipeline_depth", std::to_string(cfg.pipeline_depth));
  }
  if (cfg.prefetch_k > 0 || cfg.cache_repair || cfg.coalesce_moves > 0) {
    rec.add_meta("prefetch_k", std::to_string(cfg.prefetch_k));
    rec.add_meta("cache_repair", cfg.cache_repair ? "true" : "false");
    rec.add_meta("coalesce_moves", std::to_string(cfg.coalesce_moves));
    rec.add_meta("coalesce_delay_us", std::to_string(cfg.coalesce_delay));
  }
  rec.add_meta("telemetry", cfg.telemetry ? "on" : "off");
  if (cfg.telemetry) {
    rec.add_meta("telemetry_interval_us", std::to_string(cfg.telemetry_interval));
  }
  rec.add_meta("placement_edge_cut", std::to_string(r.placement_edge_cut));
  rec.add_meta("throughput_cps", std::to_string(r.throughput_cps));
  rec.add_meta("latency_p50_us", std::to_string(r.latency_p50_us));
  rec.add_meta("latency_p95_us", std::to_string(r.latency_p95_us));
  rec.add_meta("latency_p99_us", std::to_string(r.latency_p99_us));
  rec.add_meta("ok", std::to_string(r.ok));
  rec.add_meta("nok", std::to_string(r.nok));
  return rec;
}

}  // namespace dssmr::harness
