// Deterministic parallel sweep runner.
//
// Every figure binary sweeps a grid of ChirperRunConfigs; the simulations
// are fully independent (one Engine, Network and metrics registry per run),
// so sweep points can execute on a small thread pool. Determinism is
// preserved by construction: each run's randomness comes only from its own
// seeded Rng, and results land in a vector slot chosen by submission index —
// output is byte-identical to a serial sweep regardless of thread scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/experiment.h"

namespace dssmr::harness {

/// Invokes `fn(i)` for i in [0, n), using up to `jobs` worker threads.
/// jobs <= 1 (or n <= 1) runs inline on the calling thread. `fn` must be
/// safe to call concurrently from different threads for different `i`.
/// The first exception thrown by any invocation is rethrown on the caller.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for that collects `fn(i)` into a vector indexed by `i` —
/// result order matches submission order, never completion order.
template <class Fn>
auto parallel_map(std::size_t n, std::size_t jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Runs run_chirper for every config, up to `jobs` at a time. Results are
/// positionally matched to `configs`.
std::vector<RunResult> run_sweep(const std::vector<ChirperRunConfig>& configs,
                                 std::size_t jobs);

}  // namespace dssmr::harness
