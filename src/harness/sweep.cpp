#include "harness/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace dssmr::harness {

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers = jobs < n ? jobs : n;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> run_sweep(const std::vector<ChirperRunConfig>& configs,
                                 std::size_t jobs) {
  return parallel_map(configs.size(), jobs,
                      [&](std::size_t i) { return run_chirper(configs[i]); });
}

}  // namespace dssmr::harness
