#include "harness/deployment.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/assert.h"

namespace dssmr::harness {

Deployment::Deployment(DeploymentConfig config, smr::AppFactory app_factory,
                       PolicyFactory policy_factory)
    : config_(config),
      app_factory_(std::move(app_factory)),
      policy_factory_(std::move(policy_factory)),
      network_(engine_, config.net, config.seed),
      metrics_(config.metrics_bucket),
      static_map_(std::make_shared<core::StaticMap>()) {
  DSSMR_ASSERT(config_.partitions >= 1);
  DSSMR_ASSERT(config_.replicas_per_partition >= 1);
  DSSMR_ASSERT(config_.oracle_replicas >= 1);

  if (config_.trace) metrics_.trace().enable();
  if (config_.spans) {
    metrics_.spans().enable();
    if (config_.spans_capacity != 0) metrics_.spans().set_capacity(config_.spans_capacity);
    for (std::size_t p = 0; p < config_.partitions; ++p) {
      metrics_.spans().set_group_name(partition_gid(p), "partition " + std::to_string(p));
    }
    metrics_.spans().set_group_name(oracle_gid(), "oracle");
  }

  config_.server.oracle_group = GroupId{static_cast<std::uint32_t>(config_.partitions)};

  // Batching/pipelining knobs fan into the per-node configs before any node
  // is initialized. batch_size == 0 leaves both configs at their defaults,
  // so the deployment stays byte-identical to the pre-batching layout.
  config_.node.batching.batch_size = config_.batch_size;
  config_.node.batching.batch_delay = config_.batch_delay;
  config_.node.paxos.pipeline_depth = config_.pipeline_depth;

  // Locality fast path: fan the deployment knobs into the per-node configs.
  // All default off, leaving every config at its pre-locality value.
  config_.oracle.prefetch_k = config_.prefetch_k;
  config_.oracle.cache_repair = config_.cache_repair;
  config_.server.cache_repair = config_.cache_repair;
  if (config_.strategy == core::Strategy::kDynaStar) {
    // Oracle-issued moves coalesce at the oracle leader; client-issued moves
    // (kDssmr) go through the MoveCoalescer relay registered below instead.
    config_.oracle.coalesce_moves = config_.coalesce_moves;
    config_.oracle.coalesce_delay = config_.coalesce_delay;
  }

  // Register partition replicas: partition i lives in rack i % 2 (two
  // switches in the paper's testbed).
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    std::vector<ProcessId> members;
    for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
      auto node = std::make_unique<core::PartitionServer>();
      members.push_back(network_.add_process(*node, static_cast<int>(p % 2)));
      servers_.push_back(std::move(node));
    }
    directory_.add_group(std::move(members));
    static_map_->partitions.push_back(partition_gid(p));
    live_partition_gids_.push_back(partition_gid(p));
    retired_.push_back(false);
  }

  // Oracle group, rack 0.
  {
    std::vector<ProcessId> members;
    for (std::size_t r = 0; r < config_.oracle_replicas; ++r) {
      auto node = std::make_unique<core::OracleNode>();
      members.push_back(network_.add_process(*node, 0));
      oracles_.push_back(std::move(node));
    }
    directory_.add_group(std::move(members));
  }

  // Init nodes now that the directory is complete.
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
      server(p, r).init_partition(network_, directory_, partition_gid(p), config_.node,
                                  app_factory_, config_.server, &metrics_,
                                  config_.seed * 7919 + p * 131 + r);
      server(p, r).set_trace(&metrics_.trace());
      server(p, r).set_spans(&metrics_.spans());
      server(p, r).set_metrics(&metrics_);
    }
  }
  for (std::size_t r = 0; r < config_.oracle_replicas; ++r) {
    DSSMR_ASSERT(policy_factory_ != nullptr);
    oracles_[r]->init_oracle(network_, directory_, oracle_gid(), config_.node,
                             policy_factory_(), partition_gids(), config_.oracle, &metrics_,
                             config_.seed * 104729 + r);
    oracles_[r]->set_trace(&metrics_.trace());
    oracles_[r]->set_spans(&metrics_.spans());
    oracles_[r]->set_metrics(&metrics_);
  }

  // Client-tier batch relays, one per rack, only when batching is on (the
  // process-id layout must not shift for batching-off runs).
  if (config_.node.batching.enabled()) {
    for (int rack = 0; rack < 2; ++rack) {
      auto relay = std::make_unique<multicast::BatchRelay>();
      network_.add_process(*relay, rack);
      relay->init_relay(network_, directory_, config_.node.batching);
      relay->batcher().set_metrics(&metrics_);
      relays_.push_back(std::move(relay));
    }
  }

  // Move-coalescer relay (rack 0), only when coalescing is on for
  // client-issued moves — layout preservation, as with the batch relays.
  ProcessId coalescer_pid = kNoProcess;
  if (config_.coalesce_moves > 0 && config_.strategy == core::Strategy::kDssmr) {
    coalescer_ = std::make_unique<core::MoveCoalescer>();
    coalescer_pid = network_.add_process(*coalescer_, 0);
    coalescer_->init_coalescer(network_, directory_,
                               core::MoveCoalescerConfig{oracle_gid(),
                                                         config_.coalesce_moves,
                                                         config_.coalesce_delay},
                               &metrics_);
  }

  // Clients, alternating racks.
  core::ClientConfig ccfg;
  ccfg.strategy = config_.strategy;
  ccfg.use_cache = config_.client_cache;
  ccfg.max_retries = config_.client_max_retries;
  ccfg.op_timeout = config_.client_timeout;
  ccfg.oracle_group = oracle_gid();
  ccfg.partitions = partition_gids();
  // Fallback universe tracks elastic membership; initially identical to
  // ccfg.partitions, so non-elastic runs behave (and serialize) the same.
  ccfg.partition_universe = &live_partition_gids_;
  ccfg.static_map = static_map_;
  ccfg.send_hints = config_.client_hints;
  ccfg.prefetch = config_.prefetch_k > 0;
  ccfg.cache_repair = config_.cache_repair;
  ccfg.move_coalescer = coalescer_pid;
  for (std::size_t c = 0; c < config_.clients; ++c) {
    auto client = std::make_unique<core::ClientProxy>();
    network_.add_process(*client, static_cast<int>(c % 2));
    client->init_client(network_, directory_, ccfg, &metrics_);
    if (!relays_.empty()) client->set_batcher(&relays_[c % relays_.size()]->batcher());
    clients_.push_back(std::move(client));
  }

  if (config_.telemetry) {
    metrics_.recorder().enable(config_.telemetry_interval, config_.partitions);
    register_telemetry_gauges();
  }
}

void Deployment::register_telemetry_gauges() {
  stats::Recorder& rec = metrics_.recorder();

  // Per-partition execution-queue depth: the max over live replicas (a
  // crashed replica's frozen queue would otherwise mask the live ones).
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    rec.register_gauge("queue_depth.p" + std::to_string(p), [this, p] {
      std::size_t depth = 0;
      for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
        core::PartitionServer& s = server(p, r);
        if (!s.halted()) depth = std::max(depth, s.queue_depth());
      }
      return static_cast<double>(depth);
    });
  }
  rec.register_gauge("oracle.queue_depth", [this] {
    std::size_t depth = 0;
    for (auto& o : oracles_) {
      if (!o->halted()) depth = std::max(depth, o->queue_depth());
    }
    return static_cast<double>(depth);
  });

  // Messages currently in flight on the simulated network.
  rec.register_gauge("net.in_flight", [this] {
    const net::NetworkStats& s = network_.stats();
    return static_cast<double>(s.messages_sent - s.messages_delivered - s.messages_dropped);
  });

  // Stamped-but-undelivered atomic multicasts, summed over every group node.
  rec.register_gauge("amcast.pending", [this] {
    std::size_t pending = 0;
    for (auto& s : servers_) pending += s->amcast_pending();
    for (auto& o : oracles_) pending += o->amcast_pending();
    return static_cast<double>(pending);
  });

  // Reply-cache occupancy, summed over partition replicas.
  rec.register_gauge("reply_cache.entries", [this] {
    std::size_t entries = 0;
    for (auto& s : servers_) entries += s->reply_cache_size();
    return static_cast<double>(entries);
  });

  // Client location caches: total cached entries and the cumulative hit rate
  // (hits / consult-or-hit decisions so far).
  rec.register_gauge("client_cache.entries", [this] {
    std::size_t entries = 0;
    for (auto& c : clients_) entries += c->cache_size();
    return static_cast<double>(entries);
  });
  rec.register_gauge("client_cache.hit_rate", [this] {
    const std::uint64_t hits = metrics_.counter("client.cache_hits");
    const std::uint64_t consults = metrics_.counter("client.consults");
    const std::uint64_t decisions = hits + consults;
    return decisions == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(decisions);
  });

  // Batching/pipelining occupancy, only when the knobs are live (the gauge
  // set of a batching-off run must match the pre-batching one).
  if (config_.node.batching.enabled() || config_.pipeline_depth != 0) {
    rec.register_gauge("batch.occupancy", [this] {
      std::size_t queued = 0;
      for (auto& rl : relays_) queued += rl->batcher().pending_entries();
      for (auto& s : servers_) queued += s->batch_pending();
      for (auto& o : oracles_) queued += o->batch_pending();
      return static_cast<double>(queued);
    });
    rec.register_gauge("paxos.pipeline_inflight", [this] {
      std::size_t inflight = 0;
      for (auto& s : servers_) inflight += s->paxos_inflight();
      for (auto& o : oracles_) inflight += o->paxos_inflight();
      return static_cast<double>(inflight);
    });
  }

  // Locality fast path: cache hit rate vs. consult rate over time (the
  // report's cache-effectiveness sparkline). Only when a locality flag is on —
  // the gauge set of a locality-off run must match the pre-locality one.
  if (config_.prefetch_k > 0 || config_.cache_repair || config_.coalesce_moves > 0) {
    rec.register_gauge("locality.window_hit_rate", [this] {
      const std::uint64_t hits = metrics_.counter("client.cache_hits");
      const std::uint64_t consults = metrics_.counter("client.consults");
      const std::uint64_t decisions = hits + consults;
      return decisions == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(decisions);
    });
    rec.register_gauge("locality.consult_rate", [this] {
      const std::uint64_t ops = metrics_.counter("client.ops");
      const std::uint64_t consults = metrics_.counter("client.consults");
      return ops == 0 ? 0.0 : static_cast<double>(consults) / static_cast<double>(ops);
    });
  }

  // Elastic repartitioning: live partition count over time (the report's
  // partition-count strip). Only when a scale plan is armed — the gauge set
  // of a non-elastic run must match the pre-elasticity one.
  if (config_.elastic) {
    rec.register_gauge("elastic.partitions",
                       [this] { return static_cast<double>(live_partition_gids_.size()); });
  }

  // Oracle state: mapped variables and (for DynaStar-style policies) the
  // workload-graph size. Replica 0's view — replicas hold identical state.
  rec.register_gauge("oracle.mapped_vars", [this] {
    return static_cast<double>(oracles_[0]->mapping().var_count());
  });
  rec.register_gauge("oracle.graph_edges", [this] {
    return static_cast<double>(oracles_[0]->policy().workload_graph_edges());
  });
}

void Deployment::telemetry_tick() {
  metrics_.recorder().tick(engine_.now());
  engine_.schedule(config_.telemetry_interval, [this] { telemetry_tick(); });
}

std::vector<GroupId> Deployment::partition_gids() const {
  std::vector<GroupId> gids;
  gids.reserve(config_.partitions);
  for (std::size_t p = 0; p < config_.partitions; ++p) gids.push_back(partition_gid(p));
  return gids;
}

core::PartitionServer& Deployment::server(std::size_t partition, std::size_t replica) {
  return *servers_[partition * config_.replicas_per_partition + replica];
}

GroupId Deployment::add_partition() {
  const std::size_t p = partition_count();
  std::vector<ProcessId> members;
  for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
    auto node = std::make_unique<core::PartitionServer>();
    members.push_back(network_.add_process(*node, static_cast<int>(p % 2)));
    servers_.push_back(std::move(node));
  }
  const GroupId gid = directory_.add_group(std::move(members));
  // The directory hands out dense ids; the oracle group registered right
  // after the initial partitions, so the next id is exactly partition_gid(p)
  // (which skips the oracle's reserved band).
  DSSMR_ASSERT(gid == partition_gid(p));
  if (config_.spans) {
    metrics_.spans().set_group_name(gid, "partition " + std::to_string(p));
  }
  for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
    server(p, r).init_partition(network_, directory_, gid, config_.node, app_factory_,
                                config_.server, &metrics_, config_.seed * 7919 + p * 131 + r);
    server(p, r).set_trace(&metrics_.trace());
    server(p, r).set_spans(&metrics_.spans());
    server(p, r).set_metrics(&metrics_);
    server(p, r).start();
  }
  live_partition_gids_.push_back(gid);
  retired_.push_back(false);
  return gid;
}

void Deployment::finish_retire(std::size_t i) {
  DSSMR_ASSERT(i < partition_count());
  DSSMR_ASSERT_MSG(!retired_[i], "partition retired twice");
  retired_[i] = true;
  const GroupId gid = partition_gid(i);
  for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
    server(i, r).set_retired();
  }
  live_partition_gids_.erase(
      std::remove(live_partition_gids_.begin(), live_partition_gids_.end(), gid),
      live_partition_gids_.end());
  DSSMR_ASSERT_MSG(!live_partition_gids_.empty(), "retired the last partition");
}

bool Deployment::partition_drained(std::size_t i) {
  const GroupId gid = partition_gid(i);
  for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
    core::PartitionServer& s = server(i, r);
    if (s.halted()) continue;  // a crashed replica re-learns the log on recovery
    if (s.owned_count() != 0 || s.queue_depth() != 0 || s.amcast_pending() != 0) return false;
  }
  for (auto& o : oracles_) {
    if (o->halted()) continue;
    if (o->mapping().load(gid) != 0) return false;
  }
  return true;
}

void Deployment::reserve_vars(std::size_t n) {
  for (auto& o : oracles_) o->reserve_vars(n);
  static_map_->location.reserve(n);
}

void Deployment::preload_var(VarId v, GroupId p, const smr::VarValue& value) {
  for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
    server(p.value, r).preload(v, value.clone());
  }
  for (auto& o : oracles_) o->preload(v, p);
  static_map_->location[v] = p;
}

void Deployment::start() {
  for (auto& s : servers_) s->start();
  for (auto& o : oracles_) o->start();
  // First telemetry sample lands one interval in; the chain then keeps one
  // event pending forever (drive the engine with run_until, not run-to-empty).
  if (config_.telemetry) {
    engine_.schedule(config_.telemetry_interval, [this] { telemetry_tick(); });
  }
}

void Deployment::settle(Duration max_wait) {
  const Time deadline = engine_.now() + max_wait;
  while (engine_.now() < deadline) {
    bool all_led = true;
    for (std::size_t p = 0; p < config_.partitions && all_led; ++p) {
      bool led = false;
      for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
        led = led || server(p, r).is_leader();
      }
      all_led = led;
    }
    if (all_led) {
      bool led = false;
      for (auto& o : oracles_) led = led || o->is_leader();
      all_led = led;
    }
    if (all_led) return;
    engine_.run_until(std::min<Time>(engine_.now() + msec(10), deadline));
  }
  DSSMR_FAIL("deployment did not elect leaders in time");
}

std::vector<std::string> Deployment::audit_consistency() {
  std::vector<std::string> violations;
  auto complain = [&violations](const std::string& what) { violations.push_back(what); };

  // Reference replica per partition: the first live one (a crashed replica's
  // state is legitimately stale). Retired partitions stay in the audit — they
  // must own nothing and agree on it.
  std::vector<std::size_t> ref_replica(partition_count(), config_.replicas_per_partition);
  for (std::size_t p = 0; p < partition_count(); ++p) {
    for (std::size_t r = 0; r < config_.replicas_per_partition; ++r) {
      if (!network_.crashed(server(p, r).pid())) {
        ref_replica[p] = r;
        break;
      }
    }
    if (ref_replica[p] == config_.replicas_per_partition) {
      std::ostringstream os;
      os << "partition " << p << " has no live replica";
      complain(os.str());
      return violations;
    }
  }

  // 1. Live replicas of each partition agree on the owned set.
  for (std::size_t p = 0; p < partition_count(); ++p) {
    const auto& ref = server(p, ref_replica[p]).owned_vars();
    for (std::size_t r = ref_replica[p] + 1; r < config_.replicas_per_partition; ++r) {
      if (network_.crashed(server(p, r).pid())) continue;
      const auto& other = server(p, r).owned_vars();
      if (ref != other) {
        std::ostringstream os;
        os << "partition " << p << ": replica " << r << " owns " << other.size()
           << " vars, replica " << ref_replica[p] << " owns " << ref.size();
        complain(os.str());
      }
    }
  }

  // 2. Every variable is owned by at most one partition.
  std::unordered_map<VarId, GroupId> owner;
  for (std::size_t p = 0; p < partition_count(); ++p) {
    for (VarId v : server(p, ref_replica[p]).owned_vars()) {
      auto [it, inserted] = owner.try_emplace(v, partition_gid(p));
      if (!inserted) {
        std::ostringstream os;
        os << "var " << v.value << " owned by partitions " << it->second.value << " and "
           << p;
        complain(os.str());
      }
    }
  }

  // 3. The oracle mapping points at the actual owner.
  std::size_t ref_oracle = 0;
  while (ref_oracle < oracles_.size() && network_.crashed(oracles_[ref_oracle]->pid())) {
    ++ref_oracle;
  }
  if (ref_oracle == oracles_.size()) {
    complain("no live oracle replica");
    return violations;
  }
  const auto& mapping = oracles_[ref_oracle]->mapping();
  for (const auto& [v, p] : mapping.entries()) {
    auto it = owner.find(v);
    if (it == owner.end()) {
      std::ostringstream os;
      os << "oracle maps var " << v.value << " to partition " << p.value
         << " but no partition owns it";
      complain(os.str());
    } else if (it->second != p) {
      std::ostringstream os;
      os << "oracle maps var " << v.value << " to partition " << p.value
         << " but partition " << it->second.value << " owns it";
      complain(os.str());
    }
  }
  for (const auto& [v, p] : owner) {
    (void)p;
    if (!mapping.contains(v)) {
      std::ostringstream os;
      os << "var " << v.value << " is owned but unknown to the oracle";
      complain(os.str());
    }
  }

  // 4. Live oracle replicas agree.
  for (std::size_t r = ref_oracle + 1; r < oracles_.size(); ++r) {
    if (network_.crashed(oracles_[r]->pid())) continue;
    if (oracles_[r]->mapping().entries() != mapping.entries()) {
      std::ostringstream os;
      os << "oracle replica " << r << " mapping diverges from replica " << ref_oracle;
      complain(os.str());
    }
  }
  return violations;
}

std::uint64_t Deployment::total_executed() const {
  std::uint64_t n = 0;
  for (std::size_t p = 0; p < partition_count(); ++p) {
    n += const_cast<Deployment*>(this)->server(p, 0).executed_count();
  }
  return n;
}

}  // namespace dssmr::harness
