// Deployment builder: wires a full simulated cluster.
//
// Mirrors the paper's testbed shape: k partitions of r replicas each, an
// oracle group, and a population of closed-loop clients, spread over two
// "racks" (the two switches of the original cluster). All objects live in
// one Deployment so tests and benches construct an entire system in a few
// lines.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/client_proxy.h"
#include "core/mapping.h"
#include "core/move_coalescer.h"
#include "core/oracle.h"
#include "core/server_proxy.h"
#include "multicast/batcher.h"
#include "multicast/directory.h"
#include "net/network.h"
#include "sim/engine.h"
#include "smr/app.h"
#include "stats/metrics.h"

namespace dssmr::harness {

using PolicyFactory = std::function<std::unique_ptr<core::OraclePolicy>()>;

struct DeploymentConfig {
  std::size_t partitions = 2;
  std::size_t replicas_per_partition = 3;
  std::size_t oracle_replicas = 3;
  std::size_t clients = 10;
  core::Strategy strategy = core::Strategy::kDssmr;

  net::NetworkConfig net;
  multicast::GroupNodeConfig node;
  core::PartitionServerConfig server;
  core::OracleConfig oracle;

  bool client_cache = true;
  int client_max_retries = 3;
  Duration client_timeout = msec(250);
  bool client_hints = false;

  /// Submission batching (multicast/batcher.h): 0 disables it and the
  /// deployment is byte-identical to a build without batching — no relay
  /// processes exist and group nodes construct no batcher. When > 0, one
  /// BatchRelay per rack collects its clients' multicasts and every group
  /// node batches its remote submissions with the same knobs.
  std::size_t batch_size = 0;
  /// Max virtual-time wait from the first queued submission to the flush.
  Duration batch_delay = usec(100);
  /// Paxos pipeline window: in-flight proposals per leader (0 = unbounded,
  /// the original single-slot-per-flush behavior).
  std::size_t pipeline_depth = 0;

  /// Locality fast path (all off by default; defaults keep the deployment —
  /// process layout, wire bytes, run record — byte-identical to a build
  /// without it). prefetch_k > 0 makes prophecies carry up to k co-accessed
  /// neighbour locations that clients install into their caches.
  std::size_t prefetch_k = 0;
  /// Replies piggyback ⟨var, partition, epoch⟩ repair entries; clients heal
  /// stale caches monotonically and re-route retries without re-consulting.
  bool cache_repair = false;
  /// Coalesce concurrent moves with overlapping destination sets into one
  /// bulk multicast: > 0 enables it (flush threshold) both at the oracle
  /// (DynaStar's oracle-issued moves) and via a client-tier relay (DS-SMR's
  /// client-issued moves).
  std::size_t coalesce_moves = 0;
  /// Max wait from the first buffered move to the coalesced flush.
  Duration coalesce_delay = usec(200);

  Duration metrics_bucket = sec(1);
  std::uint64_t seed = 1;

  /// Enables the structured event trace (stats::Trace) for the whole
  /// deployment; off by default so hot paths only pay the enabled-check.
  bool trace = false;
  /// Enables causal span tracing (stats/span.h): per-command phase latency
  /// decomposition and Chrome-trace export. Same default-off rationale.
  bool spans = false;
  /// Caps the spans retained for export (0 = SpanStore default). Phase
  /// histograms and counts keep accumulating past the cap, so the run
  /// record's `phases` section stays complete; only the exported span list
  /// is truncated (benches cap it to keep Chrome traces loadable).
  std::size_t spans_capacity = 0;

  /// Enables flight-recorder telemetry (stats::Recorder): gauge sampling on
  /// a virtual-time cadence, windowed per-partition heat, windowed latency
  /// percentiles and timeline marks. Off by default; when off, no tick chain
  /// is scheduled and every record_* call is a one-branch no-op, so the
  /// virtual-time schedule is identical to a build without telemetry.
  bool telemetry = false;
  /// Gauge-sampling cadence and heat/latency bucket width.
  Duration telemetry_interval = msec(100);

  /// Elastic repartitioning (a ScalePlan will add/retire partitions mid-run).
  /// Off by default; when off, no elastic gauge registers and the deployment
  /// is byte-identical to a build without elasticity.
  bool elastic = false;
};

class Deployment {
 public:
  Deployment(DeploymentConfig config, smr::AppFactory app_factory,
             PolicyFactory policy_factory);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Arms all protocol timers. Call after preloading state.
  void start();

  /// Runs the simulation until every group has an elected leader (call after
  /// start(), before driving load).
  void settle(Duration max_wait = sec(2));

  /// Installs variable `v` on partition `p` with `value` on every replica,
  /// registers it with every oracle replica and the S-SMR static map.
  void preload_var(VarId v, GroupId p, const smr::VarValue& value);

  /// Pre-sizes the oracle mappings and the static map for `n` variables —
  /// call before the preload loop to avoid rehash churn during setup.
  void reserve_vars(std::size_t n);

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  stats::Metrics& metrics() { return metrics_; }
  const DeploymentConfig& config() const { return config_; }

  /// GroupId layout: the initial k partitions take ids 0..k-1 and the oracle
  /// holds the fixed id k for the deployment's whole lifetime. Dynamically
  /// added partition i (i >= k) takes id i+1, skipping over the oracle's
  /// reserved band — the id is still exactly what Directory::add_group hands
  /// out, because the oracle group was registered between the initial
  /// partitions and any elastic one.
  GroupId partition_gid(std::size_t i) const {
    return GroupId{static_cast<std::uint32_t>(i < config_.partitions ? i : i + 1)};
  }
  GroupId oracle_gid() const { return GroupId{static_cast<std::uint32_t>(config_.partitions)}; }
  std::vector<GroupId> partition_gids() const;

  /// Partitions ever created, including retired ones (indexes `server()`).
  std::size_t partition_count() const { return servers_.size() / config_.replicas_per_partition; }
  /// GroupIds of the partitions currently serving (admitted, not retired).
  /// The vector's address is stable for the deployment's lifetime — clients
  /// hold a pointer to it as their fallback-destination universe.
  const std::vector<GroupId>& live_partition_gids() const { return live_partition_gids_; }
  bool partition_retired(std::size_t i) const { return retired_[i]; }

  /// Boots a fresh replica group mid-run (elastic scale-out): registers the
  /// processes and the multicast group, wires trace/spans/metrics and starts
  /// the replicas. The oracle does NOT know about it yet — the caller (the
  /// Scaler) must follow up with an atomically multicast membership record so
  /// every oracle replica admits it at the same point in the command order.
  GroupId add_partition();

  /// Finalizes a drain (elastic scale-in): marks every replica of `i` retired
  /// — they keep participating in multicast (in-flight commands addressed to
  /// them must still deliver) but answer kRetired — and removes the group
  /// from the clients' fallback universe. Call only once drained() holds.
  void finish_retire(std::size_t i);

  /// Drain barrier predicate for partition `i`: no replica owns a variable,
  /// queues and pending multicasts are empty, and every live oracle replica's
  /// mapping shows zero load on it.
  bool partition_drained(std::size_t i);

  core::PartitionServer& server(std::size_t partition, std::size_t replica);
  core::OracleNode& oracle(std::size_t replica) { return *oracles_[replica]; }
  core::ClientProxy& client(std::size_t i) { return *clients_[i]; }
  std::size_t client_count() const { return clients_.size(); }
  /// Client-tier batch relays (empty when batching is off).
  std::size_t relay_count() const { return relays_.size(); }
  multicast::BatchRelay& relay(std::size_t i) { return *relays_[i]; }
  /// Move-coalescer relay (nullptr unless coalescing is on under kDssmr).
  core::MoveCoalescer* move_coalescer() { return coalescer_.get(); }

  core::StaticMap& static_map() { return *static_map_; }

  /// Sum of executed commands over one replica of each partition.
  std::uint64_t total_executed() const;

  /// Whole-deployment consistency audit, meaningful once the system is
  /// quiescent (run the engine until in-flight work drains first):
  ///   * every variable is owned by at most one partition;
  ///   * replicas of a partition agree on the owned set;
  ///   * the oracle's mapping points at the actual owner;
  ///   * oracle replicas agree with each other.
  /// Returns human-readable violations (empty = consistent).
  std::vector<std::string> audit_consistency();

 private:
  /// Registers the standard gauge set with the recorder (queue depths,
  /// in-flight messages, cache occupancy, pending amcast, oracle state).
  void register_telemetry_gauges();
  /// One telemetry tick: sample gauges, then reschedule. The chain keeps one
  /// event pending forever, so telemetry runs must drive the engine with
  /// run_until (run-to-empty would never drain).
  void telemetry_tick();

  DeploymentConfig config_;
  /// Kept for elastic add_partition(): late replica groups are constructed
  /// with the same factories as the initial ones.
  smr::AppFactory app_factory_;
  PolicyFactory policy_factory_;
  sim::Engine engine_;
  net::Network network_;
  multicast::Directory directory_;
  stats::Metrics metrics_;
  std::shared_ptr<core::StaticMap> static_map_;
  /// Live (non-retired) partition GroupIds; address-stable, see accessor.
  std::vector<GroupId> live_partition_gids_;
  /// Parallel to partition indices (partition_count() entries).
  std::vector<bool> retired_;
  std::vector<std::unique_ptr<core::PartitionServer>> servers_;
  std::vector<std::unique_ptr<core::OracleNode>> oracles_;
  /// One per rack when batching is on; registered after the oracles so that
  /// batching-off deployments keep the exact seed process-id layout.
  std::vector<std::unique_ptr<multicast::BatchRelay>> relays_;
  /// Registered after the batch relays, before the clients, and only when
  /// coalescing is on — same layout-preservation rule as relays_.
  std::unique_ptr<core::MoveCoalescer> coalescer_;
  std::vector<std::unique_ptr<core::ClientProxy>> clients_;
};

}  // namespace dssmr::harness
