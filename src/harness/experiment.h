// Experiment harness: closed-loop load driver + the standard Chirper run
// used by every throughput/latency figure (see DESIGN.md experiment index).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chirper/chirper.h"
#include "common/types.h"
#include "harness/deployment.h"
#include "smr/command.h"
#include "stats/histogram.h"
#include "stats/metrics.h"
#include "stats/run_record.h"
#include "workload/chirper_workload.h"

namespace dssmr::harness {

/// Drives every client of a deployment in a closed loop: each client issues
/// the next generated command as soon as the previous one completes (the
/// paper's synchronous clients). Latency is recorded only inside the
/// measurement window; time-series cover the whole run (for convergence
/// figures).
class ClosedLoopDriver {
 public:
  using Generator = std::function<smr::Command()>;

  ClosedLoopDriver(Deployment& deployment, Generator generator);

  /// Runs warm-up then measurement; returns at the end of the measurement
  /// window (outstanding commands are left to drain by the caller if needed).
  void run(Duration warmup, Duration measure);

  const stats::Histogram& latency() const { return latency_; }
  std::uint64_t measured_ok() const { return measured_ok_; }
  std::uint64_t measured_nok() const { return measured_nok_; }
  Duration measure_duration() const { return measure_; }
  double throughput_cps() const;

 private:
  void kick(std::size_t client);

  Deployment& deployment_;
  Generator generator_;
  bool stopped_ = false;
  Time measure_start_ = 0;
  Time measure_end_ = 0;
  Duration measure_ = 0;
  stats::Histogram latency_;
  std::uint64_t measured_ok_ = 0;
  std::uint64_t measured_nok_ = 0;
};

// ---------------------------------------------------------------------------

enum class Placement : std::uint8_t {
  kHash,   // variable id modulo partitions (naive static placement)
  kMetis,  // multilevel-partitioner placement of the social graph
};

const char* to_string(Placement p);

struct ChirperRunConfig {
  std::size_t partitions = 2;
  std::size_t clients_per_partition = 5;
  core::Strategy strategy = core::Strategy::kDssmr;
  Placement placement = Placement::kHash;

  workload::HolmeKimConfig graph{.n = 2000, .m = 2, .p_triad = 0.8};
  workload::ChirperWorkloadConfig workload;
  /// Simulated per-command CPU costs; the default saturates one partition at
  /// roughly 10k commands/s, in the ballpark of the paper's testbed.
  chirper::ChirperApp::Costs app_costs{usec(80), usec(5), usec(0)};

  /// When set, overrides the Holme-Kim graph with a community-structured
  /// graph whose inter-community edge fraction is `controlled_edge_cut`
  /// (the paper's "x% edge cut" workloads). Communities = 2 * partitions.
  bool use_controlled_cut = false;
  double controlled_edge_cut = 0.0;

  Duration warmup = sec(2);
  Duration measure = sec(4);
  std::uint64_t seed = 1;

  /// Client location cache (Section "Performance optimizations").
  bool client_cache = true;

  /// DS-SMR destination rule (see DssmrPolicy::DestRule).
  core::DssmrPolicy::DestRule dssmr_dest_rule = core::DssmrPolicy::DestRule::kMostHeld;

  /// DynaStar extension knobs.
  std::uint64_t dynastar_hint_threshold = 2000;
  /// Seed the oracle's workload graph with the social graph and compute the
  /// initial ideal partitioning before the run starts.
  bool dynastar_preload_graph = false;

  /// Tuned-for-simulation deployment knobs applied by run_chirper.
  std::size_t replicas_per_partition = 2;
  bool rmcast_relay = false;  // crash-free perf runs

  /// Submission batching / consensus pipelining (see DeploymentConfig):
  /// batch_size 0 keeps the run byte-identical to the pre-batching code.
  std::size_t batch_size = 0;
  Duration batch_delay = usec(100);
  std::size_t pipeline_depth = 0;

  /// Locality fast path (see DeploymentConfig): prophecy prefetch depth,
  /// piggybacked cache repair, and move coalescing. All off by default —
  /// defaults keep the run byte-identical to the pre-locality code.
  std::size_t prefetch_k = 0;
  bool cache_repair = false;
  std::size_t coalesce_moves = 0;
  Duration coalesce_delay = usec(200);

  /// Structured event trace (stats::Trace) for the run; the full trace is
  /// returned in RunResult::metrics and summarized in run records.
  bool trace = false;
  /// Causal span tracing (stats/span.h): phase latency histograms land in the
  /// run record's `phases` section and the spans can be exported to a Chrome
  /// trace (--trace-chrome in the benches).
  bool spans = false;
  /// Retained-span cap forwarded to DeploymentConfig::spans_capacity
  /// (0 = SpanStore default). Histograms are unaffected by the cap.
  std::size_t spans_capacity = 0;

  /// Fault plan for the run: a shipped plan name or fault-plan DSL (see
  /// fault/fault_plan.h), armed right after settle(). Empty = no faults.
  std::string nemesis;

  /// Scale plan for the run: a shipped plan name or scale-plan DSL (see
  /// fault/scale_plan.h), armed right after settle(). Empty = no elasticity
  /// (and the run stays byte-identical to the pre-elasticity code). Composes
  /// with `nemesis` — both actors are armed on the same clock.
  std::string scale_plan;

  /// Flight-recorder telemetry (stats::Recorder): gauge sampling, windowed
  /// partition heat, windowed latency percentiles, timeline marks. Lands in
  /// the run record's `telemetry` section; off = zero cost and absent key.
  bool telemetry = false;
  Duration telemetry_interval = msec(100);
};

struct RunResult {
  std::string label;
  double throughput_cps = 0;
  double latency_avg_us = 0;
  std::int64_t latency_p50_us = 0;
  std::int64_t latency_p95_us = 0;
  std::int64_t latency_p99_us = 0;
  std::uint64_t ok = 0;
  std::uint64_t nok = 0;
  /// Simulator events executed during the drive phase (setup and settle
  /// excluded; deterministic per seed — the perf suite's batched/unbatched
  /// pair gates on the ratio).
  std::uint64_t events_executed = 0;
  /// Wall-clock seconds spent driving the simulation (setup excluded).
  double drive_wall_s = 0;
  std::map<std::string, std::uint64_t> counters;
  /// Per-second series over the whole run (index = second).
  std::vector<double> tput_series;
  std::vector<double> moves_series;
  /// Oracle-leader CPU utilization per second, in [0,1].
  std::vector<double> oracle_busy_series;
  /// Initial placement quality.
  double placement_edge_cut = 0;
  stats::Histogram latency_hist;
  /// Full end-of-run snapshot of the deployment's metrics registry (all
  /// counters, histograms, series and the event trace) — the source for
  /// machine-readable run records.
  stats::Metrics metrics;

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Builds the Chirper deployment for `cfg`, preloads users per the placement,
/// drives the workload, and extracts the metrics every figure needs.
RunResult run_chirper(const ChirperRunConfig& cfg);

/// Packages one run as a machine-readable record (--json output): the full
/// metrics snapshot plus the config knobs and headline results as metadata.
/// `label` overrides RunResult::label when non-empty (benches usually label
/// runs with the swept parameter).
stats::RunRecord make_run_record(const ChirperRunConfig& cfg, const RunResult& r,
                                 std::string label = {});

/// The social graph + placement used by run_chirper, exposed so benches can
/// report workload characteristics (edge-cut %, clustering, degree).
struct PreparedWorkload {
  workload::SocialGraph graph;
  std::vector<std::uint32_t> part;  // per user
  double edge_cut_fraction = 0;
};
PreparedWorkload prepare_workload(const ChirperRunConfig& cfg);

}  // namespace dssmr::harness
