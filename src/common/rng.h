// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across runs: every source of
// randomness in the repository draws from an explicitly seeded Rng. The
// implementation is xoshiro256** (public domain, Blackman & Vigna), chosen
// over std::mt19937_64 for speed and for a guaranteed cross-platform stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace dssmr {

class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over all 64-bit values.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// A fresh generator whose stream is independent of this one.
  Rng split();

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element. Requires a non-empty container.
  template <class T>
  const T& pick(const std::vector<T>& v) {
    DSSMR_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dssmr
