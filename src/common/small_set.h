// Sorted small-vector set for tiny, short-lived membership tracking.
//
// The oracle's per-command signal bookkeeping and a server's per-move
// shipment tracking hold a handful of GroupIds each (bounded by the
// partition count); a node-based std::set pays an allocation per element and
// pointer-chasing per lookup. This keeps elements inline in a sorted vector:
// O(log n) lookup, O(n) insert, zero allocations for the common n <= 8 case
// once the vector's inline growth is amortized, and deterministic iteration
// order for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace dssmr::common {

template <class T>
class SmallSet {
 public:
  /// Returns true if newly inserted.
  bool insert(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it != items_.end() && *it == value) return false;
    items_.insert(it, value);
    return true;
  }

  bool contains(const T& value) const {
    return std::binary_search(items_.begin(), items_.end(), value);
  }

  bool erase(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it == items_.end() || *it != value) return false;
    items_.erase(it);
    return true;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  friend bool operator==(const SmallSet&, const SmallSet&) = default;

 private:
  std::vector<T> items_;
};

}  // namespace dssmr::common
