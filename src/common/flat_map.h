// Dense open-addressing hash map for the simulator's hot lookups.
//
// std::unordered_map pays a heap-allocated node plus a bucket indirection
// per entry; the oracle's Mapping, the S-SMR static map and the client
// location cache consult their maps on every single command, so those costs
// dominate the wall-clock profile. FlatMap stores entries inline in a
// power-of-two table with linear probing, Fibonacci hashing and
// backward-shift deletion (no tombstones, so probe chains never rot).
//
// Interface is the iterator-style subset of std::unordered_map the call
// sites use (find/contains/operator[]/erase/size/iteration/==), so it drops
// in. Iteration order is table order — unspecified, like unordered_map; do
// not mutate `first` through an iterator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace dssmr::common {

template <class K, class V, class Hash = std::hash<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Map* m, std::size_t i) : map_(m), i_(i) {}
    /// Non-const -> const conversion.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : map_(o.map_), i_(o.i_) {}  // NOLINT

    Ref operator*() const { return map_->slots_[i_]; }
    Ptr operator->() const { return &map_->slots_[i_]; }
    Iter& operator++() {
      i_ = map_->next_used(i_ + 1);
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.i_ == b.i_; }
    friend bool operator!=(const Iter& a, const Iter& b) { return a.i_ != b.i_; }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;
    Map* map_ = nullptr;
    std::size_t i_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` entries without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // max load factor 3/4
    if (cap > slots_.size()) rehash(cap);
  }

  iterator begin() { return {this, next_used(0)}; }
  iterator end() { return {this, slots_.size()}; }
  const_iterator begin() const { return {this, next_used(0)}; }
  const_iterator end() const { return {this, slots_.size()}; }

  bool contains(const K& k) const { return index_of(k) != kNpos; }

  iterator find(const K& k) {
    const std::size_t i = index_of(k);
    return {this, i == kNpos ? slots_.size() : i};
  }
  const_iterator find(const K& k) const {
    const std::size_t i = index_of(k);
    return {this, i == kNpos ? slots_.size() : i};
  }

  V& operator[](const K& k) { return slots_[insert_index(k)].second; }

  std::pair<iterator, bool> emplace(const K& k, V v) {
    const std::size_t before = size_;
    const std::size_t i = insert_index(k);
    const bool inserted = size_ != before;
    if (inserted) slots_[i].second = std::move(v);
    return {iterator{this, i}, inserted};
  }

  bool erase(const K& k) {
    std::size_t hole = index_of(k);
    if (hole == kNpos) return false;
    // Backward-shift deletion: pull every displaced follower of the probe
    // chain into the hole so lookups never need tombstones.
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      const std::size_t home = home_of(slots_[j].first);
      // slots_[j] may fill the hole iff its home position does not lie in
      // the cyclic interval (hole, j] — otherwise moving it would break its
      // own probe chain.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    slots_[hole] = value_type{};
    --size_;
    return true;
  }

  void erase(const_iterator it) { erase(it->first); }

  void clear() {
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    for (auto& s : slots_) s = value_type{};
    size_ = 0;
  }

  /// Order-independent equality (matches std::unordered_map semantics).
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const auto& [k, v] : a) {
      const std::size_t i = b.index_of(k);
      if (i == kNpos || !(b.slots_[i].second == v)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatMap& a, const FlatMap& b) { return !(a == b); }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t home_of(const K& k) const {
    // Fibonacci hashing spreads the (often identity-hashed, often
    // sequential) keys across the table even for strided key sets.
    const std::uint64_t h = static_cast<std::uint64_t>(Hash{}(k)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_);
  }

  std::size_t index_of(const K& k) const {
    if (size_ == 0) return kNpos;
    std::size_t i = home_of(k);
    while (used_[i]) {
      if (slots_[i].first == k) return i;
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  /// Index of `k`, inserting a default-constructed value if absent.
  std::size_t insert_index(const K& k) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = home_of(k);
    while (used_[i]) {
      if (slots_[i].first == k) return i;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].first = k;
    ++size_;
    return i;
  }

  void rehash(std::size_t cap) {
    DSSMR_ASSERT((cap & (cap - 1)) == 0);
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(cap, value_type{});
    used_.assign(cap, 0);
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t at = insert_index(old_slots[i].first);
      slots_[at].second = std::move(old_slots[i].second);
    }
  }

  std::size_t next_used(std::size_t i) const {
    while (i < slots_.size() && !used_[i]) ++i;
    return i;
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace dssmr::common
