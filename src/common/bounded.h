// Bounded insertion-ordered set and map.
//
// Long simulations deliver millions of messages; dedup structures that only
// need to catch near-in-time duplicates (client retries, leader re-proposals)
// would otherwise grow without bound. These containers evict their oldest
// entries once `capacity` is exceeded — callers must tolerate a false "not
// seen" for entries older than the window, which all users here do (a stale
// duplicate re-executes an idempotent no-op path).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.h"

namespace dssmr {

template <class T, class Hash = std::hash<T>>
class BoundedSet {
 public:
  explicit BoundedSet(std::size_t capacity = 1 << 17) : capacity_(capacity) {
    DSSMR_ASSERT(capacity_ > 0);
  }

  /// Returns true if newly inserted.
  bool insert(const T& value) {
    if (!set_.insert(value).second) return false;
    order_.push_back(value);
    while (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  bool contains(const T& value) const { return set_.contains(value); }
  std::size_t size() const { return set_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_set<T, Hash> set_;
  std::deque<T> order_;
};

template <class K, class V, class Hash = std::hash<K>>
class BoundedMap {
 public:
  explicit BoundedMap(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    DSSMR_ASSERT(capacity_ > 0);
  }

  /// Inserts (or overwrites) and evicts the oldest entries beyond capacity.
  void put(const K& key, V value) {
    auto [it, inserted] = map_.insert_or_assign(key, std::move(value));
    (void)it;
    if (inserted) order_.push_back(key);
    while (order_.size() > capacity_) {
      map_.erase(order_.front());
      order_.pop_front();
    }
  }

  const V* find(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool contains(const K& key) const { return map_.contains(key); }
  std::size_t size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_map<K, V, Hash> map_;
  std::deque<K> order_;
};

}  // namespace dssmr
