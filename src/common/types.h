// Core identifier and time types shared by every layer.
//
// All quantities of virtual time are expressed in microseconds. Identifiers
// are thin wrappers over integers: strong enough that a ProcessId cannot be
// confused with a GroupId at compile time, cheap enough to copy everywhere.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace dssmr {

/// Virtual time in microseconds since simulation start.
using Time = std::int64_t;
/// A span of virtual time in microseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

constexpr Duration usec(std::int64_t n) { return n; }
constexpr Duration msec(std::int64_t n) { return n * 1000; }
constexpr Duration sec(std::int64_t n) { return n * 1'000'000; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e3; }

namespace detail {

/// CRTP-free strong integer id. `Tag` makes distinct instantiations
/// non-interconvertible; `Rep` is the underlying representation.
template <class Tag, class Rep = std::uint32_t>
struct StrongId {
  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

/// Index of a process (replica, client, or oracle member) in a deployment.
using ProcessId = detail::StrongId<struct ProcessTag>;
/// Index of a multicast group (one per partition, plus one for the oracle).
using GroupId = detail::StrongId<struct GroupTag>;
/// Globally unique message id, allocated by the sending process.
using MsgId = detail::StrongId<struct MsgTag, std::uint64_t>;
/// Identifier of a state variable (e.g. a Chirper user).
using VarId = detail::StrongId<struct VarTag, std::uint64_t>;

inline constexpr ProcessId kNoProcess{std::numeric_limits<std::uint32_t>::max()};
inline constexpr GroupId kNoGroup{std::numeric_limits<std::uint32_t>::max()};

}  // namespace dssmr

namespace std {

template <class Tag, class Rep>
struct hash<dssmr::detail::StrongId<Tag, Rep>> {
  size_t operator()(dssmr::detail::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

}  // namespace std
