// Lightweight always-on assertion macros.
//
// The simulator and the protocol layers rely on internal invariants that,
// when violated, indicate a protocol bug rather than a user error. Such
// violations abort immediately with a readable message: continuing after a
// broken invariant would silently corrupt an experiment.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dssmr::detail {

[[noreturn]] inline void assert_fail(const char* cond, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "dssmr: assertion failed: %s\n  at %s:%d\n  %s\n", cond, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dssmr::detail

#define DSSMR_ASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond)) ::dssmr::detail::assert_fail(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DSSMR_ASSERT_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) ::dssmr::detail::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#define DSSMR_FAIL(msg) ::dssmr::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
