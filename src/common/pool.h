// Pooled allocation for short-lived simulation objects (network messages).
//
// A simulation allocates and frees millions of small message payloads; the
// general-purpose allocator's bookkeeping dominates that path. This pool
// carves fixed 16-byte-granular size classes out of 64 KiB chunks and
// recycles blocks through thread-local free lists.
//
// Threading model: a simulation is single-threaded, but the parallel sweep
// runner drives one simulation per worker thread. Free lists are
// thread-local (no locks on the hot path); chunks, once carved, are
// process-lifetime — they are intentionally never returned to the OS, so a
// block that migrates to another thread's free list can always be recycled
// safely. Peak usage is bounded by the per-thread simulation peak.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace dssmr::common {

class Pool {
 public:
  static constexpr std::size_t kGranularity = 16;
  static constexpr std::size_t kMaxPooled = 512;
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;

  static void* allocate(std::size_t bytes) {
    if (bytes == 0 || bytes > kMaxPooled) return ::operator new(bytes);
    const std::size_t cls = class_of(bytes);
    Lists& l = lists();
    if (void* p = l.head[cls]; p != nullptr) {
      l.head[cls] = *static_cast<void**>(p);
      ++l.reused;
      return p;
    }
    return carve(l, cls);
  }

  static void deallocate(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) return;
    if (bytes == 0 || bytes > kMaxPooled) {
      ::operator delete(p);
      return;
    }
    Lists& l = lists();
    const std::size_t cls = class_of(bytes);
    *static_cast<void**>(p) = l.head[cls];
    l.head[cls] = p;
  }

  struct Stats {
    std::uint64_t carved = 0;       // blocks carved fresh from chunks
    std::uint64_t reused = 0;       // blocks served from a free list
    std::uint64_t chunk_bytes = 0;  // chunk memory held by this thread
  };
  /// This thread's pool statistics (for tests and the perf suite).
  static Stats stats() {
    const Lists& l = lists();
    return {l.carved, l.reused, l.chunk_bytes};
  }

 private:
  static constexpr std::size_t kClasses = kMaxPooled / kGranularity;

  struct Lists {
    void* head[kClasses] = {};
    std::byte* cursor = nullptr;
    std::byte* chunk_end = nullptr;
    std::uint64_t carved = 0;
    std::uint64_t reused = 0;
    std::uint64_t chunk_bytes = 0;
  };

  static std::size_t class_of(std::size_t bytes) { return (bytes - 1) / kGranularity; }

  static Lists& lists() {
    thread_local Lists l;
    return l;
  }

  static void* carve(Lists& l, std::size_t cls) {
    const std::size_t block = (cls + 1) * kGranularity;
    if (l.cursor == nullptr || static_cast<std::size_t>(l.chunk_end - l.cursor) < block) {
      // Chunks are deliberately leaked (see file comment): blocks may sit on
      // another thread's free list after this thread exits.
      l.cursor = static_cast<std::byte*>(::operator new(kChunkBytes));
      l.chunk_end = l.cursor + kChunkBytes;
      l.chunk_bytes += kChunkBytes;
    }
    void* p = l.cursor;
    l.cursor += block;
    ++l.carved;
    return p;
  }
};

/// Minimal std allocator over Pool, for allocate_shared and containers whose
/// nodes fit the pooled size classes.
template <class T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "pool blocks are max_align_t-aligned");
    return static_cast<T*>(Pool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept { Pool::deallocate(p, n * sizeof(T)); }

  template <class U>
  friend bool operator==(const PoolAllocator&, const PoolAllocator<U>&) noexcept {
    return true;
  }
};

}  // namespace dssmr::common
