// Linearizability checker (Wing & Gong search with memoization).
//
// Takes a concurrent history of client operations — invocation/response
// times plus observed results — and decides whether some permutation that
// respects real-time precedence matches a sequential specification. Used by
// the property tests to validate the paper's correctness claim end-to-end:
// histories produced by DS-SMR (including moves, retries, fall-backs and
// leader crashes) must be linearizable.
//
// Complexity is exponential in the number of overlapping operations;
// intended for histories of a few dozen operations, which is what the tests
// generate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "smr/command.h"

namespace dssmr::lincheck {

struct Operation {
  std::size_t client = 0;
  Time invoke = 0;
  Time response = 0;
  smr::Command cmd;
  smr::ReplyCode code = smr::ReplyCode::kNok;
  net::MessagePtr reply;
};

/// A sequential specification: mutable state plus an `apply` that checks one
/// operation's observed outcome against the sequential semantics.
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;
  virtual std::unique_ptr<SequentialSpec> clone() const = 0;
  /// Applies `op`; returns false if the observed (code, reply) cannot occur
  /// at this point of any sequential execution.
  virtual bool apply(const Operation& op) = 0;
  /// Hash of the current state (memoization key component).
  virtual std::uint64_t state_hash() const = 0;
};

/// True iff `history` is linearizable w.r.t. `initial`.
/// Supports histories of up to 64 operations.
bool is_linearizable(const std::vector<Operation>& history, const SequentialSpec& initial);

// ---- the KV spec used by the protocol property tests -----------------------

class KvSpec final : public SequentialSpec {
 public:
  struct Entry {
    bool exists = false;
    std::int64_t num = 0;
    std::string data;
  };

  /// Declares pre-existing variables (mirrors Deployment::preload_var).
  void preload(VarId v, std::int64_t num, std::string data);

  std::unique_ptr<SequentialSpec> clone() const override;
  bool apply(const Operation& op) override;
  std::uint64_t state_hash() const override;

 private:
  std::map<VarId, Entry> vars_;  // ordered: hash must be order-independent-stable
};

}  // namespace dssmr::lincheck
