#include "lincheck/lincheck.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/assert.h"
#include "smr/kv.h"

namespace dssmr::lincheck {
namespace {

struct SearchState {
  const std::vector<Operation>* ops;
  std::unordered_set<std::uint64_t> visited;  // (done-mask hash ^ state hash)
};

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

bool search(SearchState& st, std::uint64_t done_mask, const SequentialSpec& state) {
  const auto& ops = *st.ops;
  const auto n = ops.size();
  if (done_mask == (n == 64 ? ~0ull : (1ull << n) - 1)) return true;

  const std::uint64_t key = mix(done_mask, state.state_hash());
  if (!st.visited.insert(key).second) return false;

  // An operation can be linearized next iff no *other pending* operation
  // responded before it was invoked.
  Time min_response = kTimeMax;
  for (std::size_t i = 0; i < n; ++i) {
    if ((done_mask >> i) & 1) continue;
    min_response = std::min(min_response, ops[i].response);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if ((done_mask >> i) & 1) continue;
    if (ops[i].invoke > min_response) continue;  // someone finished before it began
    auto next = state.clone();
    if (!next->apply(ops[i])) continue;
    if (search(st, done_mask | (1ull << i), *next)) return true;
  }
  return false;
}

}  // namespace

bool is_linearizable(const std::vector<Operation>& history, const SequentialSpec& initial) {
  DSSMR_ASSERT_MSG(history.size() <= 64, "checker supports up to 64 operations");
  SearchState st{&history, {}};
  return search(st, 0, initial);
}

// ---- KvSpec -----------------------------------------------------------------

void KvSpec::preload(VarId v, std::int64_t num, std::string data) {
  vars_[v] = Entry{true, num, std::move(data)};
}

std::unique_ptr<SequentialSpec> KvSpec::clone() const {
  return std::make_unique<KvSpec>(*this);
}

std::uint64_t KvSpec::state_hash() const {
  std::uint64_t h = 0x12345;
  for (const auto& [v, e] : vars_) {
    if (!e.exists) continue;
    h = mix(h, v.value);
    h = mix(h, static_cast<std::uint64_t>(e.num));
    h = mix(h, std::hash<std::string>{}(e.data));
  }
  return h;
}

bool KvSpec::apply(const Operation& op) {
  const smr::Command& cmd = op.cmd;
  const auto* reply = op.reply != nullptr ? net::msg_cast<kv::KvReply>(op.reply) : nullptr;

  auto exists = [&](VarId v) {
    auto it = vars_.find(v);
    return it != vars_.end() && it->second.exists;
  };

  if (cmd.type == smr::CommandType::kCreate) {
    const VarId v = cmd.write_set.at(0);
    if (exists(v)) return op.code == smr::ReplyCode::kNok;
    if (op.code == smr::ReplyCode::kNok) return false;
    vars_[v] = Entry{true, 0, ""};
    return true;
  }
  if (cmd.type == smr::CommandType::kDelete) {
    const VarId v = cmd.write_set.at(0);
    if (!exists(v)) return op.code == smr::ReplyCode::kNok;
    if (op.code == smr::ReplyCode::kNok) return false;
    vars_.erase(v);
    return true;
  }

  // Access commands: a kNok outcome is legal iff some accessed variable does
  // not exist at this point.
  bool all_exist = true;
  for (VarId v : cmd.vars()) all_exist = all_exist && exists(v);
  if (op.code == smr::ReplyCode::kNok) return !all_exist;
  if (!all_exist) return false;

  switch (cmd.op) {
    case kv::kGet: {
      const Entry& e = vars_[cmd.read_set.at(0)];
      return reply != nullptr && reply->num == e.num && reply->data == e.data;
    }
    case kv::kSet: {
      for (VarId v : cmd.write_set) vars_[v].data = cmd.arg;
      return true;
    }
    case kv::kAdd: {
      std::int64_t delta = std::stoll(cmd.arg);
      std::int64_t last = 0;
      for (VarId v : cmd.write_set) {
        vars_[v].num += delta;
        last = vars_[v].num;
      }
      return reply == nullptr || reply->num == last;
    }
    case kv::kSumTo: {
      std::int64_t sum = 0;
      for (VarId v : cmd.read_set) sum += vars_[v].num;
      vars_[cmd.write_set.at(0)].num = sum;
      return reply == nullptr || reply->num == sum;
    }
    default:
      return false;
  }
}

}  // namespace dssmr::lincheck
