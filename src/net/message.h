// Message base type for all inter-process traffic.
//
// Processes in the simulation share an address space, so "serialization" is
// a shared_ptr to an immutable payload; size_bytes() supplies the wire size
// used by the network's bandwidth model. Each protocol defines its own
// concrete message structs deriving from Message.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "common/pool.h"

namespace dssmr::net {

struct Message {
  virtual ~Message() = default;

  /// Human-readable type tag, for tracing and test assertions.
  virtual const char* type_name() const = 0;

  /// Simulated wire size, including headers. Drives the bandwidth model.
  virtual std::size_t size_bytes() const { return 64; }

  /// Causal trace id of the client command this payload belongs to, 0 when
  /// untraced. Overridden by command-carrying payloads so lower layers (the
  /// atomic multicast) can attribute spans without parsing SMR vocabulary.
  virtual std::uint64_t trace_id() const { return 0; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Allocates the payload and its shared_ptr control block in one pooled
/// block (common/pool.h): simulations create and retire millions of
/// messages, and the pool's thread-local free lists recycle them without
/// touching the general-purpose allocator.
template <class T, class... Args>
MessagePtr make_msg(Args&&... args) {
  return std::allocate_shared<T>(common::PoolAllocator<T>{}, std::forward<Args>(args)...);
}

/// Downcast helper; returns nullptr when the runtime type differs.
template <class T>
const T* msg_cast(const MessagePtr& m) {
  return dynamic_cast<const T*>(m.get());
}

/// Downcast that must succeed; aborts otherwise (protocol bug).
template <class T>
const T& msg_as(const MessagePtr& m) {
  const T* p = msg_cast<T>(m);
  DSSMR_ASSERT_MSG(p != nullptr, "message downcast to wrong type");
  return *p;
}

}  // namespace dssmr::net
