#include "net/network.h"

#include <cmath>
#include <utility>

#include "common/assert.h"

namespace dssmr::net {

namespace {

double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }

}  // namespace

Network::Network(sim::Engine& engine, NetworkConfig config, std::uint64_t seed)
    : engine_(engine), config_(config), rng_(seed) {
  config_.drop_probability = clamp01(config_.drop_probability);
}

ProcessId Network::add_process(Actor& actor, int rack) {
  DSSMR_ASSERT_MSG(actor.pid_ == kNoProcess, "actor registered twice");
  const ProcessId id{static_cast<std::uint32_t>(processes_.size())};
  actor.pid_ = id;
  processes_.push_back(&actor);
  racks_.push_back(rack);
  return id;
}

int Network::rack_of(ProcessId p) const {
  DSSMR_ASSERT(p.value < racks_.size());
  return racks_[p.value];
}

Duration Network::transit_time(ProcessId from, ProcessId to, std::size_t bytes) {
  if (from == to) return usec(1);  // loopback
  const bool same_rack = rack_of(from) == rack_of(to);
  Duration d = same_rack ? config_.intra_rack_latency : config_.inter_rack_latency;
  if (config_.jitter > 0) d += rng_.range(0, config_.jitter);
  if (config_.bandwidth_bytes_per_usec > 0) {
    d += static_cast<Duration>(
        std::llround(static_cast<double>(bytes) / config_.bandwidth_bytes_per_usec));
  }
  return d;
}

void Network::send_one(ProcessId from, ProcessId to, const MessagePtr& m,
                       std::size_t bytes) {
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  // Attributed drop checks, in the same short-circuit order as before (the
  // random draw happens only for messages that survive the deterministic
  // checks, keeping the rng stream — and thus run records — stable).
  if (crashed(from)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_sender_crashed;
    return;
  }
  if (!link_up(from, to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_link_down;
    return;
  }
  if (rng_.chance(config_.drop_probability)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_random;
    return;
  }

  Time arrival = engine_.now() + transit_time(from, to, bytes);
  if (config_.fifo) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from.value) << 32) | to.value;
    Time& front = fifo_front_[key];
    if (arrival < front) arrival = front;
    front = arrival;
  }

  engine_.schedule_at(arrival, [this, from, to, m] {
    if (crashed(to)) {
      ++stats_.messages_dropped;
      ++stats_.dropped_receiver_crashed;
      return;
    }
    if (!link_up(from, to)) {
      ++stats_.messages_dropped;
      ++stats_.dropped_link_down;
      return;
    }
    ++stats_.messages_delivered;
    processes_[to.value]->on_message(from, m);
  });
}

void Network::send(ProcessId from, ProcessId to, MessagePtr m) {
  DSSMR_ASSERT(m != nullptr);
  DSSMR_ASSERT(from.value < processes_.size() && to.value < processes_.size());
  send_one(from, to, m, m->size_bytes());
}

void Network::multisend(ProcessId from, std::span<const ProcessId> dests,
                        const MessagePtr& m) {
  DSSMR_ASSERT(m != nullptr);
  DSSMR_ASSERT(from.value < processes_.size());
  // The payload is immutable and shared: hoist the virtual size query out of
  // the loop and hand every destination the same MessagePtr (each scheduled
  // delivery takes one reference; nothing is deep-copied per destination).
  const std::size_t bytes = m->size_bytes();
  for (ProcessId d : dests) {
    DSSMR_ASSERT(d.value < processes_.size());
    send_one(from, d, m, bytes);
  }
}

void Network::crash(ProcessId p) {
  if (p.value >= crashed_.size()) crashed_.resize(p.value + 1, 0);
  crashed_[p.value] = 1;
}

void Network::recover(ProcessId p) {
  if (p.value < crashed_.size()) crashed_[p.value] = 0;
}

void Network::set_link(ProcessId a, ProcessId b, bool up) {
  set_link_directed(a, b, up);
  set_link_directed(b, a, up);
}

void Network::set_link_directed(ProcessId from, ProcessId to, bool up) {
  if (up) {
    down_links_.erase(link_key(from, to));
  } else {
    down_links_.insert(link_key(from, to));
  }
}

bool Network::link_up(ProcessId from, ProcessId to) const {
  return down_links_.empty() || !down_links_.contains(link_key(from, to));
}

void Network::set_drop_probability(double p) { config_.drop_probability = clamp01(p); }

void Network::partition_sets(const std::vector<ProcessId>& a,
                             const std::vector<ProcessId>& b, bool up) {
  for (ProcessId pa : a) {
    for (ProcessId pb : b) set_link(pa, pb, up);
  }
}

}  // namespace dssmr::net
