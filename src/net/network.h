// Simulated asynchronous network.
//
// Models the paper's testbed topology: processes live in racks; intra-rack
// hops are cheaper than inter-rack hops; link bandwidth adds a per-byte
// transfer cost (so shipping a large state variable during a `move` costs
// more than a signal). Channels are FIFO per sender/receiver pair, lossy
// only when a fault plan says so, and deliver nothing to or from crashed
// processes.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "sim/engine.h"

namespace dssmr::net {

/// A participant in the distributed system. Implementations register with a
/// Network, which assigns their ProcessId and routes deliveries to on_message.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called by the network, in virtual time, once per delivered message.
  virtual void on_message(ProcessId from, const MessagePtr& m) = 0;

  ProcessId pid() const { return pid_; }

 private:
  friend class Network;
  ProcessId pid_ = kNoProcess;
};

struct NetworkConfig {
  Duration intra_rack_latency = usec(50);
  Duration inter_rack_latency = usec(150);
  /// Uniform extra delay in [0, jitter] added per message.
  Duration jitter = usec(10);
  /// 1 Gbps = 125 bytes per microsecond.
  double bandwidth_bytes_per_usec = 125.0;
  /// Probability that any given message is silently lost.
  double drop_probability = 0.0;
  /// Per-pair FIFO delivery (true models TCP-like channels).
  bool fifo = true;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  /// Total drops (sum of the attributed categories below).
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Drop attribution: a fault-injection run needs to distinguish "the sender
  /// was crashed" from "the link was cut" from "random loss" to explain where
  /// traffic went (messages_dropped alone conflates all of them).
  std::uint64_t dropped_sender_crashed = 0;
  std::uint64_t dropped_receiver_crashed = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_random = 0;
};

class Network {
 public:
  Network(sim::Engine& engine, NetworkConfig config, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `actor` and assigns its ProcessId. The actor must outlive the
  /// network. `rack` selects the latency domain.
  ProcessId add_process(Actor& actor, int rack = 0);

  /// Sends `m` from `from` to `to`. Delivery is scheduled on the engine;
  /// crashed endpoints and unlucky draws drop the message.
  void send(ProcessId from, ProcessId to, MessagePtr m);

  /// Sends to every id in `dests` (duplicates allowed; all destinations
  /// share the same immutable payload — no per-destination copies).
  void multisend(ProcessId from, std::span<const ProcessId> dests, const MessagePtr& m);
  void multisend(ProcessId from, const std::vector<ProcessId>& dests, const MessagePtr& m) {
    multisend(from, std::span<const ProcessId>(dests), m);
  }

  /// Marks a process crashed: all in-flight and future traffic involving it
  /// is dropped until recover().
  void crash(ProcessId p);
  void recover(ProcessId p);
  bool crashed(ProcessId p) const {
    return p.value < crashed_.size() && crashed_[p.value] != 0;
  }

  /// Cuts / restores both directions of the link between two processes.
  /// While a link is down, traffic over it — including messages already in
  /// flight — is dropped. Used to inject network partitions in tests.
  void set_link(ProcessId a, ProcessId b, bool up);
  /// Directional variant: controls only `from` -> `to`, so asymmetric
  /// failures (a hears b, b never hears a) can be expressed.
  void set_link_directed(ProcessId from, ProcessId to, bool up);
  bool link_up(ProcessId from, ProcessId to) const;

  /// Cuts every link between the two sets (a full network partition).
  void partition_sets(const std::vector<ProcessId>& a, const std::vector<ProcessId>& b,
                      bool up);

  std::size_t process_count() const { return processes_.size(); }
  int rack_of(ProcessId p) const;
  sim::Engine& engine() { return engine_; }
  const NetworkStats& stats() const { return stats_; }
  const NetworkConfig& config() const { return config_; }

  /// Replaces the drop probability (used by fault injection mid-run).
  /// Out-of-range values are clamped to [0, 1] — Rng::chance would clamp
  /// silently anyway, and a plan asking for "150% loss" should behave like a
  /// dead network, not wrap around or be ignored.
  void set_drop_probability(double p);

 private:
  Duration transit_time(ProcessId from, ProcessId to, std::size_t bytes);
  /// Shared implementation of send/multisend with the payload size hoisted.
  void send_one(ProcessId from, ProcessId to, const MessagePtr& m, std::size_t bytes);

  sim::Engine& engine_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Actor*> processes_;
  std::vector<int> racks_;
  /// Directed: (from, to) order matters, so one direction of a pair can be
  /// down while the other stays up.
  static std::uint64_t link_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  /// Crash flags, indexed by pid (dense: checked twice per message).
  std::vector<std::uint8_t> crashed_;
  /// Down directed links are rare (fault runs only); link_up() fast-paths on
  /// empty().
  std::unordered_set<std::uint64_t> down_links_;
  /// Earliest admissible arrival per (from,to) pair, for FIFO channels.
  common::FlatMap<std::uint64_t, Time> fifo_front_;
  NetworkStats stats_;
};

}  // namespace dssmr::net
