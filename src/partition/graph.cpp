#include "partition/graph.h"

#include <algorithm>

#include "common/assert.h"

namespace dssmr::partition {

Weight Csr::total_vertex_weight() const {
  Weight t = 0;
  for (Weight w : vwgt) t += w;
  return t;
}

Weight Csr::degree_weight(NodeId u) const {
  Weight t = 0;
  for (std::uint64_t i = xadj[u]; i < xadj[u + 1]; ++i) t += ewgt[i];
  return t;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  touch(u);
  touch(v);
  if (u == v) return;  // self-loops carry no cut information
  edges_[key(u, v)] += w;
}

void GraphBuilder::touch(NodeId v) {
  if (static_cast<std::size_t>(v) + 1 > vertex_count_) vertex_count_ = v + 1;
}

Weight GraphBuilder::edge_weight(NodeId u, NodeId v) const {
  auto it = edges_.find(key(u, v));
  return it == edges_.end() ? 0 : it->second;
}

std::size_t GraphBuilder::memory_bytes() const {
  // unordered_map node: key + value + hash bucket overhead (~2 pointers).
  return edges_.size() * (sizeof(std::uint64_t) + sizeof(Weight) + 2 * sizeof(void*)) +
         edges_.bucket_count() * sizeof(void*);
}

Csr GraphBuilder::build() const {
  Csr g;
  const std::size_t n = vertex_count_;
  g.vwgt.assign(n, 1);
  g.xadj.assign(n + 1, 0);

  for (const auto& [k, w] : edges_) {
    (void)w;
    const NodeId u = static_cast<NodeId>(k >> 32);
    const NodeId v = static_cast<NodeId>(k & 0xffffffffu);
    g.xadj[u + 1]++;
    g.xadj[v + 1]++;
  }
  for (std::size_t i = 1; i <= n; ++i) g.xadj[i] += g.xadj[i - 1];

  g.adj.resize(edges_.size() * 2);
  g.ewgt.resize(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (const auto& [k, w] : edges_) {
    const NodeId u = static_cast<NodeId>(k >> 32);
    const NodeId v = static_cast<NodeId>(k & 0xffffffffu);
    g.adj[cursor[u]] = v;
    g.ewgt[cursor[u]++] = w;
    g.adj[cursor[v]] = u;
    g.ewgt[cursor[v]++] = w;
  }
  return g;
}

void GraphBuilder::clear() {
  edges_.clear();
  vertex_count_ = 0;
}

Weight edge_cut(const Csr& g, const std::vector<std::uint32_t>& part) {
  DSSMR_ASSERT(part.size() == g.vertex_count());
  Weight cut = 0;
  for (NodeId u = 0; u < g.vertex_count(); ++u) {
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      const NodeId v = g.adj[i];
      if (u < v && part[u] != part[v]) cut += g.ewgt[i];
    }
  }
  return cut;
}

double edge_cut_fraction(const Csr& g, const std::vector<std::uint32_t>& part) {
  if (g.edge_count() == 0) return 0.0;
  std::uint64_t cut = 0;
  for (NodeId u = 0; u < g.vertex_count(); ++u) {
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      const NodeId v = g.adj[i];
      if (u < v && part[u] != part[v]) ++cut;
    }
  }
  return static_cast<double>(cut) / static_cast<double>(g.edge_count());
}

}  // namespace dssmr::partition
