#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/assert.h"

namespace dssmr::partition {
namespace {

struct Level {
  Csr graph;
  /// fine vertex -> coarse vertex of the NEXT level (empty at the coarsest).
  std::vector<NodeId> to_coarse;
};

/// Heavy-edge matching; returns the fine->coarse map and the coarse size.
std::pair<std::vector<NodeId>, std::size_t> match(const Csr& g) {
  const std::size_t n = g.vertex_count();
  std::vector<NodeId> mate(n, static_cast<NodeId>(-1));
  for (NodeId u = 0; u < n; ++u) {
    if (mate[u] != static_cast<NodeId>(-1)) continue;
    NodeId best = static_cast<NodeId>(-1);
    Weight best_w = -1;
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      const NodeId v = g.adj[i];
      if (v == u || mate[v] != static_cast<NodeId>(-1)) continue;
      if (g.ewgt[i] > best_w || (g.ewgt[i] == best_w && v < best)) {
        best = v;
        best_w = g.ewgt[i];
      }
    }
    if (best != static_cast<NodeId>(-1)) {
      mate[u] = best;
      mate[best] = u;
    } else {
      mate[u] = u;
    }
  }
  // Assign coarse ids in fine-id order (deterministic).
  std::vector<NodeId> to_coarse(n, static_cast<NodeId>(-1));
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (to_coarse[u] != static_cast<NodeId>(-1)) continue;
    to_coarse[u] = next;
    if (mate[u] != u) to_coarse[mate[u]] = next;
    ++next;
  }
  return {std::move(to_coarse), next};
}

Csr contract(const Csr& g, const std::vector<NodeId>& to_coarse, std::size_t nc) {
  Csr c;
  c.vwgt.assign(nc, 0);
  for (NodeId u = 0; u < g.vertex_count(); ++u) c.vwgt[to_coarse[u]] += g.vwgt[u];

  // Sort-and-merge contraction: gathers each fine edge once as a packed
  // (cu, cv) key, then merges duplicates in one linear pass. Much friendlier
  // to memory than a hash map on multi-million-edge graphs.
  std::vector<std::pair<std::uint64_t, Weight>> edges;
  edges.reserve(g.adj.size() / 2);
  for (NodeId u = 0; u < g.vertex_count(); ++u) {
    const NodeId cu = to_coarse[u];
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      const NodeId cv = to_coarse[g.adj[i]];
      if (cu >= cv) continue;  // count each fine edge once; skip internal edges
      edges.emplace_back((static_cast<std::uint64_t>(cu) << 32) | cv, g.ewgt[i]);
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges.size();) {
    std::uint64_t key = edges[i].first;
    Weight w = 0;
    while (i < edges.size() && edges[i].first == key) w += edges[i++].second;
    edges[out++] = {key, w};
  }
  edges.resize(out);

  c.xadj.assign(nc + 1, 0);
  for (const auto& [k, w] : edges) {
    (void)w;
    c.xadj[(k >> 32) + 1]++;
    c.xadj[(k & 0xffffffffu) + 1]++;
  }
  for (std::size_t i = 1; i <= nc; ++i) c.xadj[i] += c.xadj[i - 1];
  c.adj.resize(edges.size() * 2);
  c.ewgt.resize(edges.size() * 2);
  std::vector<std::uint64_t> cursor(c.xadj.begin(), c.xadj.end() - 1);
  for (const auto& [k, w] : edges) {
    const NodeId cu = static_cast<NodeId>(k >> 32);
    const NodeId cv = static_cast<NodeId>(k & 0xffffffffu);
    c.adj[cursor[cu]] = cv;
    c.ewgt[cursor[cu]++] = w;
    c.adj[cursor[cv]] = cu;
    c.ewgt[cursor[cv]++] = w;
  }
  return c;
}

/// Greedy balanced initial partitioning of the coarsest graph.
std::vector<std::uint32_t> initial_partition(const Csr& g, std::uint32_t k, Weight cap) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> part(n, 0);
  std::vector<Weight> weight(k, 0);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return g.vwgt[a] > g.vwgt[b]; });

  std::vector<Weight> conn(k, 0);
  std::vector<bool> placed(n, false);
  for (NodeId u : order) {
    std::fill(conn.begin(), conn.end(), 0);
    for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
      if (placed[g.adj[i]]) conn[part[g.adj[i]]] += g.ewgt[i];
    }
    std::uint32_t best = k;  // sentinel
    for (std::uint32_t p = 0; p < k; ++p) {
      if (weight[p] + g.vwgt[u] > cap) continue;
      if (best == k || conn[p] > conn[best] ||
          (conn[p] == conn[best] && weight[p] < weight[best])) {
        best = p;
      }
    }
    if (best == k) {
      // Nothing fits under the cap (huge coarse vertex): least-loaded part.
      best = 0;
      for (std::uint32_t p = 1; p < k; ++p) {
        if (weight[p] < weight[best]) best = p;
      }
    }
    part[u] = best;
    weight[best] += g.vwgt[u];
    placed[u] = true;
  }
  return part;
}

/// Boundary FM-style refinement sweeps. Moves a vertex to the part it is most
/// connected to when that strictly reduces the cut (or keeps the cut and
/// strictly improves balance) without violating the cap.
void refine(const Csr& g, std::uint32_t k, Weight cap, std::vector<std::uint32_t>& part,
            std::vector<Weight>& weight, int passes) {
  const std::size_t n = g.vertex_count();
  std::vector<Weight> conn(k, 0);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (NodeId u = 0; u < n; ++u) {
      const std::uint32_t from = part[u];
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (std::uint64_t i = g.xadj[u]; i < g.xadj[u + 1]; ++i) {
        conn[part[g.adj[i]]] += g.ewgt[i];
        boundary = boundary || part[g.adj[i]] != from;
      }
      if (!boundary) continue;
      std::uint32_t best = from;
      for (std::uint32_t p = 0; p < k; ++p) {
        if (p == from || weight[p] + g.vwgt[u] > cap) continue;
        const Weight gain = conn[p] - conn[from];
        const Weight best_gain = conn[best] - conn[from];
        if (gain > best_gain ||
            (gain == best_gain && best != from && weight[p] < weight[best])) {
          best = p;
        }
      }
      if (best == from) continue;
      const Weight gain = conn[best] - conn[from];
      const bool balance_gain = weight[best] + g.vwgt[u] < weight[from];
      if (gain > 0 || (gain == 0 && balance_gain)) {
        weight[from] -= g.vwgt[u];
        weight[best] += g.vwgt[u];
        part[u] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<std::uint32_t> hash_partition(std::size_t n, std::uint32_t k) {
  std::vector<std::uint32_t> part(n);
  for (std::size_t v = 0; v < n; ++v) part[v] = static_cast<std::uint32_t>(v % k);
  return part;
}

PartitionResult partition_graph(const Csr& g, const PartitionerConfig& cfg) {
  DSSMR_ASSERT(cfg.k >= 1);
  PartitionResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.part_weights.assign(cfg.k, 0);
    return result;
  }
  if (cfg.k == 1) {
    result.part.assign(n, 0);
    result.part_weights = {g.total_vertex_weight()};
    return result;
  }

  const Weight total = g.total_vertex_weight();
  const Weight cap = std::max<Weight>(
      static_cast<Weight>(std::ceil(cfg.imbalance * static_cast<double>(total) /
                                    static_cast<double>(cfg.k))),
      1);

  // Coarsening.
  std::vector<Level> levels;
  levels.push_back({g, {}});
  const std::size_t target = std::max<std::size_t>(cfg.coarsest_size, cfg.k * 8);
  while (levels.back().graph.vertex_count() > target) {
    const Csr& cur = levels.back().graph;
    auto [to_coarse, nc] = match(cur);
    if (static_cast<double>(nc) > 0.95 * static_cast<double>(cur.vertex_count())) break;
    Csr coarse = contract(cur, to_coarse, nc);
    levels.back().to_coarse = std::move(to_coarse);
    levels.push_back({std::move(coarse), {}});
  }

  // Initial partitioning of the coarsest level.
  std::vector<std::uint32_t> part = initial_partition(levels.back().graph, cfg.k, cap);
  std::vector<Weight> weight(cfg.k, 0);
  for (NodeId u = 0; u < levels.back().graph.vertex_count(); ++u) {
    weight[part[u]] += levels.back().graph.vwgt[u];
  }
  refine(levels.back().graph, cfg.k, cap, part, weight, cfg.refine_passes);

  // Uncoarsening + refinement.
  for (std::size_t li = levels.size() - 1; li-- > 0;) {
    const Level& fine = levels[li];
    std::vector<std::uint32_t> fine_part(fine.graph.vertex_count());
    for (NodeId u = 0; u < fine.graph.vertex_count(); ++u) {
      fine_part[u] = part[fine.to_coarse[u]];
    }
    part = std::move(fine_part);
    std::fill(weight.begin(), weight.end(), 0);
    for (NodeId u = 0; u < fine.graph.vertex_count(); ++u) {
      weight[part[u]] += fine.graph.vwgt[u];
    }
    refine(fine.graph, cfg.k, cap, part, weight, cfg.refine_passes);
  }

  result.part = std::move(part);
  result.part_weights = std::move(weight);
  result.cut = edge_cut(g, result.part);
  return result;
}

}  // namespace dssmr::partition
