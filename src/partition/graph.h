// Undirected weighted graphs: an accumulating builder (the oracle's workload
// graph) and a CSR form consumed by the partitioner.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dssmr::partition {

using NodeId = std::uint32_t;
using Weight = std::int64_t;

/// Compressed-sparse-row graph with vertex and edge weights.
struct Csr {
  std::vector<std::uint64_t> xadj;  // size n+1
  std::vector<NodeId> adj;          // size 2m
  std::vector<Weight> ewgt;         // size 2m
  std::vector<Weight> vwgt;         // size n

  std::size_t vertex_count() const { return vwgt.size(); }
  std::size_t edge_count() const { return adj.size() / 2; }

  Weight total_vertex_weight() const;
  Weight degree_weight(NodeId u) const;
};

/// Accumulates weighted edges; repeated edges add up (each co-access of two
/// variables strengthens their affinity). Self-loops are ignored.
class GraphBuilder {
 public:
  void add_edge(NodeId u, NodeId v, Weight w = 1);
  /// Ensures the vertex exists even if isolated.
  void touch(NodeId v);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edges_.size(); }
  Weight edge_weight(NodeId u, NodeId v) const;

  /// Approximate resident size, for the partitioner-scaling experiment.
  std::size_t memory_bytes() const;

  Csr build() const;
  void clear();

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::unordered_map<std::uint64_t, Weight> edges_;
  std::size_t vertex_count_ = 0;
};

/// Sum of weights of edges whose endpoints lie in different parts.
Weight edge_cut(const Csr& g, const std::vector<std::uint32_t>& part);

/// Fraction of edges cut (unweighted), as the paper reports it.
double edge_cut_fraction(const Csr& g, const std::vector<std::uint32_t>& part);

}  // namespace dssmr::partition
