// Multilevel k-way graph partitioner — the repository's METIS substitute.
//
// Classic three-phase scheme (Karypis & Kumar):
//   1. Coarsening by heavy-edge matching until the graph is small.
//   2. Greedy balanced initial partitioning of the coarsest graph.
//   3. Uncoarsening with boundary FM-style refinement at every level.
//
// The implementation is completely deterministic (vertex order breaks all
// ties), which the oracle requires: every oracle replica recomputes the same
// "ideal" partitioning from the same workload graph.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/graph.h"

namespace dssmr::partition {

struct PartitionerConfig {
  std::uint32_t k = 2;
  /// Maximum part weight = imbalance * (total / k).
  double imbalance = 1.05;
  /// Stop coarsening below this many vertices (scaled by k internally).
  std::size_t coarsest_size = 128;
  /// Refinement sweeps per level.
  int refine_passes = 8;
};

struct PartitionResult {
  std::vector<std::uint32_t> part;   // size n, values in [0, k)
  Weight cut = 0;                    // weighted edge cut
  std::vector<Weight> part_weights;  // size k
};

/// Partitions `g` into cfg.k balanced parts minimizing edge cut.
PartitionResult partition_graph(const Csr& g, const PartitionerConfig& cfg);

/// Baseline placement: vertex v -> v % k (what a hash-placement scheme does).
std::vector<std::uint32_t> hash_partition(std::size_t n, std::uint32_t k);

}  // namespace dssmr::partition
