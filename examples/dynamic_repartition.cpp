// Dynamic repartitioning demo (the DynaStar-style oracle extension).
//
// The oracle learns the workload graph from hints, periodically recomputes
// an ideal partitioning with the multilevel partitioner, and steers moves
// toward it. The demo drives a clustered workload, then prints how the
// mapping converges and how many moves each phase needed.
//
// Build and run:  ./build/examples/dynamic_repartition
#include <cstdio>

#include "chirper/chirper.h"
#include "core/dynastar_policy.h"
#include "harness/deployment.h"
#include "harness/experiment.h"
#include "workload/chirper_workload.h"

using namespace dssmr;

int main() {
  // Two tight friend-circles of 8 users each, scattered across 2 partitions.
  harness::DeploymentConfig cfg;
  cfg.partitions = 2;
  cfg.replicas_per_partition = 2;
  cfg.clients = 4;
  cfg.strategy = core::Strategy::kDynaStar;
  cfg.client_hints = true;
  cfg.oracle.oracle_issues_moves = true;

  core::DynaStarPolicy::Config pc;
  pc.repartition_every_hints = 60;
  pc.partitioner.k = 2;
  harness::Deployment d{cfg, chirper::chirper_app_factory(),
                        [pc] { return std::make_unique<core::DynaStarPolicy>(pc); }};

  workload::SocialGraph graph{16};
  for (std::uint64_t c = 0; c < 2; ++c) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      for (std::uint64_t j = i + 1; j < 8; ++j) {
        graph.add_edge(VarId{c * 8 + i}, VarId{c * 8 + j});
      }
    }
  }
  for (std::uint64_t u = 0; u < 16; ++u) {
    chirper::UserValue user;
    user.followers = graph.neighbors(VarId{u});
    user.following = user.followers;
    d.preload_var(VarId{u}, d.partition_gid(u % 2), user);  // deliberately scattered
  }
  d.start();
  d.settle();

  auto count_split_circles = [&] {
    int split = 0;
    for (std::uint64_t c = 0; c < 2; ++c) {
      GroupId first = d.oracle(0).mapping().locate(VarId{c * 8});
      for (std::uint64_t i = 1; i < 8; ++i) {
        if (d.oracle(0).mapping().locate(VarId{c * 8 + i}) != first) {
          ++split;
          break;
        }
      }
    }
    return split;
  };

  std::printf("before: %d of 2 friend-circles are split across partitions\n",
              count_split_circles());

  // Drive posts with hints; the oracle learns, repartitions, and collocates.
  workload::ChirperWorkloadConfig wcfg;
  wcfg.mix = workload::mixes::kPostOnly;
  wcfg.hint_posts = true;
  workload::ChirperWorkload wl{graph, wcfg, 3};
  harness::ClosedLoopDriver driver{d, [&wl] { return wl.next(); }};
  driver.run(/*warmup=*/0, /*measure=*/sec(3));

  std::printf("after %llu commands: %d circles split, %llu repartitionings, %llu moves\n",
              static_cast<unsigned long long>(driver.measured_ok()), count_split_circles(),
              static_cast<unsigned long long>(d.oracle(0).policy().repartition_count()),
              static_cast<unsigned long long>(d.metrics().counter("oracle.moves_issued")));
  std::printf("oracle workload graph: %llu hint edges received\n",
              static_cast<unsigned long long>(d.metrics().counter("oracle.hints")));

  const bool converged = count_split_circles() == 0;
  std::printf("%s\n", converged ? "converged: every circle lives on one partition"
                                : "not fully converged (rerun with a longer drive)");
  return converged ? 0 : 1;
}
