// Chirper demo: the paper's social network running on DS-SMR.
//
// A small cast of users follows each other and posts; the demo prints the
// timelines and shows how DS-SMR migrates users so that each post becomes a
// single-partition command.
//
// Build and run:  ./build/examples/chirper_demo
#include <cstdio>

#include "chirper/chirper.h"
#include "harness/deployment.h"

using namespace dssmr;

namespace {

constexpr VarId kAda{0}, kBob{1}, kCyd{2}, kDee{3};

const char* name_of(VarId u) {
  switch (u.value) {
    case 0:
      return "ada";
    case 1:
      return "bob";
    case 2:
      return "cyd";
    case 3:
      return "dee";
  }
  return "???";
}

smr::ReplyCode call(harness::Deployment& d, std::size_t client, smr::Command cmd,
                    net::MessagePtr* reply = nullptr) {
  bool done = false;
  smr::ReplyCode rc = smr::ReplyCode::kNok;
  d.client(client).issue(std::move(cmd), [&](smr::ReplyCode c, const net::MessagePtr& r) {
    done = true;
    rc = c;
    if (reply != nullptr) *reply = r;
  });
  while (!done) d.engine().run_for(msec(5));
  return rc;
}

void show_timeline(harness::Deployment& d, VarId user) {
  net::MessagePtr reply;
  call(d, 0, chirper::make_get_timeline(user), &reply);
  const auto& tl = net::msg_as<chirper::TimelineReply>(reply);
  std::printf("  @%s's timeline (%zu posts):\n", name_of(user), tl.posts.size());
  for (const auto& post : tl.posts) {
    std::printf("    [@%s] %s\n", name_of(post.author), post.text.c_str());
  }
}

void show_placement(harness::Deployment& d) {
  const auto& m = d.oracle(0).mapping();
  std::printf("  placement:");
  for (VarId u : {kAda, kBob, kCyd, kDee}) {
    std::printf(" @%s->P%u", name_of(u), m.locate(u).value);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  harness::DeploymentConfig cfg;
  cfg.partitions = 2;
  cfg.replicas_per_partition = 3;
  cfg.clients = 2;
  cfg.strategy = core::Strategy::kDssmr;
  harness::Deployment d{cfg, chirper::chirper_app_factory(),
                        [] { return std::make_unique<core::DssmrPolicy>(); }};

  // ada & cyd start on partition 0; bob & dee on partition 1.
  for (VarId u : {kAda, kCyd}) d.preload_var(u, d.partition_gid(0), chirper::UserValue{});
  for (VarId u : {kBob, kDee}) d.preload_var(u, d.partition_gid(1), chirper::UserValue{});
  d.start();
  d.settle();

  std::printf("== initial placement ==\n");
  show_placement(d);

  std::printf("\n== bob and cyd follow ada ==\n");
  call(d, 0, chirper::make_follow(kBob, kAda));
  call(d, 1, chirper::make_follow(kCyd, kAda));
  show_placement(d);

  std::printf("\n== ada posts (fan-out to bob & cyd) ==\n");
  call(d, 0, chirper::make_post(kAda, {kBob, kCyd}, "hello, replicated world"));
  show_placement(d);
  show_timeline(d, kBob);
  show_timeline(d, kCyd);
  show_timeline(d, kDee);

  std::printf("\n== dee follows ada; ada posts again ==\n");
  call(d, 1, chirper::make_follow(kDee, kAda));
  call(d, 0, chirper::make_post(kAda, {kBob, kCyd, kDee}, "second chirp"));
  show_timeline(d, kDee);

  std::printf("\n== bob unfollows and misses the next post ==\n");
  call(d, 0, chirper::make_unfollow(kBob, kAda));
  call(d, 0, chirper::make_post(kAda, {kCyd, kDee}, "bob won't see this"));
  show_timeline(d, kBob);
  show_timeline(d, kCyd);

  std::printf("\nprotocol work: %llu moves, %llu consults, %llu retries\n",
              static_cast<unsigned long long>(d.metrics().counter("client.moves")),
              static_cast<unsigned long long>(d.metrics().counter("client.consults")),
              static_cast<unsigned long long>(d.metrics().counter("client.retries")));
  return 0;
}
