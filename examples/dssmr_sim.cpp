// dssmr_sim — command-line experiment runner.
//
// Runs one Chirper experiment with the full stack and prints the measured
// throughput/latency/protocol counters; every knob of the evaluation is a
// flag. Useful for exploring configurations beyond the paper's grid.
//
//   ./build/examples/dssmr_sim --strategy=dssmr --partitions=4 --mix=post \
//        --edge-cut=0.05 --users=2048 --measure-s=4 --seed=7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"

using namespace dssmr;

namespace {

struct Flags {
  std::string strategy = "dssmr";  // ssmr-hash | ssmr-metis | dssmr | dynastar
  std::string mix = "post";        // timeline | post | mix | follow
  std::size_t partitions = 4;
  std::size_t clients_per_partition = 8;
  std::uint32_t users = 2048;
  double edge_cut = 0.01;
  bool controlled_cut = true;
  double zipf = 0.0;
  int warmup_s = 3;
  int measure_s = 3;
  std::uint64_t seed = 42;
  bool cache = true;
  bool series = false;  // print per-second series too
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dssmr_sim [--strategy=ssmr-hash|ssmr-metis|dssmr|dynastar]\n"
      "                 [--mix=timeline|post|mix|follow] [--partitions=N]\n"
      "                 [--clients=N(per partition)] [--users=N]\n"
      "                 [--edge-cut=F] [--random-graph] [--zipf=THETA]\n"
      "                 [--warmup-s=N] [--measure-s=N] [--seed=N]\n"
      "                 [--no-cache] [--series]\n");
  std::exit(2);
}

Flags parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--strategy", v)) {
      f.strategy = v;
    } else if (parse_flag(argv[i], "--mix", v)) {
      f.mix = v;
    } else if (parse_flag(argv[i], "--partitions", v)) {
      f.partitions = std::strtoul(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--clients", v)) {
      f.clients_per_partition = std::strtoul(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--users", v)) {
      f.users = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--edge-cut", v)) {
      f.edge_cut = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--zipf", v)) {
      f.zipf = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--warmup-s", v)) {
      f.warmup_s = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--measure-s", v)) {
      f.measure_s = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--seed", v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--random-graph") == 0) {
      f.controlled_cut = false;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      f.cache = false;
    } else if (std::strcmp(argv[i], "--series") == 0) {
      f.series = true;
    } else {
      usage();
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags f = parse(argc, argv);

  harness::ChirperRunConfig cfg;
  if (f.strategy == "ssmr-hash") {
    cfg.strategy = core::Strategy::kStaticSsmr;
    cfg.placement = harness::Placement::kHash;
  } else if (f.strategy == "ssmr-metis") {
    cfg.strategy = core::Strategy::kStaticSsmr;
    cfg.placement = harness::Placement::kMetis;
  } else if (f.strategy == "dssmr") {
    cfg.strategy = core::Strategy::kDssmr;
  } else if (f.strategy == "dynastar") {
    cfg.strategy = core::Strategy::kDynaStar;
    cfg.workload.hint_posts = true;
  } else {
    usage();
  }

  if (f.mix == "timeline") {
    cfg.workload.mix = workload::mixes::kTimelineOnly;
  } else if (f.mix == "post") {
    cfg.workload.mix = workload::mixes::kPostOnly;
  } else if (f.mix == "mix") {
    cfg.workload.mix = workload::mixes::kTimelineHeavy;
  } else if (f.mix == "follow") {
    cfg.workload.mix = workload::mixes::kFollowChurn;
  } else {
    usage();
  }

  cfg.partitions = f.partitions;
  cfg.clients_per_partition = f.clients_per_partition;
  cfg.graph.n = f.users;
  cfg.use_controlled_cut = f.controlled_cut;
  cfg.controlled_edge_cut = f.edge_cut;
  cfg.workload.zipf_theta = f.zipf;
  cfg.warmup = sec(f.warmup_s);
  cfg.measure = sec(f.measure_s);
  cfg.seed = f.seed;
  cfg.client_cache = f.cache;

  std::printf("running %s, %zu partitions, mix=%s, users=%u, edge-cut=%s, seed=%llu...\n",
              f.strategy.c_str(), f.partitions, f.mix.c_str(), f.users,
              f.controlled_cut ? std::to_string(f.edge_cut).c_str() : "organic",
              static_cast<unsigned long long>(f.seed));
  const auto r = harness::run_chirper(cfg);

  std::printf("\nthroughput        : %.0f cps\n", r.throughput_cps);
  std::printf("latency avg       : %.0f us (p50 %lld, p95 %lld, p99 %lld)\n",
              r.latency_avg_us, static_cast<long long>(r.latency_p50_us),
              static_cast<long long>(r.latency_p95_us),
              static_cast<long long>(r.latency_p99_us));
  std::printf("ok / not-ok       : %llu / %llu\n", static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.nok));
  std::printf("placement edgecut : %.2f%%\n", 100.0 * r.placement_edge_cut);
  for (const char* c : {"moves.total", "client.retries", "client.fallbacks",
                        "client.consults", "client.cache_hits", "oracle.consults"}) {
    std::printf("%-18s: %llu\n", c, static_cast<unsigned long long>(r.counter(c)));
  }
  if (f.series) {
    std::printf("tput/s  :");
    for (double v : r.tput_series) std::printf(" %.0f", v);
    std::printf("\nmoves/s :");
    for (double v : r.moves_series) std::printf(" %.0f", v);
    std::printf("\n");
  }
  return 0;
}
