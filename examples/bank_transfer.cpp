// Bank-transfer example: how to implement YOUR OWN replicated service.
//
// Everything application-specific lives in this file: a VarValue for
// accounts, an AppStateMachine with the service logic, and command builders.
// The library supplies linearizable replication, dynamic partitioning and
// the oracle — the application never mentions partitions.
//
// The workload creates hot transfer pairs; DS-SMR migrates the two accounts
// of a pair onto one partition, so repeated transfers stay single-partition.
//
// Build and run:  ./build/examples/bank_transfer
#include <charconv>
#include <cstdio>
#include <memory>

#include "harness/deployment.h"
#include "smr/app.h"
#include "smr/command.h"

using namespace dssmr;

namespace bank {

enum Op : std::uint32_t { kDeposit = 1, kTransfer = 2, kBalance = 3, kAudit = 4 };

struct Account final : smr::VarValue {
  std::int64_t balance = 0;
  explicit Account(std::int64_t b = 0) : balance(b) {}
  std::unique_ptr<smr::VarValue> clone() const override {
    return std::make_unique<Account>(balance);
  }
  std::size_t size_bytes() const override { return 16; }
};

struct MoneyReply final : net::Message {
  std::int64_t amount;
  bool ok;
  MoneyReply(std::int64_t a, bool o) : amount(a), ok(o) {}
  const char* type_name() const override { return "bank.reply"; }
};

class BankApp final : public smr::AppStateMachine {
 public:
  net::MessagePtr execute(const smr::Command& cmd, smr::ExecutionView& view) override {
    switch (cmd.op) {
      case kDeposit: {
        auto* acc = view.get_as<Account>(cmd.write_set.at(0));
        if (acc == nullptr) return net::make_msg<MoneyReply>(0, false);
        acc->balance += parse(cmd.arg);
        return net::make_msg<MoneyReply>(acc->balance, true);
      }
      case kTransfer: {
        auto* from = view.get_as<Account>(cmd.write_set.at(0));
        auto* to = view.get_as<Account>(cmd.write_set.at(1));
        if (from == nullptr || to == nullptr) return net::make_msg<MoneyReply>(0, false);
        const std::int64_t amount = parse(cmd.arg);
        if (from->balance < amount) return net::make_msg<MoneyReply>(from->balance, false);
        from->balance -= amount;
        to->balance += amount;
        return net::make_msg<MoneyReply>(from->balance, true);
      }
      case kBalance: {
        const auto* acc = view.get_as<Account>(cmd.read_set.at(0));
        return net::make_msg<MoneyReply>(acc != nullptr ? acc->balance : 0, acc != nullptr);
      }
      case kAudit: {
        // Reads every account: a deliberately partition-spanning command.
        std::int64_t total = 0;
        for (VarId v : cmd.read_set) {
          if (const auto* acc = view.get_as<Account>(v); acc != nullptr) {
            total += acc->balance;
          }
        }
        return net::make_msg<MoneyReply>(total, true);
      }
      default:
        return net::make_msg<MoneyReply>(0, false);
    }
  }

  std::unique_ptr<smr::VarValue> make_default(VarId) override {
    return std::make_unique<Account>();
  }

  Duration service_time(const smr::Command& cmd) const override {
    return usec(10) + usec(1) * static_cast<Duration>(cmd.vars().size());
  }

 private:
  static std::int64_t parse(const std::string& s) {
    std::int64_t v = 0;
    std::from_chars(s.data(), s.data() + s.size(), v);
    return v;
  }
};

smr::Command deposit(VarId acc, std::int64_t amount) {
  smr::Command c;
  c.op = kDeposit;
  c.write_set = {acc};
  c.arg = std::to_string(amount);
  return c;
}

smr::Command transfer(VarId from, VarId to, std::int64_t amount) {
  smr::Command c;
  c.op = kTransfer;
  c.write_set = {from, to};
  c.arg = std::to_string(amount);
  return c;
}

smr::Command balance(VarId acc) {
  smr::Command c;
  c.op = kBalance;
  c.read_set = {acc};
  return c;
}

smr::Command audit(std::vector<VarId> accounts) {
  smr::Command c;
  c.op = kAudit;
  c.read_set = std::move(accounts);
  return c;
}

}  // namespace bank

namespace {

std::int64_t call(harness::Deployment& d, std::size_t client, smr::Command cmd,
                  bool* ok = nullptr) {
  bool done = false;
  std::int64_t amount = 0;
  d.client(client).issue(std::move(cmd), [&](smr::ReplyCode c, const net::MessagePtr& r) {
    done = true;
    if (c == smr::ReplyCode::kOk && r != nullptr) {
      const auto& mr = net::msg_as<bank::MoneyReply>(r);
      amount = mr.amount;
      if (ok != nullptr) *ok = mr.ok;
    } else if (ok != nullptr) {
      *ok = false;
    }
  });
  while (!done) d.engine().run_for(msec(5));
  return amount;
}

}  // namespace

int main() {
  harness::DeploymentConfig cfg;
  cfg.partitions = 4;
  cfg.replicas_per_partition = 2;
  cfg.clients = 2;
  cfg.strategy = core::Strategy::kDssmr;
  harness::Deployment d{cfg, [] { return std::make_unique<bank::BankApp>(); },
                        [] { return std::make_unique<core::DssmrPolicy>(); }};

  // 16 accounts spread over 4 partitions, $100 each.
  std::vector<VarId> accounts;
  for (std::uint64_t i = 0; i < 16; ++i) {
    accounts.push_back(VarId{i});
    d.preload_var(VarId{i}, d.partition_gid(i % 4), bank::Account{100});
  }
  d.start();
  d.settle();

  std::printf("16 accounts x $100 across 4 partitions\n\n");

  // A hot pair on different partitions: account 0 (P0) pays account 1 (P1).
  bool ok = false;
  for (int i = 0; i < 3; ++i) call(d, 0, bank::transfer(VarId{0}, VarId{1}, 20), &ok);
  std::printf("after 3 x transfer($20) 0->1 : balance(0)=$%lld balance(1)=$%lld\n",
              static_cast<long long>(call(d, 0, bank::balance(VarId{0}))),
              static_cast<long long>(call(d, 1, bank::balance(VarId{1}))));
  std::printf("accounts 0 and 1 now collocated on P%u (moves: %llu)\n",
              d.oracle(0).mapping().locate(VarId{0}).value,
              static_cast<unsigned long long>(d.metrics().counter("client.moves")));

  // Insufficient funds are rejected deterministically on every replica.
  call(d, 0, bank::transfer(VarId{2}, VarId{3}, 1'000'000), &ok);
  std::printf("transfer($1M) 2->3           : %s\n", ok ? "accepted?!" : "rejected");

  // The audit reads all 16 accounts; money is conserved.
  const std::int64_t total = call(d, 0, bank::audit(accounts), &ok);
  std::printf("audit over all accounts      : $%lld %s\n", static_cast<long long>(total),
              total == 1600 ? "(conserved)" : "(LOST MONEY!)");
  return total == 1600 ? 0 : 1;
}
