// Quickstart: a replicated key-value service on DS-SMR in ~60 lines of
// application code.
//
// Demonstrates the whole public API surface:
//   * build a Deployment (partitions x replicas + oracle + clients),
//   * preload state, start, settle,
//   * issue commands through a ClientProxy and read replies,
//   * watch the oracle's dynamic variable->partition mapping evolve.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "harness/deployment.h"
#include "smr/kv.h"

using namespace dssmr;

namespace {

/// Issues one command synchronously (runs the simulation until the reply).
smr::ReplyCode call(harness::Deployment& d, std::size_t client, smr::Command cmd,
                    net::MessagePtr* reply = nullptr) {
  bool done = false;
  smr::ReplyCode rc = smr::ReplyCode::kNok;
  d.client(client).issue(std::move(cmd), [&](smr::ReplyCode c, const net::MessagePtr& r) {
    done = true;
    rc = c;
    if (reply != nullptr) *reply = r;
  });
  while (!done) d.engine().run_for(msec(5));
  return rc;
}

smr::Command get(VarId v) {
  smr::Command c;
  c.op = kv::kGet;
  c.read_set = {v};
  return c;
}

smr::Command add(VarId v, std::int64_t delta) {
  smr::Command c;
  c.op = kv::kAdd;
  c.write_set = {v};
  c.arg = std::to_string(delta);
  return c;
}

smr::Command sum_into(std::vector<VarId> sources, VarId dst) {
  smr::Command c;
  c.op = kv::kSumTo;
  c.read_set = std::move(sources);
  c.write_set = {dst};
  return c;
}

}  // namespace

int main() {
  // 2 partitions x 3 replicas, a 3-replica oracle, 2 clients.
  harness::DeploymentConfig cfg;
  cfg.partitions = 2;
  cfg.replicas_per_partition = 3;
  cfg.clients = 2;
  cfg.strategy = core::Strategy::kDssmr;

  harness::Deployment d{cfg, kv::kv_app_factory(),
                        [] { return std::make_unique<core::DssmrPolicy>(); }};

  // Four counters, two per partition.
  for (std::uint64_t i = 0; i < 4; ++i) {
    d.preload_var(VarId{i}, d.partition_gid(i % 2), kv::KvValue{0, ""});
  }
  d.start();
  d.settle();
  std::printf("deployment up: 2 partitions x 3 replicas + oracle\n");

  // Single-partition increments.
  for (int i = 0; i < 5; ++i) call(d, 0, add(VarId{0}, 10));
  net::MessagePtr reply;
  call(d, 1, get(VarId{0}), &reply);
  std::printf("counter v0 after 5 x +10      : %lld\n",
              static_cast<long long>(net::msg_as<kv::KvReply>(reply).num));

  // A cross-partition command: v0 lives on partition 0, v1 on partition 1.
  // DS-SMR consults the oracle, collocates the variables, then executes.
  call(d, 0, add(VarId{1}, 8));
  call(d, 0, sum_into({VarId{0}, VarId{1}}, VarId{2}), &reply);
  std::printf("sum(v0, v1) -> v2             : %lld\n",
              static_cast<long long>(net::msg_as<kv::KvReply>(reply).num));

  const auto& mapping = d.oracle(0).mapping();
  std::printf("oracle mapping after the move : v0->P%u v1->P%u v2->P%u\n",
              mapping.locate(VarId{0}).value, mapping.locate(VarId{1}).value,
              mapping.locate(VarId{2}).value);

  // The same access again is now single-partition (and served from the
  // client's location cache, without consulting the oracle).
  const auto consults_before = d.metrics().counter("client.consults");
  call(d, 0, sum_into({VarId{0}, VarId{1}}, VarId{2}), &reply);
  std::printf("repeat sum                    : %lld (consults: +%llu, moves total: %llu)\n",
              static_cast<long long>(net::msg_as<kv::KvReply>(reply).num),
              static_cast<unsigned long long>(d.metrics().counter("client.consults") -
                                              consults_before),
              static_cast<unsigned long long>(d.metrics().counter("client.moves")));

  // Dynamic state: create a fresh variable and use it immediately.
  smr::Command create;
  create.type = smr::CommandType::kCreate;
  create.write_set = {VarId{99}};
  call(d, 1, std::move(create));
  call(d, 1, add(VarId{99}, 7));
  call(d, 1, get(VarId{99}), &reply);
  std::printf("freshly created v99           : %lld\n",
              static_cast<long long>(net::msg_as<kv::KvReply>(reply).num));

  std::printf("done.\n");
  return 0;
}
